"""Physical constants and unit helpers used across the library.

All internal quantities are SI: meters, ohms, henries, farads, seconds,
volts, amperes.  Layout dimensions in the paper's domain are naturally
expressed in micrometers and parasitics in nH/fF/ps, so thin conversion
helpers are provided for readability at API boundaries.
"""

from __future__ import annotations

import math

#: Permeability of free space [H/m].
MU0 = 4.0e-7 * math.pi

#: Permittivity of free space [F/m].
EPS0 = 8.8541878128e-12

#: Relative permittivity of SiO2 inter-layer dielectric (typical CMOS).
EPS_R_SIO2 = 3.9

#: Speed of light in vacuum [m/s].
C0 = 299_792_458.0

#: Copper resistivity at room temperature [ohm*m].
RHO_COPPER = 1.72e-8

#: Aluminum resistivity at room temperature [ohm*m].
RHO_ALUMINUM = 2.82e-8

# -- unit multipliers ---------------------------------------------------------

UM = 1e-6  #: micrometer in meters
NM = 1e-9  #: nanometer in meters
MM = 1e-3  #: millimeter in meters

PS = 1e-12  #: picosecond in seconds
NS = 1e-9  #: nanosecond in seconds

FF = 1e-15  #: femtofarad in farads
PF = 1e-12  #: picofarad in farads

PH = 1e-12  #: picohenry in henries
NH = 1e-9  #: nanohenry in henries

GHZ = 1e9  #: gigahertz in hertz
MHZ = 1e6  #: megahertz in hertz


def um(value: float) -> float:
    """Convert micrometers to meters."""
    return value * UM


def to_um(value: float) -> float:
    """Convert meters to micrometers."""
    return value / UM


def nh(value: float) -> float:
    """Convert nanohenries to henries."""
    return value * NH


def to_nh(value: float) -> float:
    """Convert henries to nanohenries."""
    return value / NH


def ff(value: float) -> float:
    """Convert femtofarads to farads."""
    return value * FF


def to_ff(value: float) -> float:
    """Convert farads to femtofarads."""
    return value / FF


def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * PS


def to_ps(value: float) -> float:
    """Convert seconds to picoseconds."""
    return value / PS


def skin_depth(frequency: float, resistivity: float = RHO_COPPER,
               mu_r: float = 1.0) -> float:
    """Skin depth [m] of a conductor at ``frequency`` [Hz].

    delta = sqrt(rho / (pi * f * mu0 * mu_r)).  Used to decide how finely a
    conductor cross-section must be subdivided into filaments before the
    partial-inductance formulas (which assume uniform current density) are
    valid -- see Section 3 of the paper ("very wide conductors must be split
    into narrower lines before computing inductance").
    """
    if frequency <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency}")
    return math.sqrt(resistivity / (math.pi * frequency * MU0 * mu_r))
