"""Plain-text table formatting for benchmark output.

The benchmark harness prints paper-style tables (Table 1 and the figure
series) to stdout; this keeps them aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: Column headers.
        rows: Row value sequences; values are str()-ed.
        title: Optional title line printed above the table.

    Returns:
        The formatted table as one string.
    """
    str_rows = [[str(v) for v in row] for row in rows]
    for r, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {r} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in str_rows)) if str_rows
        else len(headers[c])
        for c in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
