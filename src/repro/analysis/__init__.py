"""Waveform analysis, model comparison, and report formatting."""

from repro.analysis.metrics import (
    delay_50,
    overshoot,
    peak_noise,
    rise_time,
    settling_time,
    skew,
    threshold_crossing,
    undershoot,
)
from repro.analysis.compare import WaveformComparison, compare_waveforms
from repro.analysis.report import format_table
from repro.analysis.spectrum import (
    edge_spectrum,
    significant_frequency,
    spectral_knee,
)
from repro.analysis.crosstalk import (
    AlignmentResult,
    simulate_aggressor_responses,
    worst_case_alignment,
)
from repro.analysis.tline import (
    TransmissionLineAssessment,
    WireRegime,
    assess_from_extraction,
    assess_line,
)

__all__ = [
    "threshold_crossing",
    "delay_50",
    "rise_time",
    "overshoot",
    "undershoot",
    "peak_noise",
    "settling_time",
    "skew",
    "WaveformComparison",
    "compare_waveforms",
    "format_table",
    "significant_frequency",
    "edge_spectrum",
    "spectral_knee",
    "AlignmentResult",
    "worst_case_alignment",
    "simulate_aggressor_responses",
    "WireRegime",
    "TransmissionLineAssessment",
    "assess_line",
    "assess_from_extraction",
]
