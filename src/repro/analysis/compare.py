"""Model-vs-model waveform comparison (loop vs PEEC, sparsified vs dense)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WaveformComparison:
    """Pointwise comparison of two waveforms on a common time base.

    Attributes:
        max_error: Maximum absolute difference.
        rms_error: Root-mean-square difference.
        max_error_time: Time of the maximum difference [s].
    """

    max_error: float
    rms_error: float
    max_error_time: float


def compare_waveforms(
    times_a: np.ndarray,
    values_a: np.ndarray,
    times_b: np.ndarray,
    values_b: np.ndarray,
) -> WaveformComparison:
    """Compare two waveforms, interpolating B onto A's time base.

    The overlap interval of the two time bases is used; comparing
    non-overlapping waveforms raises.
    """
    ta = np.asarray(times_a, dtype=float)
    va = np.asarray(values_a, dtype=float)
    tb = np.asarray(times_b, dtype=float)
    vb = np.asarray(values_b, dtype=float)
    # Sort both series by time: np.interp silently returns garbage for
    # descending or shuffled abscissae (a high-to-low sweep produces
    # exactly that), and the overlap endpoints below assume ascending
    # order too.  Same fix as LoopExtractionResult.at.
    order_a = np.argsort(ta, kind="stable")
    ta, va = ta[order_a], va[order_a]
    order_b = np.argsort(tb, kind="stable")
    tb, vb = tb[order_b], vb[order_b]
    lo = max(ta[0], tb[0])
    hi = min(ta[-1], tb[-1])
    if hi <= lo:
        raise ValueError("waveform time bases do not overlap")
    mask = (ta >= lo) & (ta <= hi)
    t = ta[mask]
    diff = va[mask] - np.interp(t, tb, vb)
    k = int(np.argmax(np.abs(diff)))
    return WaveformComparison(
        max_error=float(np.abs(diff[k])),
        rms_error=float(np.sqrt(np.mean(diff**2))),
        max_error_time=float(t[k]),
    )
