"""Timing and signal-integrity metrics over transient waveforms.

These are the quantities the paper's evaluation reports: delay and skew
(Table 1), and the inductance symptoms of Section 1 -- "delay variations,
degradation of signal integrity due to overshoots, undershoots and
oscillations".
"""

from __future__ import annotations

import numpy as np


def threshold_crossing(
    times: np.ndarray,
    values: np.ndarray,
    level: float,
    rising: bool | None = None,
    start: float = 0.0,
) -> float:
    """First time ``values`` crosses ``level`` (linear interpolation).

    Args:
        times: Monotone time points [s].
        values: Waveform samples.
        level: Threshold.
        rising: Restrict to rising (True) / falling (False) crossings;
            ``None`` accepts either.
        start: Ignore crossings before this time.

    Returns:
        Crossing time [s].

    Raises:
        ValueError: No such crossing exists.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ValueError("times and values must have equal shapes")
    # A crossing requires samples strictly below AND strictly above the
    # level.  The old ``v >= level`` flip detection reported a spurious
    # crossing when the waveform merely *touched* the level at a sample
    # and retreated (a tangent, not a crossing).  Track sign changes of
    # ``v - level`` between consecutive nonzero-sign samples; exact-level
    # samples in between mean the waveform crossed sitting on the level,
    # and the first such sample is the crossing time.
    sign = np.sign(v - level)
    nonzero = np.nonzero(sign)[0]
    for j, k in zip(nonzero[:-1], nonzero[1:]):
        if sign[j] == sign[k]:
            continue
        if t[k] < start:
            continue
        is_rising = sign[k] > 0
        if rising is not None and is_rising != rising:
            continue
        if k == j + 1:
            frac = (level - v[j]) / (v[k] - v[j])
            crossing = t[j] + frac * (t[k] - t[j])
        else:
            crossing = t[j + 1]  # first exact-touch sample on the level
        if crossing >= start:
            return float(crossing)
    direction = {None: "any", True: "rising", False: "falling"}[rising]
    raise ValueError(
        f"no {direction} crossing of {level} after t={start:.3e} "
        f"(waveform range [{v.min():.3g}, {v.max():.3g}])"
    )


def delay_50(
    times: np.ndarray,
    v_in: np.ndarray,
    v_out: np.ndarray,
    swing: float,
    rising_in: bool | None = None,
) -> float:
    """50%-to-50% propagation delay from ``v_in`` to ``v_out`` [s].

    The output crossing is searched *after* the input crossing, in either
    direction (an inverting driver flips polarity).
    """
    level = swing / 2.0
    t_in = threshold_crossing(times, v_in, level, rising=rising_in)
    t_out = threshold_crossing(times, v_out, level, start=t_in)
    return t_out - t_in


def rise_time(
    times: np.ndarray,
    values: np.ndarray,
    swing: float,
    lo: float = 0.1,
    hi: float = 0.9,
) -> float:
    """lo-to-hi fractional-swing transition time [s] (rising edges)."""
    t_lo = threshold_crossing(times, values, lo * swing, rising=True)
    t_hi = threshold_crossing(times, values, hi * swing, rising=True, start=t_lo)
    return t_hi - t_lo


def overshoot(values: np.ndarray, final_value: float) -> float:
    """Peak excursion above the settling value (>= 0)."""
    return float(max(np.max(np.asarray(values)) - final_value, 0.0))


def undershoot(values: np.ndarray, base_value: float) -> float:
    """Peak excursion below the base value (>= 0)."""
    return float(max(base_value - np.min(np.asarray(values)), 0.0))


def peak_noise(values: np.ndarray, reference: float) -> float:
    """Largest absolute deviation from a quiet reference level."""
    return float(np.max(np.abs(np.asarray(values) - reference)))


def settling_time(
    times: np.ndarray,
    values: np.ndarray,
    final_value: float,
    band: float,
) -> float:
    """Time after which the waveform stays within ``+-band`` of final [s]."""
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    outside = np.abs(v - final_value) > band
    if not np.any(outside):
        return float(t[0])
    last = int(np.nonzero(outside)[0][-1])
    if last + 1 >= len(t):
        raise ValueError(
            f"waveform never settles within +-{band:.3g} of {final_value:.3g}"
        )
    return float(t[last + 1])


def skew(delays) -> float:
    """Worst skew: max minus min of a collection of delays [s]."""
    d = np.asarray(list(delays), dtype=float)
    if d.size == 0:
        raise ValueError("skew needs at least one delay")
    return float(d.max() - d.min())
