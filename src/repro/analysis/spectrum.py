"""Frequency-content heuristics for picking extraction frequencies.

The loop model is extracted "at one frequency" (paper Figure 3c); picking
it well matters.  The standard signal-integrity rule of thumb ties a
digital edge's significant spectral content to its rise time:

    f_knee ~ 0.34 / t_rise   (10-90% rise time)

Below the knee the edge's energy lives; extracting loop R/L there makes
the lumped model see the impedance the actual transition sees.
"""

from __future__ import annotations

import numpy as np


def significant_frequency(rise_time: float) -> float:
    """Knee frequency of a digital edge [Hz]: 0.34 / t_rise."""
    if rise_time <= 0:
        raise ValueError("rise_time must be positive")
    return 0.34 / rise_time


def edge_spectrum(
    times: np.ndarray,
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Single-sided amplitude spectrum of a sampled waveform.

    Args:
        times: Uniformly spaced time points [s].
        values: Waveform samples.

    Returns:
        (frequencies, amplitudes): positive-frequency axis and single-sided
        amplitudes -- a pure on-grid sinusoid of amplitude A shows a bin of
        height A.

    Raises:
        ValueError: Non-uniform time base.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape or t.size < 4:
        raise ValueError("need matching arrays with at least 4 samples")
    dt = np.diff(t)
    if not np.allclose(dt, dt[0], rtol=1e-6):
        raise ValueError("edge_spectrum requires a uniform time base")
    spectrum = np.fft.rfft(v - v.mean())
    freqs = np.fft.rfftfreq(t.size, d=float(dt[0]))
    amps = np.abs(spectrum) / t.size
    # Single-sided folding: rfft keeps only non-negative frequencies, so
    # each interior bin carries half the two-sided amplitude and must be
    # doubled.  DC appears once; so does Nyquist (last bin, even N only).
    amps[1:] *= 2.0
    if t.size % 2 == 0:
        amps[-1] /= 2.0
    return freqs, amps


def spectral_knee(times: np.ndarray, values: np.ndarray,
                  energy_fraction: float = 0.9) -> float:
    """Frequency below which ``energy_fraction`` of the AC energy lies [Hz]."""
    if not 0.0 < energy_fraction < 1.0:
        raise ValueError("energy_fraction must be in (0, 1)")
    freqs, amps = edge_spectrum(times, values)
    energy = np.cumsum(amps**2)
    if energy[-1] <= 0:
        raise ValueError("waveform has no AC content")
    idx = int(np.searchsorted(energy, energy_fraction * energy[-1]))
    return float(freqs[min(idx, len(freqs) - 1)])
