"""When does inductance matter?  Transmission-line regime classification.

The paper's opening citation is Deutsch et al., *"When are
Transmission-Line Effects Important for On-Chip Interconnections?"*
(ref [1]), and its Section 7 observation is the practical summary:
"short/medium length wires show resistive behavior, while long and wide
wires exhibit inductive behavior."

This module packages the standard criteria into an API.  For a line of
length ``l`` with per-unit-length r, l, c driven by an edge of rise time
``t_r``:

* **lower bound** -- inductance is invisible while the line is shorter
  than a fraction of the edge's spatial extent::

      len > t_r / (2 * sqrt(l c))          (time of flight criterion)

* **upper bound** -- resistance damps the line into RC behavior beyond::

      len < 2 / r * sqrt(l / c)            (attenuation criterion)

Lines inside the window ring and need RLC/transmission-line treatment;
outside it, RC models suffice.  These are the same criteria that decide
whether the paper's detailed PEEC machinery is worth running on a net.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class WireRegime(Enum):
    """Electrical behavior class of a driven wire."""

    LUMPED = "lumped"            # too short for any wave behavior
    RC = "rc"                    # resistance dominates; diffusive
    RLC = "rlc"                  # inductance shapes the edge: analyze it!


@dataclass(frozen=True)
class TransmissionLineAssessment:
    """Outcome of the regime classification.

    Attributes:
        regime: The classification.
        length: Assessed line length [m].
        lower_bound: Minimum length for inductive significance [m].
        upper_bound: Maximum length before resistance damps the line [m].
        characteristic_impedance: Lossless Z0 = sqrt(l/c) [ohm].
        time_of_flight: Propagation delay l * sqrt(lc) [s].
        damping_factor: zeta = (r*len/2) * sqrt(c_total/l_total); < 1
            means under-damped (ringing).
    """

    regime: WireRegime
    length: float
    lower_bound: float
    upper_bound: float
    characteristic_impedance: float
    time_of_flight: float
    damping_factor: float

    @property
    def inductance_matters(self) -> bool:
        """True when an RC model would mispredict this wire."""
        return self.regime == WireRegime.RLC


def assess_line(
    length: float,
    r_per_len: float,
    l_per_len: float,
    c_per_len: float,
    rise_time: float,
) -> TransmissionLineAssessment:
    """Classify a wire per the Deutsch (ref [1]) criteria.

    Args:
        length: Line length [m].
        r_per_len: Resistance per unit length [ohm/m].
        l_per_len: Loop inductance per unit length [H/m].
        c_per_len: Capacitance per unit length [F/m].
        rise_time: Driving edge rise time [s].

    Returns:
        The assessment, including both critical lengths.
    """
    if min(length, r_per_len, l_per_len, c_per_len, rise_time) <= 0:
        raise ValueError("all arguments must be positive")
    velocity = 1.0 / math.sqrt(l_per_len * c_per_len)
    lower = rise_time * velocity / 2.0
    upper = (2.0 / r_per_len) * math.sqrt(l_per_len / c_per_len)
    z0 = math.sqrt(l_per_len / c_per_len)
    tof = length / velocity
    zeta = r_per_len * length / (2.0 * z0)

    if length < lower:
        regime = WireRegime.LUMPED if tof < rise_time / 10 else WireRegime.RC
    elif length > upper:
        regime = WireRegime.RC
    else:
        regime = WireRegime.RLC
    return TransmissionLineAssessment(
        regime=regime,
        length=length,
        lower_bound=lower,
        upper_bound=upper,
        characteristic_impedance=z0,
        time_of_flight=tof,
        damping_factor=zeta,
    )


def assess_from_extraction(
    extraction,
    length: float,
    c_total: float,
    rise_time: float,
    frequency: float | None = None,
) -> TransmissionLineAssessment:
    """Classify using a loop-extraction result instead of raw per-unit data.

    Args:
        extraction: A :class:`~repro.loop.extractor.LoopExtractionResult`.
        length: Physical line length [m].
        c_total: Total line + load capacitance [F].
        rise_time: Driving edge rise time [s].
        frequency: Sample frequency for R/L; defaults to the edge's knee
            (0.34 / rise_time) clamped into the swept range.
    """
    from repro.analysis.spectrum import significant_frequency

    if frequency is None:
        frequency = significant_frequency(rise_time)
        frequency = float(
            min(max(frequency, extraction.frequencies[0]),
                extraction.frequencies[-1])
        )
    z = extraction.at(frequency)
    omega = 2.0 * math.pi * frequency
    return assess_line(
        length=length,
        r_per_len=z.real / length,
        l_per_len=(z.imag / omega) / length,
        c_per_len=c_total / length,
        rise_time=rise_time,
    )
