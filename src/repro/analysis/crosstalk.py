"""Worst-case crosstalk alignment under switching-window constraints.

Signal-integrity sign-off does not know *when* each aggressor switches --
only a timing window per aggressor.  For a linear interconnect model,
superposition turns the worst-case question into an alignment problem:

    n(t) = sum_k  h_k(t - tau_k),     tau_k in [lo_k, hi_k]

where ``h_k`` is the victim's noise response to aggressor k switching at
t = 0.  The classic heuristic (exact for unimodal responses): sweep a
candidate peak time, shift every aggressor so its own peak lands there
(clamped to its window), and keep the best.

This module provides the alignment optimizer plus a helper that builds
the per-aggressor responses by one-at-a-time transient simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class AlignmentResult:
    """Worst-case alignment outcome.

    Attributes:
        peak_noise: The maximized |victim noise| [V].
        peak_time: When the worst peak occurs [s].
        offsets: aggressor name -> chosen switching offset tau_k [s].
        times: Time base of the combined waveform.
        combined: The aligned total noise waveform.
    """

    peak_noise: float
    peak_time: float
    offsets: dict[str, float]
    times: np.ndarray
    combined: np.ndarray


def _shift(times: np.ndarray, values: np.ndarray, tau: float) -> np.ndarray:
    """Shift a response right by tau (zero-padded on the left).

    Precondition: ``times`` is ascending -- the only caller,
    :func:`worst_case_alignment`, argsorts the time base before the
    candidate loop, and re-checking inside this per-candidate hot path
    would be O(n) per shift.
    """
    return np.interp(times - tau, times, values, left=values[0],  # qa: ignore[QA201]
                     right=values[-1])


def worst_case_alignment(
    times: np.ndarray,
    responses: dict[str, np.ndarray],
    windows: dict[str, tuple[float, float]],
    num_candidates: int = 64,
) -> AlignmentResult:
    """Maximize the victim's peak noise over aggressor switching times.

    Args:
        times: Common uniform time base of the responses [s].
        responses: aggressor name -> victim noise response to that
            aggressor switching at t = 0.
        windows: aggressor name -> (earliest, latest) switching offset [s].
        num_candidates: Candidate peak times swept across the horizon.

    Returns:
        The best alignment found (exact when each response is unimodal).
    """
    t = np.asarray(times, dtype=float)
    # Sort the time base and reorder every response with it: the peak
    # search, the candidate linspace, and np.interp inside _shift all
    # assume ascending times, and np.interp silently returns garbage on
    # descending or shuffled grids (same fix as LoopExtractionResult.at).
    order = np.argsort(t, kind="stable")
    t = t[order]
    responses = {
        name: np.asarray(h, dtype=float)[order]
        for name, h in responses.items()
    }
    if set(responses) != set(windows):
        raise ValueError(
            f"responses/windows name mismatch: {sorted(responses)} vs "
            f"{sorted(windows)}"
        )
    for name, (lo, hi) in windows.items():
        if hi < lo:
            raise ValueError(f"window for {name!r} has hi < lo")

    peak_times = {}
    peak_signs = {}
    for name, h in responses.items():
        k = int(np.argmax(np.abs(h)))
        peak_times[name] = float(t[k])
        peak_signs[name] = float(np.sign(h[k]) or 1.0)

    best: AlignmentResult | None = None
    for t_star in np.linspace(t[0], t[-1], num_candidates):
        offsets = {}
        combined = np.zeros_like(t)
        for name, h in responses.items():
            lo, hi = windows[name]
            tau = float(np.clip(t_star - peak_times[name], lo, hi))
            offsets[name] = tau
            combined = combined + _shift(t, h, tau)
        k = int(np.argmax(np.abs(combined)))
        peak = float(np.abs(combined[k]))
        if best is None or peak > best.peak_noise:
            best = AlignmentResult(
                peak_noise=peak,
                peak_time=float(t[k]),
                offsets=offsets,
                times=t,
                combined=combined,
            )
    assert best is not None
    return best


def simulate_aggressor_responses(
    build: Callable[[str], tuple],
    aggressors: list[str],
    victim: str,
    t_stop: float,
    dt: float,
    quiet_level: float = 0.0,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Per-aggressor victim responses by one-at-a-time simulation.

    Args:
        build: Callback ``build(active) -> circuit`` returning a fresh
            circuit in which only aggressor ``active`` switches (the
            others held quiet).  Rebuilding per aggressor keeps the
            callback trivial; linearity does the rest.
        aggressors: Aggressor identifiers passed to ``build``.
        victim: Victim node to record.
        t_stop: Transient horizon [s].
        dt: Step [s].
        quiet_level: Victim's quiescent level to subtract [V].

    Returns:
        (times, responses) ready for :func:`worst_case_alignment`.
    """
    from repro.circuit.transient import transient_analysis

    responses: dict[str, np.ndarray] = {}
    times: np.ndarray | None = None
    for name in aggressors:
        circuit = build(name)
        result = transient_analysis(circuit, t_stop, dt, record=[victim])
        times = result.times
        responses[name] = result.voltage(victim) - quiet_level
    assert times is not None
    return times, responses
