"""DC operating-point analysis.

Solves ``G x + f(x) = b(t)`` with inductors as shorts and capacitors open.
Nonlinear circuits use damped Newton iteration with a gmin-stepping
fallback (progressively removing an artificial leak conductance), the
standard SPICE convergence aid.  Under the ``full`` resilience policy a
source-stepping ramp (scaling all independent sources up from a fraction
of their value, warm-starting each stage) is tried when gmin stepping
alone fails.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.linalg import (
    Factorization,
    ResilientFactorization,
    SingularCircuitError,
    add_gmin,
)
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience.policy import ResiliencePolicy, default_policy
from repro.resilience.report import current_run_report


class ConvergenceError(RuntimeError):
    """Newton iteration failed to converge.

    Carries the iteration trace so a failure is diagnosable without
    rerunning: :attr:`residual_history` is the max-norm residual after
    each Newton iteration and :attr:`last_step` the max-norm of the last
    (damped) Newton update applied.
    """

    def __init__(
        self,
        message: str,
        residual_history: tuple[float, ...] = (),
        last_step: float | None = None,
    ) -> None:
        super().__init__(message)
        self.residual_history = tuple(residual_history)
        self.last_step = last_step

    def __str__(self) -> str:
        text = super().__str__()
        if self.residual_history:
            tail = self.residual_history[-5:]
            trace = ", ".join(f"{r:.3e}" for r in tail)
            prefix = "..., " if len(self.residual_history) > len(tail) else ""
            text += (
                f" [{len(self.residual_history)} iterations, "
                f"residuals: {prefix}{trace}"
            )
            if self.last_step is not None:
                text += f"; last step {self.last_step:.3e}"
            text += "]"
        return text


def _as_system(circuit_or_system) -> MNASystem:
    if isinstance(circuit_or_system, MNASystem):
        return circuit_or_system
    if isinstance(circuit_or_system, Circuit):
        return MNASystem(circuit_or_system)
    raise TypeError(f"expected Circuit or MNASystem, got {type(circuit_or_system)}")


def _newton(
    system: MNASystem,
    g_matrix,
    b: np.ndarray,
    x0: np.ndarray,
    tol: float,
    max_iter: int,
    damping_limit: float,
    policy: ResiliencePolicy | None = None,
) -> np.ndarray:
    x = x0.copy()
    dense = not hasattr(g_matrix, "tocsc")
    residual_history: list[float] = []
    last_step: float | None = None
    iterations = obs_metrics.counter("newton.iterations.dc")
    for _ in range(max_iter):
        iterations.inc()
        f, jac_dev = system.eval_devices(x)
        residual = g_matrix @ x + f - b
        norm = float(np.max(np.abs(residual)))
        residual_history.append(norm)
        if norm < tol:
            return x
        if dense:
            jacobian = g_matrix + jac_dev
        else:
            jacobian = (g_matrix + jac_dev) if jac_dev is not None else g_matrix
            jacobian = np.asarray(jacobian)
        delta = ResilientFactorization(
            jacobian, site="dc.newton", policy=policy
        ).solve(-residual)
        step = float(np.max(np.abs(delta)))
        if step > damping_limit:
            delta = delta * (damping_limit / step)
            step = damping_limit
        last_step = step
        x = x + delta
    f, _ = system.eval_devices(x)
    residual = g_matrix @ x + f - b
    norm = float(np.max(np.abs(residual)))
    residual_history.append(norm)
    if norm < tol * 100:
        return x  # close enough; final refinement left to the caller
    raise ConvergenceError(
        f"DC Newton did not converge in {max_iter} iterations "
        f"(residual {norm:.3e})",
        residual_history=tuple(residual_history),
        last_step=last_step,
    )


def dc_operating_point(
    circuit_or_system,
    t: float = 0.0,
    gmin: float = 1e-12,
    tol: float = 1e-9,
    max_iter: int = 100,
    x0: np.ndarray | None = None,
    policy: ResiliencePolicy | None = None,
) -> np.ndarray:
    """Compute the DC operating point at source time ``t``.

    Args:
        circuit_or_system: A :class:`Circuit` or prebuilt :class:`MNASystem`.
        t: Time at which source waveforms are evaluated (sources are assumed
            static around this instant).
        gmin: Leak conductance added on node diagonals.
        tol: Newton residual tolerance (max-norm, amps).
        max_iter: Newton iteration cap per gmin stage.
        x0: Optional initial guess.
        policy: Resilience policy governing solver escalation and source
            stepping; default from ``REPRO_RESILIENCE``.

    Returns:
        The full MNA unknown vector x (node voltages then branch currents).

    Raises:
        ConvergenceError: Newton failed even with gmin (and, under the
            ``full`` policy, source) stepping.
        SingularCircuitError: The topology itself is singular.
    """
    system = _as_system(circuit_or_system)
    with span("circuit.dc", size=system.size, nonlinear=system.has_devices):
        return _dc_solve(system, t, gmin, tol, max_iter, x0, policy)


def _dc_solve(
    system: MNASystem,
    t: float,
    gmin: float,
    tol: float,
    max_iter: int,
    x0: np.ndarray | None,
    policy: ResiliencePolicy | None,
) -> np.ndarray:
    policy = policy or default_policy()
    g_matrix, _ = system.build_matrices()
    b = system.rhs(t)
    guess = np.zeros(system.size) if x0 is None else np.asarray(x0, dtype=float)

    if not system.has_devices:
        g_dc = add_gmin(g_matrix, system.n, gmin)
        return ResilientFactorization(g_dc, site="dc", policy=policy).solve(b)

    # Gmin stepping: converge with a strong leak first, then tighten.
    stages = [1e-3, 1e-6, gmin] if gmin < 1e-6 else [1e-3, gmin]
    x = guess
    last_error: Exception | None = None
    for stage_gmin in stages:
        g_dc = add_gmin(g_matrix, system.n, stage_gmin)
        try:
            x = _newton(
                system, g_dc, b, x, tol, max_iter, damping_limit=1.0,
                policy=policy,
            )
            last_error = None
        except (ConvergenceError, SingularCircuitError) as exc:
            last_error = exc

    if last_error is not None and policy.source_stepping_enabled:
        # Source stepping: ramp every independent source up from a
        # fraction of its value, warm-starting each stage from the last.
        # The final stage solves the true system, so an accepted answer
        # is exact; intermediate failures just shrink the warm start.
        report = current_run_report()
        g_dc = add_gmin(g_matrix, system.n, stages[-1])
        x = guess
        for fraction in policy.source_steps:
            try:
                x = _newton(
                    system, g_dc, fraction * b, x, tol, max_iter,
                    damping_limit=1.0, policy=policy,
                )
                stage_ok = True
                if fraction == policy.source_steps[-1]:
                    last_error = None
            except (ConvergenceError, SingularCircuitError) as exc:
                stage_ok = False
                last_error = exc
            if report is not None:
                report.record(
                    "source-stepping", "dc",
                    f"source fraction {fraction:g}: "
                    f"{'ok' if stage_ok else 'failed'}",
                )

    if last_error is not None:
        if isinstance(last_error, ConvergenceError):
            raise ConvergenceError(
                f"DC operating point failed after gmin stepping: {last_error}",
                residual_history=last_error.residual_history,
                last_step=last_error.last_step,
            ) from last_error
        raise ConvergenceError(
            f"DC operating point failed after gmin stepping: {last_error}"
        ) from last_error
    return x
