"""DC operating-point analysis.

Solves ``G x + f(x) = b(t)`` with inductors as shorts and capacitors open.
Nonlinear circuits use damped Newton iteration with a gmin-stepping
fallback (progressively removing an artificial leak conductance), the
standard SPICE convergence aid.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.linalg import Factorization, SingularCircuitError, add_gmin
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import Circuit


class ConvergenceError(RuntimeError):
    """Newton iteration failed to converge."""


def _as_system(circuit_or_system) -> MNASystem:
    if isinstance(circuit_or_system, MNASystem):
        return circuit_or_system
    if isinstance(circuit_or_system, Circuit):
        return MNASystem(circuit_or_system)
    raise TypeError(f"expected Circuit or MNASystem, got {type(circuit_or_system)}")


def _newton(
    system: MNASystem,
    g_matrix,
    b: np.ndarray,
    x0: np.ndarray,
    tol: float,
    max_iter: int,
    damping_limit: float,
) -> np.ndarray:
    x = x0.copy()
    dense = not hasattr(g_matrix, "tocsc")
    for _ in range(max_iter):
        f, jac_dev = system.eval_devices(x)
        residual = g_matrix @ x + f - b
        norm = float(np.max(np.abs(residual)))
        if norm < tol:
            return x
        if dense:
            jacobian = g_matrix + jac_dev
        else:
            jacobian = (g_matrix + jac_dev) if jac_dev is not None else g_matrix
            jacobian = np.asarray(jacobian)
        delta = Factorization(jacobian).solve(-residual)
        step = float(np.max(np.abs(delta)))
        if step > damping_limit:
            delta = delta * (damping_limit / step)
        x = x + delta
    f, _ = system.eval_devices(x)
    residual = g_matrix @ x + f - b
    if float(np.max(np.abs(residual))) < tol * 100:
        return x  # close enough; final refinement left to the caller
    raise ConvergenceError(
        f"DC Newton did not converge in {max_iter} iterations "
        f"(residual {float(np.max(np.abs(residual))):.3e})"
    )


def dc_operating_point(
    circuit_or_system,
    t: float = 0.0,
    gmin: float = 1e-12,
    tol: float = 1e-9,
    max_iter: int = 100,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Compute the DC operating point at source time ``t``.

    Args:
        circuit_or_system: A :class:`Circuit` or prebuilt :class:`MNASystem`.
        t: Time at which source waveforms are evaluated (sources are assumed
            static around this instant).
        gmin: Leak conductance added on node diagonals.
        tol: Newton residual tolerance (max-norm, amps).
        max_iter: Newton iteration cap per gmin stage.
        x0: Optional initial guess.

    Returns:
        The full MNA unknown vector x (node voltages then branch currents).

    Raises:
        ConvergenceError: Newton failed even with gmin stepping.
        SingularCircuitError: The topology itself is singular.
    """
    system = _as_system(circuit_or_system)
    g_matrix, _ = system.build_matrices()
    b = system.rhs(t)
    guess = np.zeros(system.size) if x0 is None else np.asarray(x0, dtype=float)

    if not system.has_devices:
        g_dc = add_gmin(g_matrix, system.n, gmin)
        return Factorization(g_dc).solve(b)

    # Gmin stepping: converge with a strong leak first, then tighten.
    stages = [1e-3, 1e-6, gmin] if gmin < 1e-6 else [1e-3, gmin]
    x = guess
    last_error: Exception | None = None
    for stage_gmin in stages:
        g_dc = add_gmin(g_matrix, system.n, stage_gmin)
        try:
            x = _newton(system, g_dc, b, x, tol, max_iter, damping_limit=1.0)
            last_error = None
        except (ConvergenceError, SingularCircuitError) as exc:
            last_error = exc
    if last_error is not None:
        raise ConvergenceError(
            f"DC operating point failed after gmin stepping: {last_error}"
        )
    return x
