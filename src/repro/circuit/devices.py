"""Nonlinear devices: square-law CMOS inverter driver.

The paper's Figure-1 current decomposition (short-circuit current I1,
charging current I2, discharging current I3) requires an actual switching
gate between the supply rails, not a Thevenin equivalent.  A square-law
(level-1) MOSFET pair captures exactly that physics: a crowbar path while
both devices conduct mid-transition, plus charge/discharge paths to the
two rails.

Devices are *memoryless* nonlinear current elements; their parasitic
capacitances are added as ordinary linear capacitors by the circuit
builders.  The Newton support lives in :mod:`repro.circuit.transient` and
:mod:`repro.circuit.dc`; devices only implement :meth:`evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class MOSParameters:
    """Square-law MOSFET parameters (symmetric n/p unless overridden).

    Attributes:
        vt: Threshold voltage magnitude [V].
        beta: Transconductance K' * W / L [A/V^2].
        lam: Channel-length modulation [1/V].
        gmin: Minimum drain-source conductance [S], keeps Newton matrices
            nonsingular when the device is off.
    """

    vt: float = 0.45
    beta: float = 4.0e-3
    lam: float = 0.05
    gmin: float = 1e-9


def _nmos_ids(vgs: float, vds: float, p: MOSParameters) -> tuple[float, float, float]:
    """NMOS drain current and partials (Ids, dIds/dVgs, dIds/dVds).

    Square law with channel-length modulation; vds >= 0 is assumed (the
    caller swaps terminals for reverse bias).  C1-continuous across the
    cutoff and saturation boundaries.
    """
    vov = vgs - p.vt
    if vov <= 0.0:
        return (p.gmin * vds, 0.0, p.gmin)
    clm = 1.0 + p.lam * vds
    if vds < vov:  # triode
        ids = p.beta * (vov * vds - 0.5 * vds * vds) * clm
        dvgs = p.beta * vds * clm
        dvds = p.beta * (vov - vds) * clm + p.beta * (vov * vds - 0.5 * vds * vds) * p.lam
    else:  # saturation
        ids = 0.5 * p.beta * vov * vov * clm
        dvgs = p.beta * vov * clm
        dvds = 0.5 * p.beta * vov * vov * p.lam
    return (ids + p.gmin * vds, dvgs, dvds + p.gmin)


class CMOSInverter:
    """Square-law CMOS inverter between explicit supply nodes.

    Nodes (in order): ``(gate, out, vdd, vss)``.  The input is the gate
    voltage of both devices; the driver's supply current is drawn from the
    local ``vdd`` / ``vss`` nodes of the power grid, which is how gate
    switching couples into the grid in the PEEC model.

    Attributes:
        name: Instance name.
        nodes: Node names, ``(gate, out, vdd, vss)``.
        nmos: NMOS parameters.
        pmos: PMOS parameters (``vt``/``beta`` magnitudes).
    """

    def __init__(
        self,
        name: str,
        gate: str,
        out: str,
        vdd: str,
        vss: str,
        nmos: MOSParameters | None = None,
        pmos: MOSParameters | None = None,
        strength: float = 1.0,
    ) -> None:
        self.name = name
        self.nodes: tuple[str, ...] = (gate, out, vdd, vss)
        base_n = nmos or MOSParameters()
        base_p = pmos or MOSParameters(beta=2.0e-3)
        if strength != 1.0:
            base_n = MOSParameters(base_n.vt, base_n.beta * strength, base_n.lam, base_n.gmin)
            base_p = MOSParameters(base_p.vt, base_p.beta * strength, base_p.lam, base_p.gmin)
        self.nmos = base_n
        self.pmos = base_p

    def evaluate(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Device currents and Jacobian at local node voltages ``v``.

        Args:
            v: Voltages of ``(gate, out, vdd, vss)`` [V].

        Returns:
            (i, jac): ``i[k]`` is current flowing *out of* node k into the
            device [A]; ``jac[k, l] = d i[k] / d v[l]`` [S].
        """
        v_g, v_o, v_dd, v_ss = (float(x) for x in v)
        i = np.zeros(4)
        jac = np.zeros((4, 4))

        # NMOS: drain/source are out/vss, swapped under reverse bias.
        if v_o >= v_ss:
            ids, dgs, dds = _nmos_ids(v_g - v_ss, v_o - v_ss, self.nmos)
            # ids flows out -> vss through the device.
            i[1] += ids
            i[3] -= ids
            # d/d(vg, vo, vss)
            for row, sign in ((1, 1.0), (3, -1.0)):
                jac[row, 0] += sign * dgs
                jac[row, 1] += sign * dds
                jac[row, 3] += sign * (-dgs - dds)
        else:
            ids, dgs, dds = _nmos_ids(v_g - v_o, v_ss - v_o, self.nmos)
            # Current flows vss -> out.
            i[3] += ids
            i[1] -= ids
            for row, sign in ((3, 1.0), (1, -1.0)):
                jac[row, 0] += sign * dgs
                jac[row, 3] += sign * dds
                jac[row, 1] += sign * (-dgs - dds)

        # PMOS: source at vdd, drain at out; use symmetric square law in
        # source-referenced magnitudes.
        if v_dd >= v_o:
            ids, dgs, dds = _nmos_ids(v_dd - v_g, v_dd - v_o, self.pmos)
            # Current flows vdd -> out through the device.
            i[2] += ids
            i[1] -= ids
            for row, sign in ((2, 1.0), (1, -1.0)):
                jac[row, 0] += sign * (-dgs)
                jac[row, 2] += sign * (dgs + dds)
                jac[row, 1] += sign * (-dds)
        else:
            ids, dgs, dds = _nmos_ids(v_o - v_g, v_o - v_dd, self.pmos)
            i[1] += ids
            i[2] -= ids
            for row, sign in ((1, 1.0), (2, -1.0)):
                jac[row, 0] += sign * (-dgs)
                jac[row, 1] += sign * (dgs + dds)
                jac[row, 2] += sign * (-dds)

        return i, jac

    def __repr__(self) -> str:
        return f"CMOSInverter({self.name!r}, nodes={self.nodes})"
