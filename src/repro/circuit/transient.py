"""Transient analysis: trapezoidal / backward-Euler time stepping.

Integrates ``C dx/dt + G x + f(x) = b(t)`` with a fixed step.  Linear
circuits factor the companion matrix once and reuse it every step;
circuits with nonlinear devices run damped Newton per step.  The first
couple of steps always use backward Euler to damp the startup transient
of inconsistent initial conditions (standard practice; trapezoidal rule
would ring forever on them).

A failing step is retried (transient faults), then halved into ``2^k``
backward-Euler substeps (hard nonlinear steps), per the
:class:`~repro.resilience.policy.ResiliencePolicy`; every rescue is
logged in the result's :class:`~repro.resilience.report.RunReport`.
Long runs can checkpoint themselves periodically and resume after a
crash (see :class:`~repro.resilience.checkpoint.CheckpointConfig` and
the ``repro resume`` CLI command).

The K-matrix element (inverse inductance, Section 4 of the paper) needs no
special handling here: :class:`MNASystem` already expresses it in the
``G``/``C`` matrices, which is exactly the "special circuit simulator that
can handle the K matrix" the paper calls for.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.circuit.dc import ConvergenceError, dc_operating_point
from repro.circuit.linalg import (
    OperatorSystem,
    ResilientFactorization,
    SingularCircuitError,
    SweepAssembler,
)
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.perf.cache import FACTOR_CACHE_SIZE, LRUCache, quantize_alpha
from repro.resilience import faults
from repro.resilience.checkpoint import (
    CheckpointConfig,
    finish_checkpoint,
    load_checkpoint,
    save_checkpoint,
    verify_fingerprint,
)
from repro.resilience.faults import InjectedFault
from repro.resilience.policy import ResiliencePolicy, default_policy
from repro.resilience.report import RunReport, activate, current_run_report


@dataclass
class TransientResult:
    """Time-domain simulation result.

    Attributes:
        times: Time points [s], shape (num_steps + 1,).
        data: Unknown trajectories, shape (num_steps + 1, recorded columns).
        columns: Names of recorded columns (node or branch names).
        system: The compiled MNA system.
        report: Resilience log of the run (retries, halvings, checkpoints).
    """

    times: np.ndarray
    data: np.ndarray
    columns: list[str]
    system: MNASystem
    report: RunReport | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self._col_index = {name: i for i, name in enumerate(self.columns)}

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of a node (ground returns zeros)."""
        if node == "0":
            return np.zeros(len(self.times))
        return self._column(node)

    def current(self, branch: str) -> np.ndarray:
        """Current waveform of an inductor / K / V-source branch."""
        return self._column(branch)

    def _column(self, name: str) -> np.ndarray:
        try:
            return self.data[:, self._col_index[name]]
        except KeyError:
            raise KeyError(
                f"{name!r} was not recorded; recorded columns: "
                f"{len(self.columns)} names (pass record=... to change)"
            ) from None


def _recorded_columns(system: MNASystem, record) -> tuple[list[int], list[str]]:
    """Resolve the record spec into (global indices, column names)."""
    if record is None:
        names = list(system.circuit.node_names)
        names += [
            name for name, _ in sorted(
                system._branch_index.items(), key=lambda kv: kv[1]
            )
        ]
        indices = [system.node_index(n) for n in system.circuit.node_names]
        indices += sorted(system._branch_index.values())
        return indices, names
    indices, names = [], []
    for name in record:
        try:
            idx = system.node_index(name)
            if idx < 0:
                continue
        except KeyError:
            idx = system.branch_index(name)
        indices.append(idx)
        names.append(name)
    return indices, names


def _unknown_names(system: MNASystem) -> list[str]:
    """Name of every MNA unknown, in state-vector order."""
    names = [""] * system.size
    for node in system.circuit.node_names:
        idx = system.node_index(node)
        if idx >= 0:
            names[idx] = node
    for name, idx in system._branch_index.items():
        names[idx] = name
    return names


def _embedded_deck(system: MNASystem, t_stop: float) -> str | None:
    """The circuit as SPICE text, or None if it has no SPICE form."""
    from repro.io.spice import write_spice

    out = io.StringIO()
    try:
        write_spice(system.circuit, out, t_stop=t_stop)
    except ValueError:
        return None
    text = out.getvalue()
    if len(text) > 8_000_000:  # don't balloon checkpoints of huge meshes
        return None
    return text


def transient_analysis(
    circuit_or_system,
    t_stop: float,
    dt: float,
    method: str = "trap",
    x0=None,
    record=None,
    newton_tol: float = 1e-6,
    max_newton: int = 50,
    policy: ResiliencePolicy | None = None,
    checkpoint: CheckpointConfig | None = None,
) -> TransientResult:
    """Run a fixed-step transient simulation over [0, t_stop].

    Args:
        circuit_or_system: Circuit or prebuilt :class:`MNASystem`.
        t_stop: End time [s].
        dt: Time step [s].
        method: ``"trap"`` (trapezoidal; BE for the first 2 steps) or
            ``"be"`` (backward Euler throughout -- more damping, first-order
            accurate; useful to expose trapezoidal ringing artifacts).
        x0: Initial state: ``None`` computes the DC operating point at
            t = 0; ``"zero"`` starts from the all-zero state (SPICE's UIC);
            or an explicit state vector.
        record: Node/branch names to record; ``None`` records everything.
        newton_tol: Per-step Newton residual tolerance (max-norm).
        max_newton: Newton iteration cap per step.
        policy: Resilience policy (escalation rungs, retry budget, step
            halvings); default from ``REPRO_RESILIENCE``.
        checkpoint: Periodic snapshotting / resume configuration.  When
            given and the file exists (and matches this run), the
            simulation resumes from the last completed step; an
            unrecoverable failure writes an emergency snapshot before
            the exception propagates.

    Returns:
        The recorded trajectories, with :attr:`TransientResult.report`
        describing every resilience action taken.
    """
    if method not in ("trap", "be"):
        raise ValueError(f"unknown method {method!r}")
    if dt <= 0 or t_stop <= dt:
        raise ValueError("need 0 < dt < t_stop")
    system = (
        circuit_or_system
        if isinstance(circuit_or_system, MNASystem)
        else MNASystem(circuit_or_system)
    )
    policy = policy or default_policy()
    report = current_run_report() or RunReport()
    g_matrix, c_matrix = system.build_matrices()
    sparse = sp.issparse(g_matrix)

    num_steps = int(round(t_stop / dt))
    times = np.arange(num_steps + 1) * dt
    indices, names = _recorded_columns(system, record)
    data = np.zeros((num_steps + 1, len(indices)))

    fingerprint = {
        "size": int(system.size),
        "num_steps": num_steps,
        "dt": float(dt),
        "t_stop": float(t_stop),
        "method": method,
        "columns": list(names),
    }
    start_step = 0
    x = None
    if checkpoint is not None and checkpoint.resume and checkpoint.path.exists():
        snap = load_checkpoint(checkpoint.path)
        verify_fingerprint(snap, "transient", fingerprint, checkpoint.path)
        start_step = int(snap.meta["step"])
        x = np.asarray(snap.arrays["x"], dtype=float)
        data[: start_step + 1] = snap.arrays["data"]
        report.record_resume(
            "transient",
            f"resumed from {checkpoint.path} at step {start_step}/{num_steps} "
            f"(t = {times[start_step]:.6g} s)",
        )

    if x is None:
        if x0 is None:
            with activate(report):
                x = dc_operating_point(system, t=0.0, policy=policy)
        elif isinstance(x0, str) and x0 == "zero":
            x = np.zeros(system.size)
        else:
            x = np.asarray(x0, dtype=float).copy()
            if x.shape != (system.size,):
                raise ValueError(
                    f"x0 has shape {x.shape}, expected ({system.size},)"
                )
        data[0] = x[indices]

    def save(step: int, reason: str) -> None:
        meta = {
            "fingerprint": fingerprint,
            "step": step,
            "reason": reason,
            "num_nodes": int(system.n),
            "unknowns": _unknown_names(system),
            "args": {
                "t_stop": float(t_stop),
                "dt": float(dt),
                "method": method,
                "record": None if record is None else list(record),
                "newton_tol": float(newton_tol),
                "max_newton": int(max_newton),
            },
        }
        deck = _embedded_deck(system, t_stop)
        if deck is not None:
            meta["deck"] = deck
        save_checkpoint(
            checkpoint.path, "transient", meta,
            {"x": x, "data": data[: step + 1]},
        )
        report.record_checkpoint(
            "transient", f"step {step}/{num_steps} -> {checkpoint.path} ({reason})"
        )

    # Bounded + quantized: step-halving produces one alpha per 2^k substep
    # size and near-equal alphas that differ only in the last ulps; a raw
    # float-keyed dict grows without bound and misses those near-equals.
    factor_cache: LRUCache = LRUCache(FACTOR_CACHE_SIZE)
    assembler = SweepAssembler(g_matrix, c_matrix)

    def companion(alpha: float) -> ResilientFactorization:
        key = quantize_alpha(alpha)
        factor = factor_cache.get(key)
        if factor is None:
            # The union pattern / operator wrapper is shared across all
            # alphas; the factorization (splu or the Krylov rung's
            # preconditioner factor) is cached per quantized alpha.
            factor = ResilientFactorization(
                assembler.at_alpha(alpha), site="transient", policy=policy
            )
            factor_cache.put(key, factor)
        return factor

    def linear_step(x_old, b_old, b_new, alpha, use_be):
        if use_be:
            rhs = c_matrix @ x_old * alpha + b_new
        else:
            rhs = (
                (alpha * (c_matrix @ x_old) - g_matrix @ x_old) + b_new + b_old
            )
        return companion(alpha).solve(rhs)

    def one_step(x_old, f_old, b_old, b_new, alpha, use_be):
        faults.maybe_fail("transient.step")
        if not system.has_devices:
            return linear_step(x_old, b_old, b_new, alpha, use_be)
        return _newton_step(
            system, g_matrix, c_matrix, assembler, x_old, f_old, b_old,
            b_new, alpha, use_be, newton_tol, max_newton, policy,
        )

    def halved_step(x_old, t_now, halvings):
        """Integrate [t_now, t_now + dt] as ``2^halvings`` BE substeps."""
        substeps = 2 ** halvings
        h = dt / substeps
        alpha_sub = 1.0 / h
        x_sub = x_old
        b_sub = system.rhs(t_now)
        f_sub, _ = (
            system.eval_devices(x_sub) if system.has_devices else (None, None)
        )
        for j in range(substeps):
            b_next_sub = system.rhs(t_now + (j + 1) * h)
            x_sub = one_step(x_sub, f_sub, b_sub, b_next_sub, alpha_sub, True)
            if system.has_devices:
                f_sub, _ = system.eval_devices(x_sub)
            b_sub = b_next_sub
        return x_sub

    steps_counter = obs_metrics.counter("transient.steps")
    retries_counter = obs_metrics.counter("transient.retries")
    halvings_counter = obs_metrics.counter("transient.step_halvings")
    with activate(report), span(
        "circuit.transient",
        size=system.size,
        steps=num_steps,
        method=method,
        sparse=sparse,
    ):
        b_prev = system.rhs(times[start_step])
        f_prev, _ = (
            system.eval_devices(x) if system.has_devices else (None, None)
        )
        since_checkpoint = 0
        for k in range(start_step, num_steps):
            t_next = times[k + 1]
            b_next = system.rhs(t_next)
            use_be = method == "be" or k < 2
            alpha = (1.0 / dt) if use_be else (2.0 / dt)

            retries = 0
            halvings = 0
            while True:
                try:
                    if halvings == 0:
                        x_new = one_step(x, f_prev, b_prev, b_next, alpha, use_be)
                    else:
                        x_new = halved_step(x, times[k], halvings)
                    break
                except (SingularCircuitError, ConvergenceError,
                        InjectedFault) as exc:
                    if retries < policy.max_retries:
                        retries += 1
                        retries_counter.inc()
                        report.record_retry(
                            "transient",
                            f"step {k + 1} retry {retries}/"
                            f"{policy.max_retries}: {exc}",
                        )
                        continue
                    if halvings < policy.max_step_halvings:
                        halvings += 1
                        halvings_counter.inc()
                        retries = 0
                        report.record_step_halving(
                            "transient",
                            f"step {k + 1} -> {2 ** halvings} BE substeps "
                            f"(h = {dt / 2 ** halvings:.3e}): {exc}",
                        )
                        continue
                    if checkpoint is not None:
                        save(k, f"emergency: step {k + 1} failed")
                    raise
            x = x_new
            steps_counter.inc()
            if system.has_devices:
                f_prev, _ = system.eval_devices(x)
            data[k + 1] = x[indices]
            b_prev = b_next
            since_checkpoint += 1
            if (
                checkpoint is not None
                and since_checkpoint >= checkpoint.interval
                and k + 1 < num_steps
            ):
                save(k + 1, "periodic")
                since_checkpoint = 0

    finish_checkpoint(checkpoint)
    return TransientResult(
        times=times, data=data, columns=names, system=system, report=report
    )


def _device_jacobian_system(
    assembler: SweepAssembler,
    alpha: float,
    triplets: tuple[np.ndarray, np.ndarray, np.ndarray],
):
    """``alpha C + G`` plus the device-Jacobian stamps, format-preserving.

    The sparse path adds the handful of device triplets as a sparse
    update -- never materializing an n x n dense Jacobian for a sparse
    system -- and the operator path composes them into the matvec and the
    near-field preconditioner of a new :class:`OperatorSystem`.
    """
    base = assembler.at_alpha(alpha)
    rows, cols, vals = triplets
    if assembler.mode == "sparse":
        if rows.size == 0:
            return base
        update = sp.coo_matrix((vals, (rows, cols)), shape=base.shape)
        return (base + update).tocsc()
    # Operator mode: keep the block operators matrix-free.
    update = sp.coo_matrix(
        (vals, (rows, cols)), shape=base.shape
    ).tocsr()

    def matvec(x: np.ndarray) -> np.ndarray:
        return base.matvec(x) + update @ x

    def materialize() -> np.ndarray:
        # Recorded dense fallback, built once per stagnated solve.
        return base.materialize() + update.toarray()  # qa: ignore[QA208]

    return OperatorSystem(
        matvec=matvec,
        precond=(base.precond + update).tocsc(),
        materialize=materialize,
        shape=base.shape,
        dtype=float,
        lowrank=base.lowrank,
    )


def _newton_step(
    system: MNASystem,
    g_matrix,
    c_matrix,
    assembler: SweepAssembler,
    x_old: np.ndarray,
    f_old: np.ndarray,
    b_old: np.ndarray,
    b_new: np.ndarray,
    alpha: float,
    use_be: bool,
    tol: float,
    max_iter: int,
    policy: ResiliencePolicy | None = None,
) -> np.ndarray:
    """One implicit time step with damped Newton iteration."""
    x = x_old.copy()
    cx_old = c_matrix @ x_old
    residual_history: list[float] = []
    last_step: float | None = None
    dense_mode = assembler.mode == "dense"
    iterations = obs_metrics.counter("newton.iterations.transient")
    for _ in range(max_iter):
        iterations.inc()
        if dense_mode:
            f, jac_dev = system.eval_devices(x)
        else:
            f, dev_triplets = system.eval_devices_triplets(x)
        if use_be:
            residual = alpha * (c_matrix @ x - cx_old) + g_matrix @ x + f - b_new
        else:
            residual = (
                alpha * (c_matrix @ x - cx_old)
                + g_matrix @ x + f
                + g_matrix @ x_old + f_old
                - b_new - b_old
            )
        norm = float(np.max(np.abs(residual)))
        residual_history.append(norm)
        if norm < tol:
            return x
        if dense_mode:
            jacobian = assembler.at_alpha(alpha)
            if jac_dev is not None:
                jacobian = jacobian + jac_dev
        else:
            jacobian = _device_jacobian_system(assembler, alpha, dev_triplets)
        delta = ResilientFactorization(
            jacobian, site="transient.newton", policy=policy
        ).solve(-np.asarray(residual).ravel())
        step = float(np.max(np.abs(delta)))
        if step > 2.0:
            delta = delta * (2.0 / step)
            step = 2.0
        last_step = step
        x = x + delta
    raise ConvergenceError(
        f"transient Newton failed to converge at alpha={alpha:.3e} "
        f"(residual {residual_history[-1]:.3e})",
        residual_history=tuple(residual_history),
        last_step=last_step,
    )
