"""Transient analysis: trapezoidal / backward-Euler time stepping.

Integrates ``C dx/dt + G x + f(x) = b(t)`` with a fixed step.  Linear
circuits factor the companion matrix once and reuse it every step;
circuits with nonlinear devices run damped Newton per step.  The first
couple of steps always use backward Euler to damp the startup transient
of inconsistent initial conditions (standard practice; trapezoidal rule
would ring forever on them).

The K-matrix element (inverse inductance, Section 4 of the paper) needs no
special handling here: :class:`MNASystem` already expresses it in the
``G``/``C`` matrices, which is exactly the "special circuit simulator that
can handle the K matrix" the paper calls for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.circuit.dc import ConvergenceError, dc_operating_point
from repro.circuit.linalg import Factorization
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import Circuit


@dataclass
class TransientResult:
    """Time-domain simulation result.

    Attributes:
        times: Time points [s], shape (num_steps + 1,).
        data: Unknown trajectories, shape (num_steps + 1, recorded columns).
        columns: Names of recorded columns (node or branch names).
        system: The compiled MNA system.
    """

    times: np.ndarray
    data: np.ndarray
    columns: list[str]
    system: MNASystem

    def __post_init__(self) -> None:
        self._col_index = {name: i for i, name in enumerate(self.columns)}

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of a node (ground returns zeros)."""
        if node == "0":
            return np.zeros(len(self.times))
        return self._column(node)

    def current(self, branch: str) -> np.ndarray:
        """Current waveform of an inductor / K / V-source branch."""
        return self._column(branch)

    def _column(self, name: str) -> np.ndarray:
        try:
            return self.data[:, self._col_index[name]]
        except KeyError:
            raise KeyError(
                f"{name!r} was not recorded; recorded columns: "
                f"{len(self.columns)} names (pass record=... to change)"
            ) from None


def _recorded_columns(system: MNASystem, record) -> tuple[list[int], list[str]]:
    """Resolve the record spec into (global indices, column names)."""
    if record is None:
        names = list(system.circuit.node_names)
        names += [
            name for name, _ in sorted(
                system._branch_index.items(), key=lambda kv: kv[1]
            )
        ]
        indices = [system.node_index(n) for n in system.circuit.node_names]
        indices += sorted(system._branch_index.values())
        return indices, names
    indices, names = [], []
    for name in record:
        try:
            idx = system.node_index(name)
            if idx < 0:
                continue
        except KeyError:
            idx = system.branch_index(name)
        indices.append(idx)
        names.append(name)
    return indices, names


def transient_analysis(
    circuit_or_system,
    t_stop: float,
    dt: float,
    method: str = "trap",
    x0=None,
    record=None,
    newton_tol: float = 1e-6,
    max_newton: int = 50,
) -> TransientResult:
    """Run a fixed-step transient simulation over [0, t_stop].

    Args:
        circuit_or_system: Circuit or prebuilt :class:`MNASystem`.
        t_stop: End time [s].
        dt: Time step [s].
        method: ``"trap"`` (trapezoidal; BE for the first 2 steps) or
            ``"be"`` (backward Euler throughout -- more damping, first-order
            accurate; useful to expose trapezoidal ringing artifacts).
        x0: Initial state: ``None`` computes the DC operating point at
            t = 0; ``"zero"`` starts from the all-zero state (SPICE's UIC);
            or an explicit state vector.
        record: Node/branch names to record; ``None`` records everything.
        newton_tol: Per-step Newton residual tolerance (max-norm).
        max_newton: Newton iteration cap per step.

    Returns:
        The recorded trajectories.
    """
    if method not in ("trap", "be"):
        raise ValueError(f"unknown method {method!r}")
    if dt <= 0 or t_stop <= dt:
        raise ValueError("need 0 < dt < t_stop")
    system = (
        circuit_or_system
        if isinstance(circuit_or_system, MNASystem)
        else MNASystem(circuit_or_system)
    )
    g_matrix, c_matrix = system.build_matrices()
    sparse = sp.issparse(g_matrix)

    if x0 is None:
        x = dc_operating_point(system, t=0.0)
    elif isinstance(x0, str) and x0 == "zero":
        x = np.zeros(system.size)
    else:
        x = np.asarray(x0, dtype=float).copy()
        if x.shape != (system.size,):
            raise ValueError(
                f"x0 has shape {x.shape}, expected ({system.size},)"
            )

    num_steps = int(round(t_stop / dt))
    times = np.arange(num_steps + 1) * dt
    indices, names = _recorded_columns(system, record)
    data = np.zeros((num_steps + 1, len(indices)))
    data[0] = x[indices]

    factor_cache: dict[float, Factorization] = {}

    def companion(alpha: float):
        if alpha not in factor_cache:
            a_matrix = alpha * c_matrix + g_matrix
            if sparse:
                a_matrix = a_matrix.tocsc()
            factor_cache[alpha] = Factorization(a_matrix)
        return factor_cache[alpha]

    b_prev = system.rhs(0.0)
    f_prev, _ = system.eval_devices(x)
    for k in range(num_steps):
        t_next = times[k + 1]
        b_next = system.rhs(t_next)
        use_be = method == "be" or k < 2
        alpha = (1.0 / dt) if use_be else (2.0 / dt)

        if not system.has_devices:
            if use_be:
                rhs = c_matrix @ x * alpha + b_next
            else:
                rhs = (alpha * (c_matrix @ x) - g_matrix @ x) + b_next + b_prev
            x = companion(alpha).solve(rhs)
        else:
            x = _newton_step(
                system, g_matrix, c_matrix, x, f_prev, b_prev, b_next,
                alpha, use_be, newton_tol, max_newton, sparse,
            )
            f_prev, _ = system.eval_devices(x)
        data[k + 1] = x[indices]
        b_prev = b_next

    return TransientResult(times=times, data=data, columns=names, system=system)


def _newton_step(
    system: MNASystem,
    g_matrix,
    c_matrix,
    x_old: np.ndarray,
    f_old: np.ndarray,
    b_old: np.ndarray,
    b_new: np.ndarray,
    alpha: float,
    use_be: bool,
    tol: float,
    max_iter: int,
    sparse: bool,
) -> np.ndarray:
    """One implicit time step with damped Newton iteration."""
    x = x_old.copy()
    cx_old = c_matrix @ x_old
    for _ in range(max_iter):
        f, jac_dev = system.eval_devices(x)
        if use_be:
            residual = alpha * (c_matrix @ x - cx_old) + g_matrix @ x + f - b_new
        else:
            residual = (
                alpha * (c_matrix @ x - cx_old)
                + g_matrix @ x + f
                + g_matrix @ x_old + f_old
                - b_new - b_old
            )
        if float(np.max(np.abs(residual))) < tol:
            return x
        jacobian = alpha * c_matrix + g_matrix
        if sparse:
            jacobian = np.asarray(jacobian.todense())
        if jac_dev is not None:
            jacobian = jacobian + jac_dev
        delta = Factorization(jacobian).solve(-np.asarray(residual).ravel())
        step = float(np.max(np.abs(delta)))
        if step > 2.0:
            delta = delta * (2.0 / step)
        x = x + delta
    raise ConvergenceError(
        f"transient Newton failed to converge at alpha={alpha:.3e} "
        f"(residual {float(np.max(np.abs(residual))):.3e})"
    )
