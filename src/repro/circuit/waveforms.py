"""Time-domain source waveforms.

Every independent source carries a waveform object: a callable mapping time
[s] to value (volts or amperes).  The shapes here cover everything the
paper's experiments need -- DC rails, clock edges (:class:`Pulse`,
:class:`Ramp`), piecewise-linear background-activity profiles (:class:`PWL`)
and sinusoids for AC sanity checks.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DC:
    """Constant value."""

    value: float

    def __call__(self, t: float) -> float:
        return self.value


@dataclass(frozen=True)
class Ramp:
    """Single transition from ``v0`` to ``v1`` starting at ``delay``.

    Linear over ``rise_time``; holds ``v1`` afterwards.  The canonical
    clock-edge stimulus for delay measurements.
    """

    v0: float
    v1: float
    delay: float
    rise_time: float

    def __post_init__(self) -> None:
        if self.rise_time <= 0:
            raise ValueError("rise_time must be positive")

    def __call__(self, t: float) -> float:
        if t <= self.delay:
            return self.v0
        if t >= self.delay + self.rise_time:
            return self.v1
        frac = (t - self.delay) / self.rise_time
        return self.v0 + (self.v1 - self.v0) * frac


@dataclass(frozen=True)
class Pulse:
    """SPICE-style periodic pulse.

    Args mirror SPICE's PULSE(): initial value, pulsed value, delay, rise
    time, fall time, pulse width, period.  ``period = 0`` gives a single
    pulse.
    """

    v0: float
    v1: float
    delay: float = 0.0
    rise_time: float = 1e-12
    fall_time: float = 1e-12
    width: float = 1e-9
    period: float = 0.0

    def __post_init__(self) -> None:
        if self.rise_time <= 0 or self.fall_time <= 0:
            raise ValueError("rise/fall times must be positive")
        if self.width < 0:
            raise ValueError("width must be non-negative")
        shape = self.rise_time + self.width + self.fall_time
        if 0.0 < self.period < shape:
            # The modulo wrap in __call__ would silently truncate the
            # pulse mid-rise/mid-fall every cycle.
            raise ValueError(
                f"period {self.period:g} is shorter than "
                f"rise_time + width + fall_time = {shape:g}; the pulse "
                "shape would be truncated by the periodic wrap"
            )

    def __call__(self, t: float) -> float:
        if t <= self.delay:
            return self.v0
        t_rel = t - self.delay
        if self.period > 0:
            t_rel = t_rel % self.period
        if t_rel < self.rise_time:
            return self.v0 + (self.v1 - self.v0) * t_rel / self.rise_time
        t_rel -= self.rise_time
        if t_rel < self.width:
            return self.v1
        t_rel -= self.width
        if t_rel < self.fall_time:
            return self.v1 + (self.v0 - self.v1) * t_rel / self.fall_time
        return self.v0


@dataclass(frozen=True)
class PWL:
    """Piecewise-linear waveform through (time, value) points.

    Holds the first value before the first point and the last value after
    the last point.  Used for the "time-varying current sources" that model
    background switching activity ("the current value changes with time
    during the simulation, to account for different parts of the chip
    switching at different times").
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ValueError("PWL needs at least one point")
        # Normalize and precompute the time axis ONCE: __call__ sits in
        # the transient inner loop (every rhs() evaluation), and
        # rebuilding the times list there made each lookup O(n) in list
        # construction on top of the O(log n) bisect.  The dataclass is
        # frozen, so the caches go in via object.__setattr__.
        points = tuple((float(p[0]), float(p[1])) for p in self.points)
        object.__setattr__(self, "points", points)
        times = tuple(p[0] for p in points)
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        object.__setattr__(self, "_times", times)

    def __call__(self, t: float) -> float:
        times: tuple[float, ...] = self._times
        if t <= times[0]:
            return self.points[0][1]
        if t >= times[-1]:
            return self.points[-1][1]
        i = bisect.bisect_right(times, t)
        t0, v0 = self.points[i - 1]
        t1, v1 = self.points[i]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)


@dataclass(frozen=True)
class SineWave:
    """Offset sinusoid: ``offset + amplitude * sin(2 pi f (t - delay))``."""

    offset: float
    amplitude: float
    frequency: float
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency * (t - self.delay)
        )
