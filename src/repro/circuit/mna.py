"""Modified nodal analysis (MNA) compilation.

Compiles a :class:`~repro.circuit.netlist.Circuit` into the descriptor
system::

    G x + C dx/dt + f(x) = b(t)

with unknowns ``x = [node voltages | L-branch currents | K-branch currents
| V-source currents]`` and the passivity-friendly skew-symmetric coupling
convention (node rows get ``+A i_branch``; branch rows get ``-A^T v``), so
that ``G + G^T >= 0`` and ``C >= 0`` hold for RLC circuits -- exactly the
structure PRIMA's congruence transforms need to preserve passivity.

Dense partial-inductance blocks are kept as dense sub-blocks; everything
else is sparse.  :meth:`MNASystem.build_matrices` materializes either
dense numpy arrays (small/full-PEEC systems), scipy CSR (large
sparsified systems), or — when the circuit carries operator-backed
inductor blocks — an :class:`~repro.circuit.operator.
OperatorStampedMatrix` C that applies the compressed blocks through
``matvec`` and never densifies them (``fmt="operator"``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class _DeviceBinding:
    """A nonlinear device with its nodes resolved to global indices (-1 = ground)."""

    device: object
    indices: tuple[int, ...]


class MNASystem:
    """Compiled MNA representation of a circuit.

    Attributes:
        circuit: The source netlist.
        n: Node-voltage unknowns.
        m_l: Inductor branch currents (scalar inductors first, then sets in
            declaration order).
        m_k: K-set branch currents.
        p: Voltage-source branch currents.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.n = circuit.num_nodes
        self.m_l = circuit.num_inductor_branches - sum(
            s.size for s in circuit.k_sets
        )
        self.m_k = sum(s.size for s in circuit.k_sets)
        self.m_ss = sum(
            mm.num_states + mm.num_ports for mm in circuit.macromodels
        )
        self.p = len(circuit.vsources)
        self.size = self.n + self.m_l + self.m_k + self.m_ss + self.p

        self._l_offset = self.n
        self._k_offset = self.n + self.m_l
        self._ss_offset = self.n + self.m_l + self.m_k
        self._v_offset = self._ss_offset + self.m_ss

        self._branch_index: dict[str, int] = {}
        self._build_branch_index()
        self._devices = [
            _DeviceBinding(
                device=dev,
                indices=tuple(circuit.node_index(node) for node in dev.nodes),
            )
            for dev in circuit.devices
        ]
        self._cache: dict[str, tuple] = {}

    # -- indexing ------------------------------------------------------------

    def _build_branch_index(self) -> None:
        k = self._l_offset
        for ind in self.circuit.inductors:
            self._branch_index[ind.name] = k
            k += 1
        for lset in self.circuit.inductor_sets:
            for j in range(lset.size):
                self._branch_index[f"{lset.name}[{j}]"] = k
                k += 1
        for oset in self.circuit.operator_sets:
            for j in range(oset.size):
                self._branch_index[f"{oset.name}[{j}]"] = k
                k += 1
        for kset in self.circuit.k_sets:
            for j in range(kset.size):
                self._branch_index[f"{kset.name}[{j}]"] = k
                k += 1
        for mm in self.circuit.macromodels:
            for j in range(mm.num_states):
                self._branch_index[f"{mm.name}.z{j}"] = k
                k += 1
            for j in range(mm.num_ports):
                self._branch_index[f"{mm.name}.p{j}"] = k
                k += 1
        for src in self.circuit.vsources:
            self._branch_index[src.name] = k
            k += 1

    def node_index(self, name: str) -> int:
        """Global unknown index of a node voltage (-1 for ground)."""
        return self.circuit.node_index(name)

    def branch_index(self, name: str) -> int:
        """Global unknown index of a branch current.

        Scalar inductors and voltage sources are addressed by element name;
        set branches by ``"setname[k]"``.
        """
        try:
            return self._branch_index[name]
        except KeyError:
            raise KeyError(f"unknown branch {name!r}") from None

    @property
    def has_devices(self) -> bool:
        """True when nonlinear devices are present."""
        return bool(self._devices)

    # -- matrix assembly -------------------------------------------------------

    def _stamp_entries(self):
        """COO triplets for G and C, plus the dense / operator L blocks.

        Returns:
            (g_rows, g_cols, g_vals, c_rows, c_cols, c_vals, dense_blocks,
            operator_blocks) where dense_blocks is [(offset, matrix)] to
            add into C and operator_blocks is [(offset, operator)] kept
            matrix-free.
        """
        circuit = self.circuit
        gr: list[int] = []
        gc: list[int] = []
        gv: list[float] = []
        cr: list[int] = []
        cc: list[int] = []
        cv: list[float] = []

        def stamp_g(i: int, j: int, val: float) -> None:
            if i >= 0 and j >= 0:
                gr.append(i)
                gc.append(j)
                gv.append(val)

        def stamp_c(i: int, j: int, val: float) -> None:
            if i >= 0 and j >= 0:
                cr.append(i)
                cc.append(j)
                cv.append(val)

        ni = circuit.node_index
        for r in circuit.resistors:
            g = 1.0 / r.resistance
            a, b = ni(r.n1), ni(r.n2)
            stamp_g(a, a, g)
            stamp_g(b, b, g)
            stamp_g(a, b, -g)
            stamp_g(b, a, -g)
        for c in circuit.capacitors:
            a, b = ni(c.n1), ni(c.n2)
            stamp_c(a, a, c.capacitance)
            stamp_c(b, b, c.capacitance)
            stamp_c(a, b, -c.capacitance)
            stamp_c(b, a, -c.capacitance)

        def stamp_branch(row: int, n1: int, n2: int) -> None:
            """Skew incidence: KCL gets +i at n1, -i at n2; branch row gets
            -(v1 - v2)."""
            if n1 >= 0:
                stamp_g(n1, row, 1.0)
                stamp_g(row, n1, -1.0)
            if n2 >= 0:
                stamp_g(n2, row, -1.0)
                stamp_g(row, n2, 1.0)

        dense_blocks: list[tuple[int, np.ndarray]] = []
        k = self._l_offset
        # Scalar inductors (+ pairwise mutuals) form one implicit block.
        scalar_pos = {}
        for ind in circuit.inductors:
            scalar_pos[ind.name] = k
            stamp_branch(k, ni(ind.n1), ni(ind.n2))
            stamp_c(k, k, ind.inductance)
            k += 1
        for mut in circuit.mutuals:
            i = scalar_pos[mut.inductor1]
            j = scalar_pos[mut.inductor2]
            stamp_c(i, j, mut.mutual)
            stamp_c(j, i, mut.mutual)
        for lset in circuit.inductor_sets:
            for j, (a, b) in enumerate(lset.branches):
                stamp_branch(k + j, ni(a), ni(b))
            dense_blocks.append((k, lset.matrix))
            k += lset.size
        operator_blocks: list[tuple[int, object]] = []
        for oset in circuit.operator_sets:
            for j, (a, b) in enumerate(oset.branches):
                stamp_branch(k + j, ni(a), ni(b))
            operator_blocks.append((k, oset.operator))
            k += oset.size
        for kset in circuit.k_sets:
            # Branch rows: d i/dt - K (v1 - v2) = 0.
            for j in range(kset.size):
                stamp_c(k + j, k + j, 1.0)
            for j, (a, b) in enumerate(kset.branches):
                ia, ib = ni(a), ni(b)
                # KCL gets the branch currents.
                if ia >= 0:
                    stamp_g(ia, k + j, 1.0)
                if ib >= 0:
                    stamp_g(ib, k + j, -1.0)
                # Branch row r couples to all branch voltages via K[r, j].
                for r in range(kset.size):
                    kval = kset.kmatrix[r, j]
                    if kval == 0.0:
                        continue
                    if ia >= 0:
                        stamp_g(k + r, ia, -kval)
                    if ib >= 0:
                        stamp_g(k + r, ib, kval)
            k += kset.size
        for mm in circuit.macromodels:
            z0 = k
            p0 = k + mm.num_states
            # State rows: c_red dz/dt + g_red z - b_red i_port = 0.
            q = mm.num_states
            for r in range(q):
                for s in range(q):
                    if mm.g_red[r, s] != 0.0:
                        stamp_g(z0 + r, z0 + s, mm.g_red[r, s])
                    if mm.c_red[r, s] != 0.0:
                        stamp_c(z0 + r, z0 + s, mm.c_red[r, s])
                for j in range(mm.num_ports):
                    if mm.b_red[r, j] != 0.0:
                        stamp_g(z0 + r, p0 + j, -mm.b_red[r, j])
            # Port rows: -(v+ - v-) + b_red^T z = 0; KCL gets port currents.
            for j, (a, b_node) in enumerate(mm.ports):
                ia, ib = ni(a), ni(b_node)
                if ia >= 0:
                    stamp_g(ia, p0 + j, 1.0)
                    stamp_g(p0 + j, ia, -1.0)
                if ib >= 0:
                    stamp_g(ib, p0 + j, -1.0)
                    stamp_g(p0 + j, ib, 1.0)
                for r in range(q):
                    if mm.b_red[r, j] != 0.0:
                        stamp_g(p0 + j, z0 + r, mm.b_red[r, j])
            k = p0 + mm.num_ports
        for src in circuit.vsources:
            stamp_branch(k, ni(src.n_plus), ni(src.n_minus))
            k += 1
        return gr, gc, gv, cr, cc, cv, dense_blocks, operator_blocks

    def build_matrices(self, fmt: str = "auto") -> tuple:
        """Assemble (G, C) in the requested format.

        Args:
            fmt: ``"dense"`` (numpy arrays), ``"sparse"`` (scipy CSR),
                ``"operator"`` (sparse G + :class:`~repro.circuit.operator.
                OperatorStampedMatrix` C, only valid with operator-backed
                inductor sets), or ``"auto"`` -- operator when the circuit
                carries operator sets, otherwise dense when the system is
                small or dominated by dense inductance blocks, sparse
                otherwise.

        Returns:
            (G, C) matrices of shape (size, size).  Requesting
            ``"dense"``/``"sparse"`` with operator sets materializes the
            operators via ``to_dense()`` -- a validation path, not the
            production solve path.
        """
        if fmt not in ("auto", "dense", "sparse", "operator"):
            raise ValueError(f"unknown format {fmt!r}")
        has_operators = bool(self.circuit.operator_sets)
        if fmt == "operator" and not has_operators:
            raise ValueError(
                "fmt='operator' requires at least one operator-backed "
                "inductor set (Circuit.add_inductor_operator_set)"
            )
        if fmt == "auto":
            if has_operators:
                fmt = "operator"
            else:
                dense_elems = sum(b.size for _, b in self._matrix_blocks())
                fmt = (
                    "dense"
                    if self.size <= 2500 or dense_elems > 0.05 * self.size**2
                    else "sparse"
                )
        if fmt in self._cache:
            return self._cache[fmt]
        gr, gc, gv, cr, cc, cv, dense_blocks, operator_blocks = (
            self._stamp_entries()
        )
        shape = (self.size, self.size)
        g_coo = sp.coo_matrix((gv, (gr, gc)), shape=shape)
        c_coo = sp.coo_matrix((cv, (cr, cc)), shape=shape)
        if fmt == "dense":
            g = g_coo.toarray()
            c = c_coo.toarray()
            for off, block in dense_blocks:
                c[off : off + block.shape[0], off : off + block.shape[1]] += block
            for off, op in operator_blocks:
                m = op.shape[0]
                c[off : off + m, off : off + m] += op.to_dense()
        elif fmt == "operator":
            from repro.circuit.operator import OperatorStampedMatrix

            g = g_coo.tocsr()
            c_sparse = c_coo.tocsr()
            if dense_blocks:
                c_sparse = (c_sparse + self._dense_blocks_coo(
                    dense_blocks, shape)).tocsr()
            c = OperatorStampedMatrix(c_sparse, operator_blocks)
        else:
            g = g_coo.tocsr()
            c = c_coo.tocsr()
            if operator_blocks:
                rows, cols, vals = [], [], []
                for off, op in operator_blocks:
                    block = op.to_dense()
                    nz = np.nonzero(block)
                    rows.append(nz[0] + off)
                    cols.append(nz[1] + off)
                    vals.append(block[nz])
                extra_op = sp.coo_matrix(
                    (np.concatenate(vals),
                     (np.concatenate(rows), np.concatenate(cols))),
                    shape=shape,
                )
                c = (c + extra_op).tocsr()
            if dense_blocks:
                c = (c + self._dense_blocks_coo(dense_blocks, shape)).tocsr()
        self._cache[fmt] = (g, c)
        self._record_matrix_metrics(fmt, g, c)
        return g, c

    @staticmethod
    def _dense_blocks_coo(
        dense_blocks: list[tuple[int, np.ndarray]],
        shape: tuple[int, int],
    ) -> sp.coo_matrix:
        rows, cols, vals = [], [], []
        for off, block in dense_blocks:
            nz = np.nonzero(block)
            rows.append(nz[0] + off)
            cols.append(nz[1] + off)
            vals.append(block[nz])
        return sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=shape,
        )

    def _record_matrix_metrics(self, fmt: str, g, c) -> None:
        """Publish MNA size / nnz / density gauges (paper Table 1)."""
        from repro.obs import metrics as obs_metrics

        size = self.size
        if sp.issparse(g):
            nnz = int(g.nnz + c.nnz)
        else:
            nnz = int(np.count_nonzero(g) + np.count_nonzero(c))
        obs_metrics.gauge("mna.size").set(size)
        obs_metrics.gauge("mna.nnz").set(nnz)
        obs_metrics.gauge("mna.density").set(
            nnz / (2.0 * size * size) if size else 0.0
        )
        obs_metrics.gauge("mna.sparse").set(1.0 if sp.issparse(g) else 0.0)
        from repro.circuit.operator import OperatorStampedMatrix

        if isinstance(c, OperatorStampedMatrix):
            obs_metrics.gauge("mna.operator").set(1.0)
            obs_metrics.gauge("mna.operator_bytes").set(float(c.memory_bytes))
        else:
            obs_metrics.gauge("mna.operator").set(0.0)

    def _matrix_blocks(self) -> list[tuple[int, np.ndarray]]:
        blocks = []
        off = self._l_offset + len(self.circuit.inductors)
        for lset in self.circuit.inductor_sets:
            blocks.append((off, lset.matrix))
            off += lset.size
        return blocks

    # -- right-hand side ---------------------------------------------------------

    def rhs(self, t: float) -> np.ndarray:
        """Source vector b(t)."""
        b = np.zeros(self.size)
        ni = self.circuit.node_index
        for src in self.circuit.isources:
            current = src.waveform(t)
            a, c = ni(src.n_plus), ni(src.n_minus)
            if a >= 0:
                b[a] -= current
            if c >= 0:
                b[c] += current
        for src in self.circuit.vsources:
            row = self._branch_index[src.name]
            b[row] = -src.waveform(t)
        return b

    # -- nonlinear devices ---------------------------------------------------------

    def eval_devices(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Device current vector f(x) and dense Jacobian contribution.

        Returns:
            (f, J): f has shape (size,); J is (size, size) dense or None
            when the circuit has no devices.  Device currents flow *out of*
            nodes, entering the KCL rows with positive sign.
        """
        if not self._devices:
            return np.zeros(self.size), None
        f, triplets = self.eval_devices_triplets(x)
        rows, cols, vals = triplets
        jac = np.zeros((self.size, self.size))
        np.add.at(jac, (rows, cols), vals)
        return f, jac

    def eval_devices_triplets(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Device currents f(x) and the Jacobian as COO triplets.

        The sparse companion of :meth:`eval_devices`: the Jacobian is
        returned as ``(rows, cols, vals)`` int/float arrays (duplicates
        allowed, summed on assembly) so sparse Newton steps never allocate
        an n x n array for a handful of device stamps.
        """
        f = np.zeros(self.size)
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for binding in self._devices:
            local_v = np.array(
                [x[i] if i >= 0 else 0.0 for i in binding.indices]
            )
            i_dev, j_dev = binding.device.evaluate(local_v)
            for a, ga in enumerate(binding.indices):
                if ga < 0:
                    continue
                f[ga] += i_dev[a]
                for b, gb in enumerate(binding.indices):
                    if gb >= 0:
                        rows.append(ga)
                        cols.append(gb)
                        vals.append(j_dev[a, b])
        return f, (
            np.asarray(rows, dtype=np.intp),
            np.asarray(cols, dtype=np.intp),
            np.asarray(vals, dtype=float),
        )
