"""Operator-backed MNA matrices (matrix-free solve tier).

When a circuit carries an :class:`~repro.circuit.elements.
OperatorInductorSet` — a partial-inductance block represented by a
compressed operator such as :class:`repro.extraction.hierarchical.
HierarchicalPartialL` — the C matrix of ``G x + C dx/dt = b`` can no
longer be a plain array without densifying the block and losing the
O(N log N) storage the hierarchical engine bought.  This module provides
the composite that keeps it matrix-free:

* :class:`OperatorStampedMatrix` — the sparse COO stamps (capacitors,
  scalar/dense inductor entries, macromodel C blocks) plus a list of
  ``(offset, operator)`` diagonal blocks, exposing ``matvec`` (complex
  safe), ``to_dense`` for validation, and ``near_sparse`` — the sparse
  stamps plus each operator's exact near-field block diagonal, which is
  the ``splu``-able preconditioner seed for the Krylov rung in
  :mod:`repro.circuit.linalg`.

The composite is deliberately dumb about *solving*: it only knows how to
apply itself.  :class:`repro.circuit.linalg.OperatorSystem` wraps it
together with G and a frequency/step scaling into the object the
resilient factorization chain consumes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["OperatorStampedMatrix"]


class OperatorStampedMatrix:
    """Sparse stamps + operator diagonal blocks, applied without densify.

    Attributes:
        sparse: CSR matrix with every stamped (non-operator) C entry.
        blocks: ``[(offset, operator)]`` square diagonal blocks; each
            operator exposes ``shape``, ``matvec``, ``to_dense``, and
            ``near_block_diagonal``.
    """

    def __init__(self, sparse: sp.spmatrix, blocks: list[tuple[int, object]]):
        self.sparse = sparse.tocsr()
        self.blocks = list(blocks)
        self.shape = self.sparse.shape
        self._far_lowrank: tuple[np.ndarray, np.ndarray] | None = None
        n = self.shape[0]
        for off, op in self.blocks:
            m = op.shape[0]
            if off < 0 or off + m > n:
                raise ValueError(
                    f"operator block [{off}:{off + m}] falls outside the "
                    f"{n}x{n} system"
                )

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(float)

    @property
    def nnz(self) -> int:
        """Sparse-entry count plus the operators' *effective* entries."""
        total = int(self.sparse.nnz)
        for _, op in self.blocks:
            # 8 bytes/float: memory_bytes is the honest size of the block.
            total += int(getattr(op, "memory_bytes", 0)) // 8
        return total

    @property
    def memory_bytes(self) -> int:
        total = int(self.sparse.data.nbytes + self.sparse.indices.nbytes
                    + self.sparse.indptr.nbytes)
        for _, op in self.blocks:
            total += int(getattr(op, "memory_bytes", 0))
        return total

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = C @ x``; complex vectors are split into real/imag parts
        because the compressed operators are real-valued."""
        x = np.asarray(x)
        if x.ndim == 2:
            return np.column_stack(
                [self.matvec(x[:, j]) for j in range(x.shape[1])]
            )
        if np.iscomplexobj(x):
            return self.matvec(x.real) + 1j * self.matvec(x.imag)
        x = np.asarray(x, dtype=float)
        y = self.sparse @ x
        for off, op in self.blocks:
            m = op.shape[0]
            y[off:off + m] += op.matvec(x[off:off + m])
        return y

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def near_sparse(self) -> sp.csr_matrix:
        """Sparse stamps + exact near-field block diagonals.

        A symmetric sparse surrogate of the full C: exact wherever the
        operators' strongest couplings live, zero in the compressed far
        field.  ``splu`` of ``G + scale * near_sparse()`` is the Krylov
        preconditioner.
        """
        mat = self.sparse.tocoo(copy=True)
        parts = [mat]
        for off, op in self.blocks:
            near = op.near_block_diagonal().tocoo()
            parts.append(
                sp.coo_matrix(
                    (near.data, (near.row + off, near.col + off)),
                    shape=self.shape,
                )
            )
        rows = np.concatenate([p.row for p in parts])
        cols = np.concatenate([p.col for p in parts])
        vals = np.concatenate([p.data for p in parts])
        return sp.coo_matrix((vals, (rows, cols)), shape=self.shape).tocsr()

    def far_lowrank(self) -> tuple[np.ndarray, np.ndarray]:
        """Global low-rank factors ``(U, V)`` of the compressed far field.

        Stacked from each operator block's own factors, shifted to system
        coordinates, so ``C == near_sparse() + U @ V`` exactly.  Cached:
        the factors are frequency-independent and shared by every sweep
        point.
        """
        if self._far_lowrank is None:
            n = self.shape[0]
            us: list[np.ndarray] = []
            vs: list[np.ndarray] = []
            for off, op in self.blocks:
                u_blk, v_blk = op.far_lowrank()
                k = u_blk.shape[1]
                if k == 0:
                    continue
                m = op.shape[0]
                u_sys = np.zeros((n, k))
                v_sys = np.zeros((k, n))
                u_sys[off:off + m] = u_blk
                v_sys[:, off:off + m] = v_blk
                us.append(u_sys)
                vs.append(v_sys)
            if us:
                self._far_lowrank = (np.hstack(us), np.vstack(vs))
            else:
                self._far_lowrank = (np.zeros((n, 0)), np.zeros((0, n)))
        return self._far_lowrank

    def to_dense(self) -> np.ndarray:
        """Materialize the full C (validation / dense-fallback paths)."""
        out = self.sparse.toarray()
        for off, op in self.blocks:
            m = op.shape[0]
            out[off:off + m, off:off + m] += op.to_dense()
        return out

    def __repr__(self) -> str:
        return (
            f"OperatorStampedMatrix(shape={self.shape}, "
            f"sparse_nnz={self.sparse.nnz}, blocks={len(self.blocks)})"
        )
