"""Adaptive-step transient integration with local-truncation-error control.

The fixed-step engine (:mod:`repro.circuit.transient`) is ideal for the
benchmark comparisons (identical time grids).  For production-style runs
-- long quiet tails after a fast edge -- an adaptive step is far cheaper.
This module implements the classic SPICE recipe:

* step with trapezoidal;
* estimate the local truncation error from the divided third difference
  of each state (trapezoidal's LTE is ``-h^3 x'''/12``);
* accept and grow the step when the estimate is inside tolerance, reject
  and shrink when not.

Only linear circuits are supported (each accepted step size change costs
one refactorization; Newton-per-step nonlinear circuits would dominate
that cost anyway, so they stay on the fixed-step engine).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.dc import dc_operating_point
from repro.circuit.linalg import (
    ResilientFactorization,
    SingularCircuitError,
    SweepAssembler,
)
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.trace import current_span, span
from repro.perf.cache import FACTOR_CACHE_SIZE, LRUCache, quantize_alpha
from repro.resilience import faults
from repro.resilience.faults import InjectedFault
from repro.resilience.policy import ResiliencePolicy, default_policy
from repro.resilience.report import RunReport, activate, current_run_report


@dataclass
class AdaptiveResult:
    """Adaptive transient result (non-uniform time base).

    Attributes:
        times: Accepted time points [s].
        data: States at the accepted points, shape (len(times), columns).
        columns: Recorded column names.
        num_rejected: Steps rejected by the LTE controller.
        num_factorizations: Matrix factorizations performed.
        report: Resilience log (solve faults absorbed by halving the step).
    """

    times: np.ndarray
    data: np.ndarray
    columns: list[str]
    num_rejected: int
    num_factorizations: int
    report: RunReport | None = None

    def __post_init__(self) -> None:
        self._col_index = {name: i for i, name in enumerate(self.columns)}

    def voltage(self, node: str) -> np.ndarray:
        if node == "0":
            return np.zeros(len(self.times))
        return self.data[:, self._col_index[node]]

    def current(self, branch: str) -> np.ndarray:
        return self.data[:, self._col_index[branch]]

    def resampled(self, times: np.ndarray) -> "AdaptiveResult":
        """Interpolate onto a uniform grid (for waveform comparison)."""
        t = np.asarray(times, dtype=float)
        data = np.column_stack([
            np.interp(t, self.times, self.data[:, j])
            for j in range(self.data.shape[1])
        ])
        return AdaptiveResult(
            times=t, data=data, columns=self.columns,
            num_rejected=self.num_rejected,
            num_factorizations=self.num_factorizations,
            report=self.report,
        )


def adaptive_transient(
    circuit_or_system,
    t_stop: float,
    dt_initial: float,
    dt_min: float | None = None,
    dt_max: float | None = None,
    reltol: float = 1e-3,
    abstol: float = 1e-6,
    record=None,
    x0=None,
    policy: ResiliencePolicy | None = None,
) -> AdaptiveResult:
    """Run an LTE-controlled trapezoidal transient over [0, t_stop].

    Args:
        circuit_or_system: Linear circuit or prebuilt system.
        t_stop: End time [s].
        dt_initial: Starting step [s].
        dt_min: Smallest allowed step; default ``dt_initial / 1000``.
        dt_max: Largest allowed step; default ``t_stop / 20``.
        reltol: Relative LTE tolerance.
        abstol: Absolute LTE floor (volts/amps).
        record: Node/branch names to record; ``None`` records all.
        x0: Initial state (``None`` = DC operating point, ``"zero"`` = 0).
        policy: Resilience policy governing solver escalation and how
            many times a faulted step may be halved; default from
            ``REPRO_RESILIENCE``.

    Returns:
        The accepted trajectory.
    """
    with span("circuit.transient.adaptive"):
        return _adaptive_solve(
            circuit_or_system, t_stop, dt_initial, dt_min, dt_max,
            reltol, abstol, record, x0, policy,
        )


def _adaptive_solve(
    circuit_or_system,
    t_stop: float,
    dt_initial: float,
    dt_min: float | None,
    dt_max: float | None,
    reltol: float,
    abstol: float,
    record,
    x0,
    policy: ResiliencePolicy | None,
) -> AdaptiveResult:
    system = (
        circuit_or_system
        if isinstance(circuit_or_system, MNASystem)
        else MNASystem(circuit_or_system)
    )
    if system.has_devices:
        raise ValueError(
            "adaptive_transient handles linear circuits; use "
            "transient_analysis for circuits with devices"
        )
    if dt_initial <= 0 or t_stop <= dt_initial:
        raise ValueError("need 0 < dt_initial < t_stop")
    dt_min = dt_min if dt_min is not None else dt_initial / 1000.0
    dt_max = dt_max if dt_max is not None else t_stop / 20.0

    g_matrix, c_matrix = system.build_matrices()
    assembler = SweepAssembler(g_matrix, c_matrix)

    policy = policy or default_policy()
    report = current_run_report() or RunReport()

    if x0 is None:
        with activate(report):
            x = dc_operating_point(system, t=0.0, policy=policy)
    elif isinstance(x0, str) and x0 == "zero":
        x = np.zeros(system.size)
    else:
        x = np.asarray(x0, dtype=float).copy()

    from repro.circuit.transient import _recorded_columns

    indices, names = _recorded_columns(system, record)

    times = [0.0]
    states = [x[indices]]
    history: list[tuple[float, np.ndarray]] = [(0.0, x.copy())]
    num_rejected = 0
    num_factor = 0

    # Bounded + quantized: the LTE controller walks through a continuum of
    # step sizes, and solve-fault step-halving re-approaches old alphas
    # with last-ulp differences; a raw float-keyed dict both grows without
    # bound and misses those near-equal revisits.
    factor_cache: LRUCache = LRUCache(FACTOR_CACHE_SIZE)

    def solve_step(x_now, t_now, h):
        nonlocal num_factor
        faults.maybe_fail("adaptive.step")
        alpha = 2.0 / h
        key = quantize_alpha(alpha)
        factor = factor_cache.get(key)
        if factor is None:
            factor = ResilientFactorization(
                assembler.at_alpha(alpha), site="adaptive", policy=policy
            )
            factor_cache.put(key, factor)
            num_factor += 1
        rhs = (
            alpha * (c_matrix @ x_now)
            - g_matrix @ x_now
            + system.rhs(t_now + h)
            + system.rhs(t_now)
        )
        return factor.solve(rhs)

    t = 0.0
    h = dt_initial
    scale_limit = 2.0
    retries = 0
    halvings = 0
    while t < t_stop - 1e-21:
        h = min(h, t_stop - t, dt_max)
        try:
            with activate(report):
                x_new = solve_step(x, t, h)
        except (SingularCircuitError, InjectedFault) as exc:
            # Solve faults are handled like LTE rejections: retry the
            # identical step, then halve it -- both budgets bounded.
            if retries < policy.max_retries:
                retries += 1
                report.record_retry(
                    "adaptive",
                    f"t = {t:.6g}: retry {retries}/{policy.max_retries}: {exc}",
                )
                continue
            if halvings < policy.max_step_halvings and h > dt_min * 1.0001:
                halvings += 1
                retries = 0
                num_rejected += 1
                h = max(h * 0.5, dt_min)
                report.record_step_halving(
                    "adaptive",
                    f"t = {t:.6g}: solve failed, h -> {h:.3e}: {exc}",
                )
                continue
            raise
        retries = 0
        halvings = 0

        # LTE estimate needs two history points for the third difference;
        # warm up with conservative acceptance.
        if len(history) >= 2:
            (t2, x2), (t1, x1) = history[-2], history[-1]
            lte = _trap_lte(t2, x2, t1, x1, t + h, x_new)
            tol = abstol + reltol * np.maximum(np.abs(x_new), np.abs(x))
            ratio = float(np.max(lte / tol))
            if ratio > 1.0 and h > dt_min * 1.0001:
                h = max(h * max(0.5, 0.9 / ratio ** (1 / 3)), dt_min)
                num_rejected += 1
                continue
            grow = 0.9 / max(ratio, 1e-6) ** (1 / 3)
            next_h = h * min(scale_limit, max(0.5, grow))
        else:
            next_h = h

        t += h
        x = x_new
        history.append((t, x.copy()))
        if len(history) > 3:
            history.pop(0)
        times.append(t)
        states.append(x[indices])
        h = min(max(next_h, dt_min), dt_max)

    obs_metrics.counter("adaptive.steps").inc(max(len(times) - 1, 0))
    obs_metrics.counter("adaptive.rejected").inc(num_rejected)
    cur = current_span()
    if cur is not None:
        cur.attrs.update(
            size=system.size,
            accepted=len(times) - 1,
            rejected=num_rejected,
            factorizations=num_factor,
        )
    return AdaptiveResult(
        times=np.asarray(times),
        data=np.asarray(states),
        columns=names,
        num_rejected=num_rejected,
        num_factorizations=num_factor,
        report=report,
    )


def _trap_lte(
    t0: float, x0: np.ndarray,
    t1: float, x1: np.ndarray,
    t2: float, x2: np.ndarray,
) -> np.ndarray:
    """Trapezoidal LTE estimate via the divided third difference.

    LTE ~ (h^3 / 12) |x'''|; x''' is estimated from the last three points
    (second divided difference of the first derivative).
    """
    h01 = t1 - t0
    h12 = t2 - t1
    d01 = (x1 - x0) / h01
    d12 = (x2 - x1) / h12
    x2nd = 2.0 * (d12 - d01) / (h01 + h12)
    # Third derivative from the change of curvature across the window.
    x3rd = np.abs(x2nd) / max((h01 + h12) / 2.0, 1e-21)
    return (h12**3 / 12.0) * x3rd
