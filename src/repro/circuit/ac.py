"""AC (small-signal frequency-domain) analysis.

Solves ``(G + j omega C) x = b_ac`` over a list of frequencies.  This is
the engine behind loop-inductance extraction (Section 5 of the paper): the
loop extractor drives a 1 A AC current into a port and reads the port
voltage as the complex loop impedance, whose real part is R(f) and whose
imaginary part over omega is L(f).

Nonlinear devices are not linearized here; circuits passed to AC analysis
must be purely linear (the extraction netlists are).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.linalg import (
    ResilientFactorization,
    SweepAssembler,
    add_gmin,
)
from repro.obs.trace import span
from repro.resilience.policy import ResiliencePolicy, default_policy
from repro.resilience.report import current_run_report
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import Circuit


@dataclass
class ACResult:
    """Frequency-sweep result.

    Attributes:
        frequencies: Sweep frequencies [Hz].
        x: Complex solution matrix, shape (num_freqs, system size).
        system: The compiled MNA system (for index lookups).
    """

    frequencies: np.ndarray
    x: np.ndarray
    system: MNASystem

    def voltage(self, node: str) -> np.ndarray:
        """Complex node voltage across the sweep."""
        idx = self.system.node_index(node)
        if idx < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.x[:, idx]

    def branch_current(self, name: str) -> np.ndarray:
        """Complex branch current across the sweep."""
        return self.x[:, self.system.branch_index(name)]


def _as_system(circuit_or_system) -> MNASystem:
    if isinstance(circuit_or_system, MNASystem):
        return circuit_or_system
    return MNASystem(circuit_or_system)


def _ac_rhs(system: MNASystem, stimulus: dict[str, complex]) -> np.ndarray:
    """Build the AC source vector from a {source name: amplitude} map."""
    b = np.zeros(system.size, dtype=complex)
    known = set()
    for src in system.circuit.isources:
        known.add(src.name)
        amp = stimulus.get(src.name)
        if amp is None:
            continue
        a = system.node_index(src.n_plus)
        c = system.node_index(src.n_minus)
        if a >= 0:
            b[a] -= amp
        if c >= 0:
            b[c] += amp
    for src in system.circuit.vsources:
        known.add(src.name)
        amp = stimulus.get(src.name)
        if amp is None:
            continue
        b[system.branch_index(src.name)] = -amp
    unknown = set(stimulus) - known
    if unknown:
        raise KeyError(f"AC stimulus names not in circuit: {sorted(unknown)}")
    return b


def ac_analysis(
    circuit_or_system,
    frequencies,
    stimulus: dict[str, complex],
    gmin: float = 0.0,
    policy: ResiliencePolicy | None = None,
    workers: int | None = None,
) -> ACResult:
    """Sweep ``(G + j omega C) x = b_ac`` over ``frequencies``.

    Args:
        circuit_or_system: Linear circuit or prebuilt system.
        frequencies: Iterable of frequencies [Hz] (0 allowed: DC point).
        stimulus: Map of source name -> complex AC amplitude; sources not
            listed are switched off for the small-signal solve.
        gmin: Optional node-diagonal leak for near-singular topologies.
        policy: Resilience policy for the escalation chain; default from
            ``REPRO_RESILIENCE``.
        workers: Process-pool width for the sweep (bit-identical to the
            serial loop); default from ``REPRO_WORKERS`` / CPU count, 1
            forces serial.

    Returns:
        The sweep result.
    """
    system = _as_system(circuit_or_system)
    policy = policy or default_policy()
    if system.has_devices:
        raise ValueError(
            "AC analysis requires a linear circuit; linearize or remove the "
            "nonlinear devices first"
        )
    freqs = np.asarray(list(frequencies), dtype=float)
    g_matrix, c_matrix = system.build_matrices()
    g_matrix = add_gmin(g_matrix, system.n, gmin)
    b = _ac_rhs(system, stimulus)
    out = np.zeros((len(freqs), system.size), dtype=complex)

    from repro.perf.parallel import (
        MIN_PARALLEL_SIZE, SweepSpec, explicit_workers, parallel_sweep,
        worker_count,
    )

    num_workers = worker_count(workers)
    use_pool = num_workers > 1 and len(freqs) > 1 and (
        explicit_workers(workers) or system.size >= MIN_PARALLEL_SIZE
    )
    with span(
        "circuit.ac", points=len(freqs), size=system.size,
        workers=num_workers if use_pool else 1,
    ):
        if use_pool:
            spec = SweepSpec(
                g_matrix=g_matrix, c_matrix=c_matrix, b=b,
                site="ac", policy=policy,
            )
            parallel_sweep(
                spec, freqs, out, workers=num_workers,
                report=current_run_report(),
            )
            return ACResult(frequencies=freqs, x=out, system=system)

        # Union pattern (or operator system) assembled once; each point
        # only writes a fresh data vector / builds a thin OperatorSystem.
        assembler = SweepAssembler(g_matrix, c_matrix)
        for i, f in enumerate(freqs):
            omega = 2.0 * np.pi * f
            out[i] = ResilientFactorization(
                assembler.at_omega(omega), site="ac", policy=policy
            ).solve(b)
        return ACResult(frequencies=freqs, x=out, system=system)


def ac_impedance(
    circuit_or_system,
    frequencies,
    port: tuple[str, str],
    gmin: float = 0.0,
    policy: ResiliencePolicy | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Complex driving-point impedance Z(f) seen into ``port``.

    A unit AC current is injected into ``port[0]`` and extracted from
    ``port[1]``; the returned impedance is their voltage difference.
    ``workers > 1`` fans the sweep out over a process pool with results
    identical to the serial loop.
    """
    system = _as_system(circuit_or_system)
    policy = policy or default_policy()
    if system.has_devices:
        raise ValueError("impedance extraction requires a linear circuit")
    freqs = np.asarray(list(frequencies), dtype=float)
    g_matrix, c_matrix = system.build_matrices()
    g_matrix = add_gmin(g_matrix, system.n, gmin)
    b = np.zeros(system.size, dtype=complex)
    i_plus = system.node_index(port[0])
    i_minus = system.node_index(port[1])
    if i_plus >= 0:
        b[i_plus] += 1.0
    if i_minus >= 0:
        b[i_minus] -= 1.0
    z = np.zeros(len(freqs), dtype=complex)

    from repro.perf.parallel import (
        MIN_PARALLEL_SIZE, SweepSpec, explicit_workers, parallel_sweep,
        worker_count,
    )

    num_workers = worker_count(workers)
    use_pool = num_workers > 1 and len(freqs) > 1 and (
        explicit_workers(workers) or system.size >= MIN_PARALLEL_SIZE
    )
    with span(
        "circuit.ac.impedance", points=len(freqs), size=system.size,
        workers=num_workers if use_pool else 1,
    ):
        if use_pool:
            spec = SweepSpec(
                g_matrix=g_matrix, c_matrix=c_matrix, b=b,
                site="ac", policy=policy, port=(i_plus, i_minus),
            )
            return parallel_sweep(
                spec, freqs, z, workers=num_workers,
                report=current_run_report(),
            )

        assembler = SweepAssembler(g_matrix, c_matrix)
        for i, f in enumerate(freqs):
            omega = 2.0 * np.pi * f
            x = ResilientFactorization(
                assembler.at_omega(omega), site="ac", policy=policy
            ).solve(b)
            vp = x[i_plus] if i_plus >= 0 else 0.0
            vm = x[i_minus] if i_minus >= 0 else 0.0
            z[i] = vp - vm
        return z
