"""Linear circuit elements.

Nodes are referenced by name; ``"0"`` (:data:`repro.circuit.netlist.GROUND`)
is the global reference.  Inductance comes in three flavors matching the
paper's modeling options:

* :class:`SelfInductor` + :class:`MutualInductor` -- scalar elements for
  small hand-built circuits (the loop model's netlists).
* :class:`InductorSet` -- a block of branches sharing one dense partial-
  inductance matrix: the natural container for a PEEC extraction result.
* :class:`KInductorSet` -- the same block expressed through K = L^-1, the
  "new circuit element K" of Devgan et al. (paper Section 4); requires the
  special simulator support implemented in :mod:`repro.circuit.transient`
  and :mod:`repro.circuit.ac`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

Waveform = Callable[[float], float]


@dataclass(frozen=True)
class Resistor:
    """Two-terminal linear resistor [ohm]."""

    name: str
    n1: str
    n2: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistor {self.name}: R must be > 0, got {self.resistance}")


@dataclass(frozen=True)
class Capacitor:
    """Two-terminal linear capacitor [F]."""

    name: str
    n1: str
    n2: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(f"capacitor {self.name}: C must be > 0, got {self.capacitance}")


@dataclass(frozen=True)
class SelfInductor:
    """Two-terminal inductor [H]; current flows n1 -> n2 internally."""

    name: str
    n1: str
    n2: str
    inductance: float

    def __post_init__(self) -> None:
        if self.inductance <= 0:
            raise ValueError(f"inductor {self.name}: L must be > 0, got {self.inductance}")


@dataclass(frozen=True)
class MutualInductor:
    """Mutual coupling between two :class:`SelfInductor` elements.

    ``mutual`` is the mutual inductance M [H] (not the coupling
    coefficient); its sign follows the inductors' n1 -> n2 orientations.
    """

    name: str
    inductor1: str
    inductor2: str
    mutual: float


@dataclass(frozen=True)
class InductorSet:
    """A block of inductive branches with a dense inductance matrix.

    Attributes:
        name: Block name.
        branches: (n1, n2) node pairs, one per branch; branch current flows
            n1 -> n2.
        matrix: Symmetric positive-definite inductance matrix [H], shape
            (len(branches), len(branches)).
    """

    name: str
    branches: tuple[tuple[str, str], ...]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=float)
        if m.shape != (len(self.branches), len(self.branches)):
            raise ValueError(
                f"inductor set {self.name}: matrix shape {m.shape} does not "
                f"match {len(self.branches)} branches"
            )
        if not np.allclose(m, m.T, rtol=1e-9, atol=0.0):
            raise ValueError(f"inductor set {self.name}: matrix must be symmetric")
        object.__setattr__(self, "matrix", m)

    @property
    def size(self) -> int:
        return len(self.branches)

    def num_mutuals(self) -> int:
        """Nonzero off-diagonal couplings in the upper triangle."""
        return int(np.count_nonzero(np.triu(self.matrix, k=1)))


@dataclass(frozen=True)
class OperatorInductorSet:
    """A block of inductive branches backed by a matrix-free operator.

    The operator stands in for the dense inductance matrix of an
    :class:`InductorSet` — typically a
    :class:`repro.extraction.hierarchical.HierarchicalPartialL` — and is
    consumed through ``matvec`` by the Krylov solve tier so grid-scale
    blocks are never densified.  ``operator.to_dense()`` remains available
    for validation paths that explicitly request a dense matrix.

    Attributes:
        name: Block name.
        branches: (n1, n2) node pairs, one per branch; branch current flows
            n1 -> n2.
        operator: Object exposing ``shape`` (square, matching the branch
            count), ``matvec(x)``, ``to_dense()``, ``diag`` (the
            self-inductance diagonal [H]), ``near_block_diagonal()``
            (sparse exact near field, the Krylov preconditioner seed),
            and ``far_lowrank()`` (global ``(U, V)`` factors of the
            compressed far field).
    """

    name: str
    branches: tuple[tuple[str, str], ...]
    operator: object

    def __post_init__(self) -> None:
        op = self.operator
        for attr in ("shape", "matvec", "to_dense", "diag",
                     "near_block_diagonal", "far_lowrank"):
            if not hasattr(op, attr):
                raise ValueError(
                    f"operator inductor set {self.name}: operator lacks "
                    f"required attribute {attr!r}"
                )
        n = len(self.branches)
        if tuple(op.shape) != (n, n):
            raise ValueError(
                f"operator inductor set {self.name}: operator shape "
                f"{tuple(op.shape)} does not match {n} branches"
            )

    @property
    def size(self) -> int:
        return len(self.branches)


@dataclass(frozen=True)
class KInductorSet:
    """A block of inductive branches described by K = L^-1 [1/H].

    The branch equation is d(i)/dt = K * v, so sparsifying K (which is
    diagonally dominant and local, like the capacitance matrix) keeps the
    system passive -- the advantage Devgan et al. introduced it for.
    """

    name: str
    branches: tuple[tuple[str, str], ...]
    kmatrix: np.ndarray

    def __post_init__(self) -> None:
        k = np.asarray(self.kmatrix, dtype=float)
        if k.shape != (len(self.branches), len(self.branches)):
            raise ValueError(
                f"K set {self.name}: matrix shape {k.shape} does not match "
                f"{len(self.branches)} branches"
            )
        if not np.allclose(k, k.T, rtol=1e-9, atol=0.0):
            raise ValueError(f"K set {self.name}: matrix must be symmetric")
        object.__setattr__(self, "kmatrix", k)

    @property
    def size(self) -> int:
        return len(self.branches)


@dataclass(frozen=True)
class StateSpaceElement:
    """A passive multiport macromodel in impedance form.

    Realizes the reduced-order models of :mod:`repro.mor` as a circuit
    element, so a PRIMA-reduced interconnect block can be "combined with
    the gate models and simulated in SPICE" (paper Section 4).  The
    internal equations are::

        c_red * dz/dt + g_red * z = b_red * i_port
        v_port = b_red^T * z

    where ``i_port[j]`` is the current flowing from ``ports[j][0]`` through
    the macromodel to ``ports[j][1]``.  When (g_red, c_red) come from a
    PRIMA congruence projection of a passive MNA system, the embedded
    element preserves passivity by construction.

    Attributes:
        name: Element name.
        ports: (n_plus, n_minus) node pairs, one per port.
        g_red: Reduced conductance-like matrix, shape (q, q).
        c_red: Reduced storage-like matrix, shape (q, q).
        b_red: Reduced input/output map, shape (q, num_ports).
    """

    name: str
    ports: tuple[tuple[str, str], ...]
    g_red: np.ndarray
    c_red: np.ndarray
    b_red: np.ndarray

    def __post_init__(self) -> None:
        g = np.asarray(self.g_red, dtype=float)
        c = np.asarray(self.c_red, dtype=float)
        b = np.asarray(self.b_red, dtype=float)
        q = g.shape[0]
        if g.shape != (q, q) or c.shape != (q, q):
            raise ValueError(
                f"macromodel {self.name}: g_red/c_red must be square and "
                f"matching, got {g.shape} and {c.shape}"
            )
        if b.shape != (q, len(self.ports)):
            raise ValueError(
                f"macromodel {self.name}: b_red shape {b.shape} does not "
                f"match {q} states x {len(self.ports)} ports"
            )
        object.__setattr__(self, "g_red", g)
        object.__setattr__(self, "c_red", c)
        object.__setattr__(self, "b_red", b)

    @property
    def num_states(self) -> int:
        return self.g_red.shape[0]

    @property
    def num_ports(self) -> int:
        return len(self.ports)


@dataclass(frozen=True)
class VoltageSource:
    """Independent voltage source; ``waveform(t)`` gives v(n_plus) - v(n_minus)."""

    name: str
    n_plus: str
    n_minus: str
    waveform: Waveform


@dataclass(frozen=True)
class CurrentSource:
    """Independent current source; ``waveform(t)`` amperes flow n_plus -> n_minus
    through the source (i.e. the current is *drawn from* n_plus and
    *injected into* n_minus)."""

    name: str
    n_plus: str
    n_minus: str
    waveform: Waveform
