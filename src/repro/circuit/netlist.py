"""Circuit container and node management.

A :class:`Circuit` is a flat netlist: named nodes, linear elements,
independent sources, and nonlinear devices.  It is deliberately free of
solver state; analyses (:mod:`repro.circuit.dc`, :mod:`~repro.circuit.ac`,
:mod:`~repro.circuit.transient`) compile it into an :class:`~repro.circuit.
mna.MNASystem` on demand.

The :meth:`Circuit.stats` method reports the element-count columns of the
paper's Table 1 ("Num. of R / Num. of C / Num. of L / # mutuals").
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    InductorSet,
    KInductorSet,
    MutualInductor,
    OperatorInductorSet,
    Resistor,
    SelfInductor,
    StateSpaceElement,
    VoltageSource,
)
from repro.circuit.waveforms import DC

#: The global reference node.
GROUND = "0"


class Circuit:
    """A flat netlist of elements, sources, and devices."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.resistors: list[Resistor] = []
        self.capacitors: list[Capacitor] = []
        self.inductors: list[SelfInductor] = []
        self.mutuals: list[MutualInductor] = []
        self.inductor_sets: list[InductorSet] = []
        self.operator_sets: list[OperatorInductorSet] = []
        self.k_sets: list[KInductorSet] = []
        self.vsources: list[VoltageSource] = []
        self.isources: list[CurrentSource] = []
        self.macromodels: list[StateSpaceElement] = []
        self.devices: list = []
        self._names: set[str] = set()
        self._node_index: dict[str, int] = {}

    # -- node management ------------------------------------------------

    def node(self, name: str) -> str:
        """Register (or re-register) a node name and return it."""
        if name != GROUND and name not in self._node_index:
            self._node_index[name] = len(self._node_index)
        return name

    def node_index(self, name: str) -> int:
        """MNA index of a node; ground is -1."""
        if name == GROUND:
            return -1
        try:
            return self._node_index[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r} in circuit {self.name!r}") from None

    @property
    def num_nodes(self) -> int:
        """Non-ground node count."""
        return len(self._node_index)

    @property
    def node_names(self) -> list[str]:
        """Node names in index order."""
        return sorted(self._node_index, key=self._node_index.__getitem__)

    def _register(self, name: str, nodes: Iterable[str]) -> None:
        if name in self._names:
            raise ValueError(f"duplicate element name {name!r}")
        self._names.add(name)
        for n in nodes:
            self.node(n)

    # -- element factories ------------------------------------------------

    def add_resistor(self, name: str, n1: str, n2: str, resistance: float) -> Resistor:
        element = Resistor(name, n1, n2, resistance)
        self._register(name, (n1, n2))
        self.resistors.append(element)
        return element

    def add_capacitor(self, name: str, n1: str, n2: str, capacitance: float) -> Capacitor:
        element = Capacitor(name, n1, n2, capacitance)
        self._register(name, (n1, n2))
        self.capacitors.append(element)
        return element

    def add_inductor(self, name: str, n1: str, n2: str, inductance: float) -> SelfInductor:
        element = SelfInductor(name, n1, n2, inductance)
        self._register(name, (n1, n2))
        self.inductors.append(element)
        return element

    def add_mutual(self, name: str, inductor1: str, inductor2: str, mutual: float) -> MutualInductor:
        known = {ind.name for ind in self.inductors}
        for ref in (inductor1, inductor2):
            if ref not in known:
                raise ValueError(f"mutual {name!r} references unknown inductor {ref!r}")
        if inductor1 == inductor2:
            raise ValueError(f"mutual {name!r} must couple two distinct inductors")
        element = MutualInductor(name, inductor1, inductor2, mutual)
        self._register(name, ())
        self.mutuals.append(element)
        return element

    def add_inductor_set(
        self, name: str, branches: Iterable[tuple[str, str]], matrix: np.ndarray
    ) -> InductorSet:
        element = InductorSet(name, tuple(branches), matrix)
        self._register(name, (n for pair in element.branches for n in pair))
        self.inductor_sets.append(element)
        return element

    def add_inductor_operator_set(
        self, name: str, branches: Iterable[tuple[str, str]], operator: object
    ) -> OperatorInductorSet:
        """Add an inductor block backed by a matrix-free operator.

        ``operator`` is typically a
        :class:`repro.extraction.hierarchical.HierarchicalPartialL`; the
        block is solved through ``matvec`` (Krylov tier) and is only
        densified when a dense/sparse matrix format is explicitly
        requested from :meth:`repro.circuit.mna.MNASystem.build_matrices`.
        """
        element = OperatorInductorSet(name, tuple(branches), operator)
        self._register(name, (n for pair in element.branches for n in pair))
        self.operator_sets.append(element)
        return element

    def add_k_set(
        self, name: str, branches: Iterable[tuple[str, str]], kmatrix: np.ndarray
    ) -> KInductorSet:
        element = KInductorSet(name, tuple(branches), kmatrix)
        self._register(name, (n for pair in element.branches for n in pair))
        self.k_sets.append(element)
        return element

    def add_vsource(self, name: str, n_plus: str, n_minus: str, waveform) -> VoltageSource:
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        element = VoltageSource(name, n_plus, n_minus, waveform)
        self._register(name, (n_plus, n_minus))
        self.vsources.append(element)
        return element

    def add_isource(self, name: str, n_plus: str, n_minus: str, waveform) -> CurrentSource:
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        element = CurrentSource(name, n_plus, n_minus, waveform)
        self._register(name, (n_plus, n_minus))
        self.isources.append(element)
        return element

    def add_macromodel(
        self,
        name: str,
        ports: Iterable[tuple[str, str]],
        g_red: np.ndarray,
        c_red: np.ndarray,
        b_red: np.ndarray,
    ) -> StateSpaceElement:
        """Embed a reduced-order macromodel (see :mod:`repro.mor`)."""
        element = StateSpaceElement(name, tuple(ports), g_red, c_red, b_red)
        self._register(name, (n for pair in element.ports for n in pair))
        self.macromodels.append(element)
        return element

    def add_device(self, device) -> object:
        """Add a nonlinear device (must expose ``nodes`` and ``evaluate``)."""
        if not hasattr(device, "nodes") or not hasattr(device, "evaluate"):
            raise TypeError(
                f"device {device!r} must expose .nodes and .evaluate(v)"
            )
        self._register(device.name, device.nodes)
        self.devices.append(device)
        return device

    # -- composed conveniences ----------------------------------------------

    def add_series_rl(
        self,
        name: str,
        n1: str,
        n2: str,
        resistance: float,
        inductance: float,
    ) -> tuple[Resistor, SelfInductor]:
        """R in series with L through an internal node ``name+':m'``.

        The standard PEEC branch: every metal segment is a resistance in
        series with its partial self inductance.
        """
        mid = self.node(f"{name}:m")
        r = self.add_resistor(f"{name}:R", n1, mid, resistance)
        l = self.add_inductor(f"{name}:L", mid, n2, inductance)
        return r, l

    # -- reporting -----------------------------------------------------------

    @property
    def num_inductor_branches(self) -> int:
        """Total inductive branches (scalar + set + operator set + K-set)."""
        return (
            len(self.inductors)
            + sum(s.size for s in self.inductor_sets)
            + sum(s.size for s in self.operator_sets)
            + sum(s.size for s in self.k_sets)
        )

    @property
    def num_mutual_terms(self) -> int:
        """Total pairwise mutual couplings (scalar mutuals + set blocks)."""
        return len(self.mutuals) + sum(s.num_mutuals() for s in self.inductor_sets)

    def stats(self) -> dict[str, int]:
        """Element-count summary (Table 1 columns)."""
        return {
            "nodes": self.num_nodes,
            "resistors": len(self.resistors),
            "capacitors": len(self.capacitors),
            "inductors": self.num_inductor_branches,
            "mutuals": self.num_mutual_terms,
            "vsources": len(self.vsources),
            "isources": len(self.isources),
            "macromodels": len(self.macromodels),
            "devices": len(self.devices),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Circuit({self.name!r}, nodes={s['nodes']}, R={s['resistors']}, "
            f"C={s['capacitors']}, L={s['inductors']}, M={s['mutuals']}, "
            f"V={s['vsources']}, I={s['isources']}, dev={s['devices']})"
        )
