"""SPICE-class circuit simulation substrate.

The paper simulates its PEEC and loop models in a transistor-level circuit
simulator (MCSPICE).  This package provides the equivalent: modified nodal
analysis (MNA) over R/L/C elements with dense mutual-inductance blocks,
inverse-inductance (K-matrix) blocks, independent sources with time-varying
waveforms, square-law MOS drivers with Newton iteration, DC operating
point, AC frequency sweeps, and trapezoidal/backward-Euler transient
integration.
"""

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    InductorSet,
    KInductorSet,
    MutualInductor,
    OperatorInductorSet,
    Resistor,
    SelfInductor,
    VoltageSource,
)
from repro.circuit.waveforms import DC, PWL, Pulse, Ramp, SineWave
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.mna import MNASystem
from repro.circuit.dc import dc_operating_point
from repro.circuit.ac import ACResult, ac_analysis, ac_impedance
from repro.circuit.transient import TransientResult, transient_analysis
from repro.circuit.adaptive import AdaptiveResult, adaptive_transient
from repro.circuit.devices import (
    CMOSInverter,
    MOSParameters,
)

__all__ = [
    "Resistor",
    "Capacitor",
    "SelfInductor",
    "MutualInductor",
    "InductorSet",
    "KInductorSet",
    "OperatorInductorSet",
    "VoltageSource",
    "CurrentSource",
    "DC",
    "Pulse",
    "PWL",
    "Ramp",
    "SineWave",
    "Circuit",
    "GROUND",
    "MNASystem",
    "dc_operating_point",
    "ac_analysis",
    "ac_impedance",
    "ACResult",
    "transient_analysis",
    "TransientResult",
    "adaptive_transient",
    "AdaptiveResult",
    "CMOSInverter",
    "MOSParameters",
]
