"""Shared linear-algebra helpers for the circuit analyses.

Wraps dense LU (scipy.linalg) and sparse LU (SuperLU via scipy.sparse)
behind one interface so the DC/AC/transient engines don't care which
matrix format :meth:`MNASystem.build_matrices` chose.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla


class SingularCircuitError(RuntimeError):
    """The MNA matrix is singular.

    Typical causes: a node with no DC path to ground (add a gmin or a leak
    resistor), ideal inductors in parallel with no series resistance, or a
    loop of ideal voltage sources.
    """


class Factorization:
    """LU factorization of a real or complex system matrix."""

    def __init__(self, matrix) -> None:
        self._sparse = sp.issparse(matrix)
        try:
            # scipy only *warns* (LinAlgWarning) on an exactly-singular
            # diagonal and hands back a factorization that produces inf on
            # solve; escalate it to the actionable error right away.
            with warnings.catch_warnings():
                warnings.simplefilter("error", sla.LinAlgWarning)
                if self._sparse:
                    self._lu = spla.splu(matrix.tocsc())
                else:
                    self._lu = sla.lu_factor(np.asarray(matrix))
        except (RuntimeError, ValueError, np.linalg.LinAlgError,
                sla.LinAlgWarning) as exc:
            raise SingularCircuitError(
                f"MNA matrix factorization failed: {exc}"
            ) from exc

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve A x = b."""
        if self._sparse:
            x = self._lu.solve(b)
        else:
            x = sla.lu_solve(self._lu, b)
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError(
                "MNA solve produced non-finite values; the circuit matrix is "
                "singular or catastrophically ill-conditioned"
            )
        return x


def add_gmin(g_matrix, num_nodes: int, gmin: float):
    """Return G with ``gmin`` added on the node-voltage diagonal.

    Keeps floating nodes (capacitor-only islands, off transistors) from
    making the DC matrix singular -- the same trick every SPICE uses.
    """
    if gmin <= 0.0:
        return g_matrix
    if sp.issparse(g_matrix):
        diag = sp.coo_matrix(
            (np.full(num_nodes, gmin), (np.arange(num_nodes), np.arange(num_nodes))),
            shape=g_matrix.shape,
        )
        return (g_matrix + diag).tocsr()
    g = g_matrix.copy()
    idx = np.arange(num_nodes)
    g[idx, idx] += gmin
    return g
