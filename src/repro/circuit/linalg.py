"""Shared linear-algebra helpers for the circuit analyses.

Wraps dense LU (scipy.linalg) and sparse LU (SuperLU via scipy.sparse)
behind one interface so the DC/AC/transient engines don't care which
matrix format :meth:`MNASystem.build_matrices` chose.

On top of the raw :class:`Factorization` sits the solver **escalation
chain** (:class:`ResilientFactorization`): direct LU, then equilibrated
(row/column-rescaled) LU, then a gmin-shifted solve with iterative
refinement, then Tikhonov-regularized least squares as the last resort.
Which rungs are available is governed by a
:class:`~repro.resilience.policy.ResiliencePolicy`; every attempt --
failure reason, condition estimate, accepted residual -- is recorded in
a :class:`~repro.resilience.report.SolveReport`.  The rescue rungs only
accept a solution whose residual against the *original* matrix passes
the policy tolerance, so a genuinely singular, inconsistent system still
raises :class:`SingularCircuitError` no matter how far the chain runs.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs import metrics as obs_metrics
from repro.resilience import faults
from repro.resilience.faults import InjectedFault
from repro.resilience.policy import ResiliencePolicy, default_policy
from repro.resilience.report import SolveAttempt, SolveReport, attach_solve_report


class SingularCircuitError(RuntimeError):
    """The MNA matrix is singular.

    Typical causes: a node with no DC path to ground (add a gmin or a leak
    resistor), ideal inductors in parallel with no series resistance, or a
    loop of ideal voltage sources.
    """


class Factorization:
    """LU factorization of a real or complex system matrix."""

    def __init__(self, matrix) -> None:
        self._sparse = sp.issparse(matrix)
        try:
            # scipy only *warns* (LinAlgWarning) on an exactly-singular
            # diagonal and hands back a factorization that produces inf on
            # solve; escalate it to the actionable error right away.
            with warnings.catch_warnings():
                warnings.simplefilter("error", sla.LinAlgWarning)
                if self._sparse:
                    self._lu = spla.splu(matrix.tocsc())
                else:
                    self._lu = sla.lu_factor(np.asarray(matrix))
        except (RuntimeError, ValueError, np.linalg.LinAlgError,
                sla.LinAlgWarning) as exc:
            raise SingularCircuitError(
                f"MNA matrix factorization failed: {exc}"
            ) from exc

    @property
    def condition_estimate(self) -> float:
        """Cheap conditioning proxy: ``max|diag(U)| / min|diag(U)|``."""
        if self._sparse:
            u_diag = np.abs(self._lu.U.diagonal())
        else:
            u_diag = np.abs(np.diagonal(self._lu[0]))
        if u_diag.size == 0:
            return 1.0
        smallest = float(u_diag.min())
        if smallest == 0.0:
            return np.inf
        return float(u_diag.max()) / smallest

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve A x = b."""
        if self._sparse:
            x = self._lu.solve(b)
        else:
            x = sla.lu_solve(self._lu, b)
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError(
                "MNA solve produced non-finite values; the circuit matrix is "
                "singular or catastrophically ill-conditioned"
            )
        return x


def add_gmin(g_matrix, num_nodes: int, gmin: float):
    """Return G with ``gmin`` added on the node-voltage diagonal.

    Keeps floating nodes (capacitor-only islands, off transistors) from
    making the DC matrix singular -- the same trick every SPICE uses.
    """
    if gmin <= 0.0:
        return g_matrix
    if sp.issparse(g_matrix):
        diag = sp.coo_matrix(
            (np.full(num_nodes, gmin), (np.arange(num_nodes), np.arange(num_nodes))),
            shape=g_matrix.shape,
        )
        return (g_matrix + diag).tocsr()
    g = g_matrix.copy()
    idx = np.arange(num_nodes)
    g[idx, idx] += gmin
    return g


def _max_abs(matrix) -> float:
    if sp.issparse(matrix):
        data = matrix.tocoo().data
        return float(np.abs(data).max(initial=0.0))
    return float(np.abs(matrix).max(initial=0.0))


def _relative_residual(matrix, x: np.ndarray, b: np.ndarray) -> float:
    """``max|Ax - b|`` scaled by ``max|b|``.

    Deliberately NOT the normwise backward error ``/ (|A||x| + |b|)``: a
    shifted pseudo-solution of an inconsistent system has a huge ``|x|``
    that deflates the backward error below any tolerance.  Scaling by the
    right-hand side alone rejects such fabricated answers no matter how
    large the solution grew.
    """
    r = matrix @ x - b
    return float(np.abs(r).max(initial=0.0)) / max(
        float(np.abs(b).max(initial=0.0)), 1e-300
    )


def _identity_like(matrix, scale: float):
    n = matrix.shape[0]
    if sp.issparse(matrix):
        return sp.identity(n, format="csc", dtype=matrix.dtype) * scale
    return np.eye(n, dtype=np.asarray(matrix).dtype) * scale


class ResilientFactorization:
    """The escalation chain: LU -> equilibrated LU -> gmin -> lstsq.

    Drop-in replacement for :class:`Factorization` at the engines' solve
    sites.  Factorization is lazy and per-rung; a rung that fails (at
    factor time or at solve time, e.g. a non-finite solution) is recorded
    in :attr:`report` and the next enabled rung takes over -- also for
    every subsequent :meth:`solve` call, so a cached factorization that
    went bad once does not get re-tried every time step.

    Args:
        matrix: The system matrix (dense ndarray or scipy sparse).
        site: Dotted solve-site name for fault injection and reporting;
            rung sub-sites are ``"<site>.lu"``, ``"<site>.equilibrated"``,
            ``"<site>.gmin"``, ``"<site>.lstsq"``.
        policy: Escalation policy; default from ``REPRO_RESILIENCE``.
        report: Optional existing :class:`SolveReport` to append to.
    """

    def __init__(
        self,
        matrix,
        site: str = "linalg",
        policy: ResiliencePolicy | None = None,
        report: SolveReport | None = None,
    ) -> None:
        self._matrix = matrix
        self.site = site
        self.policy = policy or default_policy()
        self.report = report if report is not None else SolveReport(site=site)
        self._rungs = self.policy.rungs
        self._rung_index = 0
        self._solver = None
        self._cond: float | None = None
        self._ok_recorded = False
        self._attached = False

    # -- rung preparation --------------------------------------------------

    def _prepare(self, rung: str):
        """Factor the matrix for ``rung``; returns a solve closure."""
        site_r = f"{self.site}.{rung}"
        faults.maybe_fail(site_r)
        matrix = faults.corrupt_matrix(site_r, self._matrix)
        if rung == "lu":
            return self._prepare_lu(site_r, matrix)
        if rung == "equilibrated":
            return self._prepare_equilibrated(site_r, matrix)
        if rung == "gmin":
            return self._prepare_gmin(site_r, matrix)
        if rung == "lstsq":
            return self._prepare_lstsq(site_r, matrix)
        raise ValueError(f"unknown escalation rung {rung!r}")

    def _finish(self, site_r: str, x: np.ndarray) -> np.ndarray:
        x = faults.corrupt_solution(site_r, x)
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError(
                f"solve at {site_r} produced non-finite values"
            )
        return x

    def _prepare_lu(self, site_r: str, matrix):
        factor = Factorization(matrix)
        self._cond = factor.condition_estimate

        def run(b: np.ndarray):
            return self._finish(site_r, factor.solve(b)), None

        return run

    def _prepare_equilibrated(self, site_r: str, matrix):
        """Row/column-rescaled LU: cures badly scaled (e.g. mixed-unit)
        systems that defeat plain partial pivoting."""
        if sp.issparse(matrix):
            a = matrix.tocsr()
            row = np.abs(a).max(axis=1).toarray().ravel()
            row[row == 0.0] = 1.0
            r_inv = sp.diags(1.0 / row)
            scaled = r_inv @ a
            col = np.abs(scaled).max(axis=0).toarray().ravel()
            col[col == 0.0] = 1.0
            c_inv = sp.diags(1.0 / col)
            scaled = (scaled @ c_inv).tocsc()
        else:
            a = np.asarray(matrix)
            row = np.abs(a).max(axis=1)
            row[row == 0.0] = 1.0
            scaled = a / row[:, None]
            col = np.abs(scaled).max(axis=0)
            col[col == 0.0] = 1.0
            scaled = scaled / col[None, :]
        factor = Factorization(scaled)
        self._cond = factor.condition_estimate

        def run(b: np.ndarray):
            y = factor.solve(np.asarray(b) / row)
            return self._finish(site_r, y / col), None

        return run

    def _prepare_gmin(self, site_r: str, matrix):
        """Diagonal-shifted factorization with iterative refinement
        against the original matrix; accepted only below the policy's
        residual tolerance, so the shift cannot smuggle in a wrong
        answer."""
        diag = matrix.diagonal()
        scale = float(np.abs(diag).max(initial=0.0)) or _max_abs(matrix) or 1.0
        factor = None
        for shift in self.policy.gmin_shifts:
            shifted = matrix + _identity_like(matrix, shift * scale)
            try:
                factor = Factorization(shifted)
                break
            except SingularCircuitError:
                continue
        if factor is None:
            raise SingularCircuitError(
                f"gmin rung: no diagonal shift in {self.policy.gmin_shifts} "
                "produced a factorable matrix"
            )
        self._cond = factor.condition_estimate
        original = self._matrix

        def run(b: np.ndarray):
            x = factor.solve(b)
            for _ in range(self.policy.refine_iters):
                x = x + factor.solve(b - original @ x)
            x = self._finish(site_r, x)
            residual = _relative_residual(original, x, b)
            if residual > self.policy.residual_tol:
                raise SingularCircuitError(
                    f"gmin rung residual {residual:.3e} exceeds tolerance "
                    f"{self.policy.residual_tol:.1e}; the system is "
                    "inconsistent, not merely ill-conditioned"
                )
            return x, residual

        return run

    def _prepare_lstsq(self, site_r: str, matrix):
        """Tikhonov-regularized normal equations -- the last resort.

        Produces the minimum-norm least-squares solution; only accepted
        when the system is (numerically) consistent, because for an
        inconsistent system "a" solution is worse than an error."""
        a = np.asarray(matrix.todense()) if sp.issparse(matrix) else np.asarray(matrix)
        gram = a.conj().T @ a
        lam = 1e-12 * max(float(np.abs(np.diagonal(gram)).max(initial=0.0)), 1e-300)
        factor = Factorization(gram + lam * np.eye(a.shape[0], dtype=gram.dtype))
        self._cond = factor.condition_estimate

        def run(b: np.ndarray):
            x = factor.solve(a.conj().T @ np.asarray(b))
            x = self._finish(site_r, x)
            residual = _relative_residual(a, x, b)
            if residual > self.policy.lstsq_tol:
                raise SingularCircuitError(
                    f"regularized-lstsq residual {residual:.3e} exceeds "
                    f"tolerance {self.policy.lstsq_tol:.1e}; refusing the "
                    "least-squares pseudo-solution of an inconsistent system"
                )
            return x, residual

        return run

    # -- the chain ---------------------------------------------------------

    @property
    def rung(self) -> str:
        """The rung currently in charge."""
        return self._rungs[min(self._rung_index, len(self._rungs) - 1)]

    def _attach_once(self) -> None:
        if not self._attached:
            self._attached = True
            attach_solve_report(self.report)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve A x = b, escalating through the enabled rungs."""
        last_exc: Exception | None = None
        while self._rung_index < len(self._rungs):
            rung = self._rungs[self._rung_index]
            try:
                if self._solver is None:
                    self._solver = self._prepare(rung)
                x, residual = self._solver(b)
            except (SingularCircuitError, InjectedFault) as exc:
                self.report.record(SolveAttempt(
                    rung=rung, ok=False, error=str(exc),
                    condition_estimate=self._cond,
                ))
                obs_metrics.counter("solver.escalation_attempts").inc()
                self._attach_once()
                last_exc = exc
                self._rung_index += 1
                self._solver = None
                self._cond = None
                self._ok_recorded = False
                continue
            if not self._ok_recorded:
                self._ok_recorded = True
                self.report.record(SolveAttempt(
                    rung=rung, ok=True,
                    condition_estimate=self._cond, residual=residual,
                ))
                if self._rung_index > 0:
                    self._attach_once()
                    obs_metrics.counter("solver.escalated_solves").inc()
            return x
        raise SingularCircuitError(
            f"all {len(self._rungs)} escalation rung(s) failed at solve site "
            f"{self.site!r} -- {self.report.format()}"
        ) from last_exc


def resilient_solve(
    matrix,
    b: np.ndarray,
    site: str = "linalg",
    policy: ResiliencePolicy | None = None,
    report: SolveReport | None = None,
) -> np.ndarray:
    """One-shot ``A x = b`` through the escalation chain."""
    return ResilientFactorization(
        matrix, site=site, policy=policy, report=report
    ).solve(b)
