"""Shared linear-algebra helpers for the circuit analyses.

Wraps dense LU (scipy.linalg) and sparse LU (SuperLU via scipy.sparse)
behind one interface so the DC/AC/transient engines don't care which
matrix format :meth:`MNASystem.build_matrices` chose.

On top of the raw :class:`Factorization` sits the solver **escalation
chain** (:class:`ResilientFactorization`): direct LU, then equilibrated
(row/column-rescaled) LU, then a gmin-shifted solve with iterative
refinement, then Tikhonov-regularized least squares as the last resort.
Which rungs are available is governed by a
:class:`~repro.resilience.policy.ResiliencePolicy`; every attempt --
failure reason, condition estimate, accepted residual -- is recorded in
a :class:`~repro.resilience.report.SolveReport`.  The rescue rungs only
accept a solution whose residual against the *original* matrix passes
the policy tolerance, so a genuinely singular, inconsistent system still
raises :class:`SingularCircuitError` no matter how far the chain runs.

Two further pieces serve the sweep engines:

* the **matrix-free Krylov tier**: an :class:`OperatorSystem` wraps
  ``A = G + sigma C`` as a matvec plus a sparse near-field surrogate of
  ``A``; handing one to :class:`ResilientFactorization` prepends a
  ``"krylov"`` rung (preconditioned GMRES) to the chain, and stagnation
  falls back to the dense direct rungs -- recorded as a RunReport
  downgrade -- by materializing the operator exactly once;
* the **union sweep pattern**: :class:`SweepPattern` preassembles the
  union CSC sparsity of (G, C) once and rebuilds ``G + j omega C`` /
  ``alpha C + G`` per point by writing a fresh data vector -- entry-wise
  the same arithmetic scipy's sparse add performs, so results stay
  bit-identical to the naive per-point construction.
  :class:`SweepAssembler` dispatches dense / sparse / operator inputs to
  the right per-point construction behind one ``at_omega`` /
  ``at_alpha`` interface.
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs import metrics as obs_metrics
from repro.resilience import faults
from repro.resilience.faults import InjectedFault
from repro.resilience.policy import ResiliencePolicy, default_policy
from repro.resilience.report import (
    SolveAttempt,
    SolveReport,
    attach_solve_report,
    current_run_report,
)

#: Above this many unknowns the lstsq rescue rung refuses to densify a
#: sparse matrix: the O(n^2) Gram product would OOM at grid scale.
LSTSQ_DENSE_LIMIT = 4096


class SingularCircuitError(RuntimeError):
    """The MNA matrix is singular.

    Typical causes: a node with no DC path to ground (add a gmin or a leak
    resistor), ideal inductors in parallel with no series resistance, or a
    loop of ideal voltage sources.
    """


class Factorization:
    """LU factorization of a real or complex system matrix."""

    def __init__(self, matrix) -> None:
        self._sparse = sp.issparse(matrix)
        try:
            # scipy only *warns* (LinAlgWarning) on an exactly-singular
            # diagonal and hands back a factorization that produces inf on
            # solve; escalate it to the actionable error right away.
            with warnings.catch_warnings():
                warnings.simplefilter("error", sla.LinAlgWarning)
                if self._sparse:
                    self._lu = spla.splu(matrix.tocsc())
                else:
                    self._lu = sla.lu_factor(np.asarray(matrix))
        except (RuntimeError, ValueError, np.linalg.LinAlgError,
                sla.LinAlgWarning) as exc:
            raise SingularCircuitError(
                f"MNA matrix factorization failed: {exc}"
            ) from exc

    @property
    def condition_estimate(self) -> float:
        """Cheap conditioning proxy: ``max|diag(U)| / min|diag(U)|``."""
        if self._sparse:
            u_diag = np.abs(self._lu.U.diagonal())
        else:
            u_diag = np.abs(np.diagonal(self._lu[0]))
        if u_diag.size == 0:
            return 1.0
        smallest = float(u_diag.min())
        if smallest == 0.0:
            return np.inf
        return float(u_diag.max()) / smallest

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve A x = b."""
        if self._sparse:
            x = self._lu.solve(b)
        else:
            x = sla.lu_solve(self._lu, b)
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError(
                "MNA solve produced non-finite values; the circuit matrix is "
                "singular or catastrophically ill-conditioned"
            )
        return x


def add_gmin(g_matrix, num_nodes: int, gmin: float):
    """Return G with ``gmin`` added on the node-voltage diagonal.

    Keeps floating nodes (capacitor-only islands, off transistors) from
    making the DC matrix singular -- the same trick every SPICE uses.
    """
    if gmin <= 0.0:
        return g_matrix
    if sp.issparse(g_matrix):
        diag = sp.coo_matrix(
            (np.full(num_nodes, gmin), (np.arange(num_nodes), np.arange(num_nodes))),
            shape=g_matrix.shape,
        )
        return (g_matrix + diag).tocsr()
    g = g_matrix.copy()
    idx = np.arange(num_nodes)
    g[idx, idx] += gmin
    return g


def _max_abs(matrix) -> float:
    if sp.issparse(matrix):
        data = matrix.tocoo().data
        return float(np.abs(data).max(initial=0.0))
    return float(np.abs(matrix).max(initial=0.0))


def _relative_residual(matrix, x: np.ndarray, b: np.ndarray) -> float:
    """``max|Ax - b|`` scaled by ``max|b|``.

    Deliberately NOT the normwise backward error ``/ (|A||x| + |b|)``: a
    shifted pseudo-solution of an inconsistent system has a huge ``|x|``
    that deflates the backward error below any tolerance.  Scaling by the
    right-hand side alone rejects such fabricated answers no matter how
    large the solution grew.
    """
    r = matrix @ x - b
    return float(np.abs(r).max(initial=0.0)) / max(
        float(np.abs(b).max(initial=0.0)), 1e-300
    )


def _identity_like(matrix, scale: float):
    n = matrix.shape[0]
    if sp.issparse(matrix):
        return sp.identity(n, format="csc", dtype=matrix.dtype) * scale
    return np.eye(n, dtype=np.asarray(matrix).dtype) * scale


class OperatorSystem:
    """``A = G + sigma C`` as a matrix-free system for the Krylov rung.

    Carries everything the iterative solve needs without ever forming the
    dense matrix:

    Attributes:
        matvec: Apply ``A`` to a vector (complex-safe).
        precond: Sparse surrogate of ``A`` -- the sparse stamps plus the
            operators' exact near field (block diagonal and the exact
            off-diagonal blocks) -- cheap to factor with ``splu``.
        lowrank: Optional ``(U, V)`` global low-rank factors of the
            compressed far field, already scaled by the sweep point's
            ``sigma``, such that ``A == precond + U @ V`` exactly (up to
            the ACA tolerance baked into the factors).  The Krylov rung
            folds them into the preconditioner with the Woodbury
            identity, making it an exact direct solve of ``A`` and GMRES
            a residual-polishing loop of a handful of iterations.
        materialize: Build the dense ``A`` -- called at most once, only
            when the Krylov rung fails and the chain falls back to the
            direct rungs.
        shape: System shape ``(n, n)``.
        dtype: ``complex`` for AC points, ``float`` for companion
            matrices.
    """

    def __init__(
        self,
        matvec: Callable[[np.ndarray], np.ndarray],
        precond: sp.spmatrix,
        materialize: Callable[[], np.ndarray],
        shape: tuple[int, int],
        dtype,
        lowrank: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self._matvec = matvec
        self.precond = precond
        self.lowrank = lowrank
        self.materialize = materialize
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._matvec(x)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self._matvec(x)

    def __repr__(self) -> str:
        return (
            f"OperatorSystem(shape={self.shape}, dtype={self.dtype}, "
            f"precond_nnz={self.precond.nnz})"
        )


class ResilientFactorization:
    """The escalation chain: LU -> equilibrated LU -> gmin -> lstsq.

    Drop-in replacement for :class:`Factorization` at the engines' solve
    sites.  Factorization is lazy and per-rung; a rung that fails (at
    factor time or at solve time, e.g. a non-finite solution) is recorded
    in :attr:`report` and the next enabled rung takes over -- also for
    every subsequent :meth:`solve` call, so a cached factorization that
    went bad once does not get re-tried every time step.

    An :class:`OperatorSystem` input prepends the matrix-free ``krylov``
    rung (preconditioned GMRES) to the chain; if it stagnates, the
    operator is materialized exactly once -- recorded as a RunReport
    downgrade -- and the direct rungs take over on the dense matrix.

    Args:
        matrix: The system matrix (dense ndarray, scipy sparse, or an
            :class:`OperatorSystem`).
        site: Dotted solve-site name for fault injection and reporting;
            rung sub-sites are ``"<site>.krylov"``, ``"<site>.lu"``,
            ``"<site>.equilibrated"``, ``"<site>.gmin"``,
            ``"<site>.lstsq"``.
        policy: Escalation policy; default from ``REPRO_RESILIENCE``.
        report: Optional existing :class:`SolveReport` to append to.
    """

    def __init__(
        self,
        matrix,
        site: str = "linalg",
        policy: ResiliencePolicy | None = None,
        report: SolveReport | None = None,
    ) -> None:
        self._matrix = matrix
        self.site = site
        self.policy = policy or default_policy()
        self.report = report if report is not None else SolveReport(site=site)
        self._rungs = self.policy.rungs
        if isinstance(matrix, OperatorSystem):
            self._rungs = ("krylov",) + self._rungs
        self._dense_fallback = None
        self._rung_index = 0
        self._solver = None
        self._cond: float | None = None
        self._ok_recorded = False
        self._attached = False

    # -- rung preparation --------------------------------------------------

    def _prepare(self, rung: str):
        """Factor the matrix for ``rung``; returns a solve closure."""
        site_r = f"{self.site}.{rung}"
        faults.maybe_fail(site_r)
        if rung == "krylov":
            return self._prepare_krylov(site_r, self._matrix)
        matrix = self._matrix
        if isinstance(matrix, OperatorSystem):
            matrix = self._materialize_operator(rung)
        matrix = faults.corrupt_matrix(site_r, matrix)
        if rung == "lu":
            return self._prepare_lu(site_r, matrix)
        if rung == "equilibrated":
            return self._prepare_equilibrated(site_r, matrix)
        if rung == "gmin":
            return self._prepare_gmin(site_r, matrix)
        if rung == "lstsq":
            return self._prepare_lstsq(site_r, matrix)
        raise ValueError(f"unknown escalation rung {rung!r}")

    def _finish(self, site_r: str, x: np.ndarray) -> np.ndarray:
        x = faults.corrupt_solution(site_r, x)
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError(
                f"solve at {site_r} produced non-finite values"
            )
        return x

    def _materialize_operator(self, rung: str) -> np.ndarray:
        """Dense fallback of an operator system, built at most once.

        Reaching this means the Krylov rung failed; the downgrade is
        recorded so a run that silently lost the matrix-free fast path is
        visible in its report.
        """
        if self._dense_fallback is None:
            obs_metrics.counter("solver.krylov_fallbacks").inc()
            report = current_run_report()
            if report is not None:
                report.record_downgrade(
                    "solver",
                    "krylov matrix-free",
                    f"dense {rung}",
                    f"krylov rung failed at solve site {self.site!r}",
                )
            self._dense_fallback = self._matrix.materialize()
        return self._dense_fallback

    def _prepare_krylov(self, site_r: str, system):
        """Preconditioned GMRES over the matrix-free operator.

        The preconditioner factors the sparse near field with ``splu``
        and, when the system carries global low-rank far-field factors,
        folds them in with the Woodbury identity -- making the
        preconditioner an exact solve of ``A`` up to rounding, so GMRES
        is a residual-polishing loop of a handful of iterations.

        Acceptance is on the normwise *backward error*
        ``max|Ax - b| / (max|A| max|x| + max|b|)`` computed with a true
        operator matvec: the honest "as good as a backward-stable direct
        solve" criterion.  A plain b-relative residual would be bounded
        below by ``cond(A) * eps`` -- unreachable for the ill-conditioned
        MNA systems the dense LU rung accepts without any check -- while
        the backward error reaches machine level whenever the solve is
        LU-quality."""
        if not isinstance(system, OperatorSystem):
            raise SingularCircuitError(
                f"krylov rung at {site_r} requires an OperatorSystem input"
            )
        policy = self.policy
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", sla.LinAlgWarning)
                m_factor = spla.splu(system.precond.tocsc())
        except (RuntimeError, ValueError, np.linalg.LinAlgError,
                sla.LinAlgWarning) as exc:
            raise SingularCircuitError(
                f"krylov preconditioner factorization failed: {exc}"
            ) from exc
        u_diag = np.abs(m_factor.U.diagonal())
        smallest = float(u_diag.min()) if u_diag.size else 1.0
        self._cond = (
            float(u_diag.max()) / smallest if smallest > 0.0 else np.inf
        )
        n = system.shape[0]
        precond_scale = (
            float(np.abs(system.precond.data).max())
            if system.precond.nnz else 1.0
        )
        if system.lowrank is not None and system.lowrank[0].shape[1] > 0:
            # Woodbury: (A0 + U V)^-1 = A0^-1 - Z (I + V Z)^-1 V A0^-1
            # with Z = A0^-1 U.  K = rank(far field) is small, so the
            # K-column solve and the dense K x K factor are cheap.
            u_fac, v_fac = system.lowrank
            try:
                z_cols = m_factor.solve(
                    np.asarray(u_fac, dtype=system.dtype, order="F")
                )
                cap = np.eye(u_fac.shape[1], dtype=system.dtype) + \
                    v_fac @ z_cols
                cap_factor = sla.lu_factor(cap)
            except (RuntimeError, ValueError, np.linalg.LinAlgError) as exc:
                raise SingularCircuitError(
                    f"krylov Woodbury capacitance factorization failed: {exc}"
                ) from exc

            def m_solve(r: np.ndarray) -> np.ndarray:
                x0 = m_factor.solve(np.asarray(r, dtype=system.dtype))
                return x0 - z_cols @ sla.lu_solve(cap_factor, v_fac @ x0)
        else:
            m_solve = m_factor.solve
        a_op = spla.LinearOperator(
            system.shape, matvec=system.matvec, dtype=system.dtype
        )
        m_op = spla.LinearOperator(
            system.shape, matvec=m_solve, dtype=system.dtype
        )
        restart = min(policy.krylov_restart, n)
        # Iteration budget is staged: with the Woodbury-exact
        # preconditioner almost every solve converges within the first
        # couple of restart cycles, and the full budget is only spent
        # when the cheap attempt's backward error does not pass.
        first = min(2, policy.krylov_maxiter)
        budgets = [c for c in (first, policy.krylov_maxiter - first) if c > 0]

        def backward_error(x: np.ndarray, b_arr: np.ndarray) -> float:
            r = np.abs(system.matvec(x) - b_arr).max(initial=0.0)
            scale = (
                precond_scale * float(np.abs(x).max(initial=0.0))
                + float(np.abs(b_arr).max(initial=0.0))
            )
            return float(r) / max(scale, 1e-300)

        def run(b: np.ndarray):
            b_arr = np.asarray(b, dtype=system.dtype)
            iters = [0]

            def _count(_):
                iters[0] += 1

            obs_metrics.counter("solver.krylov_solves").inc()
            x = None
            error = np.inf
            info = 0
            for cycles in budgets:
                x, info = spla.gmres(
                    a_op, b_arr, x0=x, rtol=policy.krylov_tol, atol=0.0,
                    restart=restart, maxiter=cycles, M=m_op,
                    callback=_count, callback_type="pr_norm",
                )
                x = self._finish(site_r, x)
                error = backward_error(x, b_arr)
                if error <= policy.krylov_residual_tol:
                    obs_metrics.counter(
                        "solver.krylov_iterations"
                    ).inc(iters[0])
                    return x, error
            obs_metrics.counter("solver.krylov_iterations").inc(iters[0])
            obs_metrics.counter("solver.krylov_stagnations").inc()
            raise SingularCircuitError(
                f"krylov (gmres) solve at {site_r} did not converge: "
                f"info={info}, {iters[0]} iterations, backward error "
                f"{error:.3e} exceeds {policy.krylov_residual_tol:.1e}"
            )

        return run

    def _prepare_lu(self, site_r: str, matrix):
        factor = Factorization(matrix)
        self._cond = factor.condition_estimate

        def run(b: np.ndarray):
            return self._finish(site_r, factor.solve(b)), None

        return run

    def _prepare_equilibrated(self, site_r: str, matrix):
        """Row/column-rescaled LU: cures badly scaled (e.g. mixed-unit)
        systems that defeat plain partial pivoting."""
        if sp.issparse(matrix):
            a = matrix.tocsr()
            # O(n) vectors of row/column maxima, not an O(n^2) densify.
            row = np.abs(a).max(axis=1).toarray().ravel()  # qa: ignore[QA208]
            row[row == 0.0] = 1.0
            r_inv = sp.diags(1.0 / row)
            scaled = r_inv @ a
            col = np.abs(scaled).max(axis=0).toarray().ravel()  # qa: ignore[QA208]
            col[col == 0.0] = 1.0
            c_inv = sp.diags(1.0 / col)
            scaled = (scaled @ c_inv).tocsc()
        else:
            a = np.asarray(matrix)
            row = np.abs(a).max(axis=1)
            row[row == 0.0] = 1.0
            scaled = a / row[:, None]
            col = np.abs(scaled).max(axis=0)
            col[col == 0.0] = 1.0
            scaled = scaled / col[None, :]
        factor = Factorization(scaled)
        self._cond = factor.condition_estimate

        def run(b: np.ndarray):
            y = factor.solve(np.asarray(b) / row)
            return self._finish(site_r, y / col), None

        return run

    def _prepare_gmin(self, site_r: str, matrix):
        """Diagonal-shifted factorization with iterative refinement
        against the original matrix; accepted only below the policy's
        residual tolerance, so the shift cannot smuggle in a wrong
        answer."""
        diag = matrix.diagonal()
        scale = float(np.abs(diag).max(initial=0.0)) or _max_abs(matrix) or 1.0
        factor = None
        for shift in self.policy.gmin_shifts:
            shifted = matrix + _identity_like(matrix, shift * scale)
            try:
                factor = Factorization(shifted)
                break
            except SingularCircuitError:
                continue
        if factor is None:
            raise SingularCircuitError(
                f"gmin rung: no diagonal shift in {self.policy.gmin_shifts} "
                "produced a factorable matrix"
            )
        self._cond = factor.condition_estimate
        original = self._matrix

        def run(b: np.ndarray):
            x = factor.solve(b)
            for _ in range(self.policy.refine_iters):
                x = x + factor.solve(b - original @ x)
            x = self._finish(site_r, x)
            residual = _relative_residual(original, x, b)
            if residual > self.policy.residual_tol:
                raise SingularCircuitError(
                    f"gmin rung residual {residual:.3e} exceeds tolerance "
                    f"{self.policy.residual_tol:.1e}; the system is "
                    "inconsistent, not merely ill-conditioned"
                )
            return x, residual

        return run

    def _prepare_lstsq(self, site_r: str, matrix):
        """Tikhonov-regularized normal equations -- the last resort.

        Produces the minimum-norm least-squares solution; only accepted
        when the system is (numerically) consistent, because for an
        inconsistent system "a" solution is worse than an error."""
        if sp.issparse(matrix):
            n = matrix.shape[0]
            if n > LSTSQ_DENSE_LIMIT:
                raise SingularCircuitError(
                    f"lstsq rescue rung refuses to densify a {n}x{n} sparse "
                    f"system (limit {LSTSQ_DENSE_LIMIT}): the dense Gram "
                    "product would need "
                    f"{2 * 8 * n * n / 1e9:.1f} GB and O(n^3) work at grid "
                    "scale. The system is singular past every cheaper rung; "
                    "fix the topology (floating node, inductor-only loop, "
                    "voltage-source loop) or add a gmin leak instead of "
                    "relying on the least-squares last resort"
                )
            # Guarded: small-n only, and only after every sparse-capable
            # rung has already failed.
            a = np.asarray(matrix.todense())  # qa: ignore[QA208]
        else:
            a = np.asarray(matrix)
        gram = a.conj().T @ a
        lam = 1e-12 * max(float(np.abs(np.diagonal(gram)).max(initial=0.0)), 1e-300)
        factor = Factorization(gram + lam * np.eye(a.shape[0], dtype=gram.dtype))
        self._cond = factor.condition_estimate

        def run(b: np.ndarray):
            x = factor.solve(a.conj().T @ np.asarray(b))
            x = self._finish(site_r, x)
            residual = _relative_residual(a, x, b)
            if residual > self.policy.lstsq_tol:
                raise SingularCircuitError(
                    f"regularized-lstsq residual {residual:.3e} exceeds "
                    f"tolerance {self.policy.lstsq_tol:.1e}; refusing the "
                    "least-squares pseudo-solution of an inconsistent system"
                )
            return x, residual

        return run

    # -- the chain ---------------------------------------------------------

    @property
    def rung(self) -> str:
        """The rung currently in charge."""
        return self._rungs[min(self._rung_index, len(self._rungs) - 1)]

    def _attach_once(self) -> None:
        if not self._attached:
            self._attached = True
            attach_solve_report(self.report)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve A x = b, escalating through the enabled rungs."""
        last_exc: Exception | None = None
        while self._rung_index < len(self._rungs):
            rung = self._rungs[self._rung_index]
            try:
                if self._solver is None:
                    self._solver = self._prepare(rung)
                x, residual = self._solver(b)
            except (SingularCircuitError, InjectedFault) as exc:
                self.report.record(SolveAttempt(
                    rung=rung, ok=False, error=str(exc),
                    condition_estimate=self._cond,
                ))
                obs_metrics.counter("solver.escalation_attempts").inc()
                self._attach_once()
                last_exc = exc
                self._rung_index += 1
                self._solver = None
                self._cond = None
                self._ok_recorded = False
                continue
            if not self._ok_recorded:
                self._ok_recorded = True
                self.report.record(SolveAttempt(
                    rung=rung, ok=True,
                    condition_estimate=self._cond, residual=residual,
                ))
                if self._rung_index > 0:
                    self._attach_once()
                    obs_metrics.counter("solver.escalated_solves").inc()
            return x
        raise SingularCircuitError(
            f"all {len(self._rungs)} escalation rung(s) failed at solve site "
            f"{self.site!r} -- {self.report.format()}"
        ) from last_exc


def resilient_solve(
    matrix,
    b: np.ndarray,
    site: str = "linalg",
    policy: ResiliencePolicy | None = None,
    report: SolveReport | None = None,
) -> np.ndarray:
    """One-shot ``A x = b`` through the escalation chain."""
    return ResilientFactorization(
        matrix, site=site, policy=policy, report=report
    ).solve(b)


# -- sweep assembly ----------------------------------------------------------


class SweepPattern:
    """Union CSC pattern of (G, C), assembled once per sweep.

    The serial sweep loops used to rebuild ``(G + 1j*omega*C).tocsc()``
    from scratch at every frequency -- a structural merge plus a CSR->CSC
    conversion whose cost rivals the solve for well-conditioned systems.
    This class does the merge once: the union sparsity (stored-zero
    entries dropped, exactly as scipy's binary ops drop exact-zero
    results) with G's and C's values scattered onto it, so each point
    only computes a fresh data vector.

    Bit-identity with the naive construction holds because the per-entry
    arithmetic is the same IEEE operations in the same order: scipy
    computes ``g + (1j*omega)*c`` entry-wise over the union, and float
    addition is commutative.  The one structural exception is
    ``omega == 0``, where scipy prunes the C-only entries (``1j*0*c``
    collapses to exact zero); :meth:`at_omega` special-cases it to the
    legacy construction.
    """

    def __init__(self, g_matrix: sp.spmatrix, c_matrix: sp.spmatrix) -> None:
        if g_matrix.shape != c_matrix.shape:
            raise ValueError(
                f"G/C shape mismatch: {g_matrix.shape} vs {c_matrix.shape}"
            )
        self._g = g_matrix.tocsr()
        self._c = c_matrix.tocsr()
        self.shape = g_matrix.shape
        nr, nc = self.shape
        g_coo = self._g.tocoo()
        c_coo = self._c.tocoo()
        g_keep = g_coo.data != 0.0
        c_keep = c_coo.data != 0.0
        g_keys = (
            g_coo.col[g_keep].astype(np.int64) * nr
            + g_coo.row[g_keep].astype(np.int64)
        )
        c_keys = (
            c_coo.col[c_keep].astype(np.int64) * nr
            + c_coo.row[c_keep].astype(np.int64)
        )
        # Sorted unique keys in (col, row) order == canonical CSC layout.
        union, inverse = np.unique(
            np.concatenate([g_keys, c_keys]), return_inverse=True
        )
        self._indices = (union % nr).astype(np.int32)
        counts = np.bincount((union // nr).astype(np.intp), minlength=nc)
        self._indptr = np.zeros(nc + 1, dtype=np.int32)
        np.cumsum(counts, out=self._indptr[1:])
        self._g_data = np.zeros(union.size)
        self._g_data[inverse[: g_keys.size]] = g_coo.data[g_keep]
        self._c_data = np.zeros(union.size)
        self._c_data[inverse[g_keys.size:]] = c_coo.data[c_keep]

    def _assemble(self, data: np.ndarray) -> sp.csc_matrix:
        mat = sp.csc_matrix(
            (data, self._indices, self._indptr), shape=self.shape, copy=False
        )
        mat.has_sorted_indices = True
        return mat

    def at_omega(self, omega: float) -> sp.csc_matrix:
        """``(G + 1j*omega*C)`` in CSC, bit-identical to the naive build."""
        if omega == 0.0:
            # scipy prunes the C-only entries at omega = 0; keep the
            # legacy structure so downstream factors match bitwise.
            return (self._g + 1j * omega * self._c).tocsc()
        return self._assemble(self._g_data + (1j * omega) * self._c_data)

    def at_alpha(self, alpha: float) -> sp.csc_matrix:
        """``(alpha*C + G)`` in CSC for companion-matrix sweeps."""
        if alpha == 0.0:
            return (alpha * self._c + self._g).tocsc()
        return self._assemble(self._g_data + alpha * self._c_data)


class SweepAssembler:
    """Per-point system assembly for dense / sparse / operator sweeps.

    One object per sweep, built from whatever
    :meth:`~repro.circuit.mna.MNASystem.build_matrices` returned:

    * dense arrays -> plain dense arithmetic (legacy behavior);
    * sparse matrices -> :class:`SweepPattern` data updates
      (bit-identical, no per-point structural merge);
    * an :class:`~repro.circuit.operator.OperatorStampedMatrix` C ->
      :class:`OperatorSystem` instances that solve through the Krylov
      rung with a near-field ``splu`` preconditioner, and only densify
      if the chain falls back.
    """

    def __init__(self, g_matrix, c_matrix) -> None:
        from repro.circuit.operator import OperatorStampedMatrix

        self._g = g_matrix
        self._c = c_matrix
        if isinstance(c_matrix, OperatorStampedMatrix):
            self.mode = "operator"
            g_sparse = g_matrix.tocsr() if sp.issparse(g_matrix) else (
                sp.csr_matrix(np.asarray(g_matrix))
            )
            self._g = g_sparse
            self._near = SweepPattern(g_sparse, c_matrix.near_sparse())
            self._far = c_matrix.far_lowrank()
        elif sp.issparse(g_matrix):
            self.mode = "sparse"
            self._pattern = SweepPattern(g_matrix, c_matrix)
        else:
            self.mode = "dense"

    @property
    def size(self) -> int:
        return int(self._g.shape[0])

    def at_omega(self, omega: float):
        """The AC system ``G + j omega C`` for one frequency point."""
        if self.mode == "dense":
            return self._g + 1j * omega * self._c
        if self.mode == "sparse":
            return self._pattern.at_omega(omega)
        g, c = self._g, self._c

        def matvec(x: np.ndarray) -> np.ndarray:
            return g @ x + (1j * omega) * c.matvec(x)

        def materialize() -> np.ndarray:
            # Recorded dense fallback, built once per stagnated solve.
            return g.toarray() + 1j * omega * c.to_dense()  # qa: ignore[QA208]

        u_far, v_far = self._far
        return OperatorSystem(
            matvec=matvec,
            precond=self._near.at_omega(omega),
            materialize=materialize,
            shape=g.shape,
            dtype=complex,
            lowrank=(
                ((1j * omega) * u_far, v_far) if u_far.shape[1] else None
            ),
        )

    def at_alpha(self, alpha: float):
        """The companion system ``alpha C + G`` for one step size."""
        if self.mode == "dense":
            return alpha * self._c + self._g
        if self.mode == "sparse":
            return self._pattern.at_alpha(alpha)
        g, c = self._g, self._c

        def matvec(x: np.ndarray) -> np.ndarray:
            return alpha * c.matvec(x) + g @ x

        def materialize() -> np.ndarray:
            # Recorded dense fallback, built once per stagnated solve.
            return alpha * c.to_dense() + g.toarray()  # qa: ignore[QA208]

        u_far, v_far = self._far
        return OperatorSystem(
            matvec=matvec,
            precond=self._near.at_alpha(alpha),
            materialize=materialize,
            shape=g.shape,
            dtype=float,
            lowrank=((alpha * u_far, v_far) if u_far.shape[1] else None),
        )
