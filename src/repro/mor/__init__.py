"""Reduced-order modeling: PRIMA and the combined acceleration flow.

"Reduced-order models for the linear portion of the circuit can be
combined with the gate models and simulated in SPICE ... they are well
suited to handle large topologies or longer simulation times and also
provide a control over the accuracy via the order of the reduced system."
(Paper, Section 4.)

:mod:`~repro.mor.prima` implements the PRIMA block-Arnoldi congruence
reduction (Odabasioglu et al., paper ref [20]); :mod:`~repro.mor.ports`
builds input/output maps including the paper's active-port refinement
("applying excitation sources only to the active ports, and not to the
sinks"); :mod:`~repro.mor.combined` packages the block-diagonal +
PRIMA pipeline of the authors' DAC-2000 system (paper ref [4]).
"""

from repro.mor.ports import NodePort, SourcePort, input_matrix, output_matrix
from repro.mor.prima import ReducedOrderModel, prima_reduce
from repro.mor.combined import CombinedFlowResult, combined_reduction
from repro.mor.hierarchical import HierarchicalModel, hierarchical_reduction

__all__ = [
    "NodePort",
    "SourcePort",
    "input_matrix",
    "output_matrix",
    "ReducedOrderModel",
    "prima_reduce",
    "CombinedFlowResult",
    "combined_reduction",
    "HierarchicalModel",
    "hierarchical_reduction",
]
