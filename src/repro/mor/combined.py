"""The combined acceleration flow: block-diagonal sparsification + PRIMA.

Reproduces the pipeline of the authors' DAC-2000 system (paper ref [4],
summarized in Section 4):

1. build the detailed PEEC model with *block-diagonal* sparsification so
   the inductance matrix is block-sparse (PRIMA's matrix-vector products
   stop being dense-bound);
2. differentiate **active ports** (the switching driver's attachment
   nodes, supply entries) from **passive sinks** (receivers), and excite
   only the active ports in the Krylov construction;
3. reduce with PRIMA; sink waveforms come from the projected observation
   matrix;
4. re-attach the nonlinear gate models to the reduced macromodel's ports
   and simulate the small coupled system.

Step 4 uses :class:`~repro.circuit.elements.StateSpaceElement`, our
equivalent of "combined with the gate models and simulated in SPICE".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.mna import MNASystem
from repro.circuit.netlist import Circuit
from repro.mor.ports import NodePort
from repro.mor.prima import ReducedOrderModel, prima_reduce
from repro.obs.trace import span


@dataclass
class CombinedFlowResult:
    """Outcome of the combined reduction.

    Attributes:
        model: The reduced-order model.
        active_ports: Port specs used for excitation, in input order --
            re-bind these (same order) when embedding the macromodel.
        full_size: Unknown count of the unreduced MNA system.
        reduction_seconds: Wall-clock time of the PRIMA step.
    """

    model: ReducedOrderModel
    active_ports: list[NodePort]
    full_size: int
    reduction_seconds: float

    @property
    def compression(self) -> float:
        """Unknown-count compression ratio (full / reduced)."""
        return self.full_size / max(self.model.order, 1)


def combined_reduction(
    circuit: Circuit,
    active_nodes: list[str],
    output_nodes: list[str],
    order: int = 24,
    s0_hz: float = 2e9,
) -> CombinedFlowResult:
    """Reduce a (sparsified) PEEC circuit around its active ports.

    Args:
        circuit: The *linear* PEEC circuit -- typically built with
            ``PEECOptions(sparsifier=BlockDiagonalSparsifier(...))`` and
            with receiver load capacitances already attached.  Nonlinear
            drivers must NOT be in it; they couple through the ports.
        active_nodes: Circuit nodes where excitation enters (driver output
            attachment, driver supply taps).  Each becomes a ground-
            referenced current port.
        output_nodes: Passive-sink nodes to observe (receiver inputs).
        order: Reduced order q.
        s0_hz: PRIMA expansion point [Hz].

    Returns:
        The reduction result; embed via
        ``result.model.to_macromodel(name, ports)`` with host-circuit port
        bindings in ``active_nodes`` order.
    """
    if not active_nodes:
        raise ValueError("at least one active port is required")
    if circuit.vsources or circuit.isources:
        raise ValueError(
            "the circuit to reduce must contain no independent sources: "
            "their values would be silently lost by the projection.  Keep "
            "supplies and package models in the host circuit and expose the "
            "pad attachment nodes as active ports instead"
        )
    system = MNASystem(circuit)
    ports = [NodePort(n, name=n) for n in active_nodes]
    with span("mor.reduce", size=system.size, order=order) as sp:
        model = prima_reduce(
            system,
            inputs=ports,
            order=order,
            outputs=list(active_nodes) + list(output_nodes),
            s0_hz=s0_hz,
        )
    return CombinedFlowResult(
        model=model,
        active_ports=ports,
        full_size=system.size,
        reduction_seconds=sp.duration or 0.0,
    )
