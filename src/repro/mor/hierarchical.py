"""Hierarchical interconnect models -- Beattie & Pileggi (paper ref [16]).

"Hierarchical interconnect models have been proposed to utilize the
existing hierarchical nature of parasitic extractors.  The concept of
global circuit node is introduced to separate the electrical interaction
into local and global interaction."

The same idea, realized with this library's machinery: the circuit's
nodes are partitioned into blocks; every element whose nodes live inside
one block is *local*, everything else (plus block boundary nodes touched
from outside) is *global*.  Each block's local network is PRIMA-reduced
to a passive macromodel on its global nodes, and the global circuit --
boundary wiring, sources, devices -- is simulated against the stack of
macromodels.

Constraints (inherent to the formulation, not this implementation):

* inductive couplings must not straddle blocks -- run block-diagonal
  sparsification first so every :class:`InductorSet` is block-local;
* independent sources and nonlinear devices always stay global.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import GROUND, Circuit
from repro.mor.combined import combined_reduction
from repro.mor.ports import NodePort


@dataclass
class HierarchicalModel:
    """Result of a hierarchical reduction.

    Attributes:
        circuit: The global circuit with one macromodel per block.
        global_nodes: Nodes shared between blocks / exposed to the caller.
        block_orders: block index -> reduced order used.
        full_unknowns: MNA unknown count of the original flat circuit.
    """

    circuit: Circuit
    global_nodes: list[str]
    block_orders: dict[int, int]
    full_unknowns: int


def _element_nodes(element) -> tuple[str, ...]:
    if hasattr(element, "n1"):
        return (element.n1, element.n2)
    if hasattr(element, "branches"):
        return tuple(n for pair in element.branches for n in pair)
    if hasattr(element, "n_plus"):
        return (element.n_plus, element.n_minus)
    raise TypeError(f"unsupported element {element!r}")


def hierarchical_reduction(
    circuit: Circuit,
    blocks: list[set[str]],
    order_per_block: int = 16,
    keep_nodes: set[str] | None = None,
    s0_hz: float = 2e9,
) -> HierarchicalModel:
    """Reduce a flat linear circuit block by block.

    Args:
        circuit: Flat linear circuit (sources are fine -- they stay
            global; nonlinear devices are rejected).
        blocks: Disjoint node sets.  Nodes not claimed by any block are
            global.  Ground is implicitly shared.
        order_per_block: PRIMA order for each block macromodel.
        keep_nodes: Nodes to force global even if a block claims them
            (observation points).
        s0_hz: PRIMA expansion point.

    Returns:
        The hierarchical model; simulate ``result.circuit`` as usual.
    """
    if circuit.devices:
        raise ValueError("hierarchical reduction handles linear circuits; "
                         "attach devices to the result instead")
    if circuit.k_sets or circuit.macromodels:
        raise ValueError("nested K-sets/macromodels are not supported")
    keep_nodes = set(keep_nodes or ())
    claimed: dict[str, int] = {}
    for b, nodes in enumerate(blocks):
        for node in nodes:
            if node in claimed:
                raise ValueError(f"node {node!r} claimed by two blocks")
            if node == GROUND:
                raise ValueError("ground cannot belong to a block")
            claimed[node] = b

    def block_of(nodes: tuple[str, ...]) -> int | None:
        """Block index when ALL non-ground nodes live in one block."""
        owners = {
            claimed.get(n) for n in nodes
            if n != GROUND and n not in keep_nodes
        }
        owners.discard(None)
        if len(owners) != 1:
            return None
        if any(
            n != GROUND and (claimed.get(n) is None or n in keep_nodes)
            for n in nodes
        ):
            return None
        return owners.pop()

    # Sources always stay global.
    local_elements: dict[int, list] = {b: [] for b in range(len(blocks))}
    global_elements: list = []
    for group in (circuit.resistors, circuit.capacitors, circuit.inductors,
                  circuit.inductor_sets):
        for element in group:
            b = block_of(_element_nodes(element))
            if b is None:
                global_elements.append(element)
            else:
                local_elements[b].append(element)
    for mut in circuit.mutuals:
        # A mutual is local iff both its inductors are local to one block.
        l_owner = {}
        for b, elements in local_elements.items():
            for element in elements:
                if hasattr(element, "inductance"):
                    l_owner[element.name] = b
        b1 = l_owner.get(mut.inductor1)
        b2 = l_owner.get(mut.inductor2)
        if b1 is not None and b1 == b2:
            local_elements[b1].append(mut)
        else:
            raise ValueError(
                f"mutual {mut.name!r} couples across blocks; sparsify "
                "block-locally first"
            )
    global_elements += list(circuit.vsources) + list(circuit.isources)

    # Boundary nodes: nodes that appear inside a block's local elements
    # AND are touched from outside (global elements or keep requests).
    local_nodes: dict[int, set[str]] = {
        b: {
            n for element in elements for n in _element_nodes(element)
            if n != GROUND
        }
        for b, elements in local_elements.items()
    }
    boundary: dict[int, set[str]] = {b: set() for b in range(len(blocks))}
    for element in global_elements:
        for node in _element_nodes(element):
            b = claimed.get(node)
            if b is not None and node in local_nodes[b]:
                boundary[b].add(node)
    for node in keep_nodes:
        b = claimed.get(node)
        if b is not None and node in local_nodes[b]:
            boundary[b].add(node)

    from repro.circuit.mna import MNASystem

    full_unknowns = MNASystem(circuit).size

    out = Circuit(f"{circuit.name}:hier")
    block_orders: dict[int, int] = {}
    for b, elements in local_elements.items():
        ports = sorted(boundary[b])
        if not elements:
            continue
        if not ports:
            continue  # fully floating block: electrically irrelevant
        sub = Circuit(f"block{b}")
        for element in elements:
            _copy_element(sub, element)
        reduction = combined_reduction(
            sub, ports, [], order=order_per_block, s0_hz=s0_hz
        )
        mm = reduction.model.to_macromodel(
            f"blk{b}", [NodePort(p) for p in ports]
        )
        out.add_macromodel(mm.name, mm.ports, mm.g_red, mm.c_red, mm.b_red)
        block_orders[b] = reduction.model.order

    for element in global_elements:
        _copy_element(out, element)

    global_nodes = sorted(
        {n for e in global_elements for n in _element_nodes(e)
         if n != GROUND}
        | keep_nodes
    )
    return HierarchicalModel(
        circuit=out,
        global_nodes=global_nodes,
        block_orders=block_orders,
        full_unknowns=full_unknowns,
    )


def _copy_element(target: Circuit, element) -> None:
    """Re-register an element on another circuit."""
    from repro.circuit.elements import (
        Capacitor,
        CurrentSource,
        InductorSet,
        MutualInductor,
        Resistor,
        SelfInductor,
        VoltageSource,
    )

    if isinstance(element, Resistor):
        target.add_resistor(element.name, element.n1, element.n2,
                            element.resistance)
    elif isinstance(element, Capacitor):
        target.add_capacitor(element.name, element.n1, element.n2,
                             element.capacitance)
    elif isinstance(element, SelfInductor):
        target.add_inductor(element.name, element.n1, element.n2,
                            element.inductance)
    elif isinstance(element, MutualInductor):
        target.add_mutual(element.name, element.inductor1,
                          element.inductor2, element.mutual)
    elif isinstance(element, InductorSet):
        target.add_inductor_set(element.name, element.branches,
                                element.matrix)
    elif isinstance(element, VoltageSource):
        target.add_vsource(element.name, element.n_plus, element.n_minus,
                           element.waveform)
    elif isinstance(element, CurrentSource):
        target.add_isource(element.name, element.n_plus, element.n_minus,
                           element.waveform)
    else:
        raise TypeError(f"cannot copy element {element!r}")
