"""Port definitions and input/output maps for model-order reduction.

The paper's refinement of PRIMA distinguishes *active ports* (where
excitation actually enters: the switching driver, the supply pads) from
*passive sinks* (receiver gates that only observe): "A variant of the
PRIMA algorithm is used to reduce the computation time by applying
excitation sources only to the active ports, and not to the sinks."

Concretely: the Krylov subspace is built only from the active-port columns
of B (block size = number of active ports), while sink voltages are
recovered through the projected observation matrix L^T V.  Fewer port
columns means fewer solves per Krylov block -- the whole speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.mna import MNASystem


@dataclass(frozen=True)
class NodePort:
    """A current-injection port between two nodes (impedance-form port)."""

    n_plus: str
    n_minus: str = "0"
    name: str = ""


@dataclass(frozen=True)
class SourcePort:
    """A port bound to an existing independent source's input value."""

    source_name: str


def input_matrix(system: MNASystem, ports) -> np.ndarray:
    """Build the B matrix: one column per port.

    For a :class:`NodePort`, the column injects unit current into
    ``n_plus`` and out of ``n_minus``.  For a :class:`SourcePort`, the
    column is the derivative of the MNA right-hand side with respect to
    the source value (current sources hit node rows; voltage sources hit
    their branch row with the MNA sign convention).
    """
    b = np.zeros((system.size, len(ports)))
    circuit = system.circuit
    isrc = {s.name: s for s in circuit.isources}
    vsrc = {s.name: s for s in circuit.vsources}
    for j, port in enumerate(ports):
        if isinstance(port, NodePort):
            a = system.node_index(port.n_plus)
            c = system.node_index(port.n_minus)
            if a >= 0:
                b[a, j] += 1.0
            if c >= 0:
                b[c, j] -= 1.0
        elif isinstance(port, SourcePort):
            if port.source_name in isrc:
                src = isrc[port.source_name]
                a = system.node_index(src.n_plus)
                c = system.node_index(src.n_minus)
                # Matches MNASystem.rhs: drawn from n_plus, injected at n_minus.
                if a >= 0:
                    b[a, j] -= 1.0
                if c >= 0:
                    b[c, j] += 1.0
            elif port.source_name in vsrc:
                b[system.branch_index(port.source_name), j] = -1.0
            else:
                raise KeyError(f"no source named {port.source_name!r}")
        else:
            raise TypeError(f"unsupported port spec {port!r}")
    return b


def output_matrix(system: MNASystem, outputs) -> np.ndarray:
    """Build the observation matrix L: one column per observed quantity.

    Entries select node voltages (by node name) or branch currents (by
    branch name); ``y = L^T x``.
    """
    l_matrix = np.zeros((system.size, len(outputs)))
    for j, name in enumerate(outputs):
        try:
            idx = system.node_index(name)
        except KeyError:
            idx = system.branch_index(name)
        if idx >= 0:
            l_matrix[idx, j] = 1.0
    return l_matrix
