"""PRIMA: Passive Reduced-order Interconnect Macromodeling Algorithm.

Odabasioglu, Celik, Pileggi (paper ref [20]).  Given the MNA descriptor
system ``C dx/dt + G x = B u``, PRIMA builds an orthonormal basis V of the
block Krylov subspace::

    Kr((G + s0 C)^-1 C, (G + s0 C)^-1 B)

and reduces by congruence: ``G~ = V^T G V``, ``C~ = V^T C V``,
``B~ = V^T B``.  Because congruence preserves the definiteness of G and C,
the reduced model is passive, and it matches ``floor(q / p)`` block moments
of the original transfer function at s0.

"Model order reduction algorithms such as PRIMA require matrix-vector
multiplications, which are expensive for the fully-dense matrix of the
PEEC model" -- which is why :mod:`repro.mor.combined` first applies
block-diagonal sparsification before calling this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from repro.circuit.linalg import Factorization
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import Circuit
from repro.circuit.elements import StateSpaceElement
from repro.mor.ports import NodePort, input_matrix, output_matrix
from repro.obs.trace import span


@dataclass
class ReducedOrderModel:
    """A PRIMA-reduced linear system with named inputs and outputs.

    Attributes:
        g_red: Reduced G, shape (q, q).
        c_red: Reduced C, shape (q, q).
        b_red: Reduced input map, shape (q, num inputs).
        l_red: Reduced observation map, shape (q, num outputs).
        input_names: Labels of the input columns.
        output_names: Labels of the observed quantities.
        s0: Expansion point [rad/s].
        projection: The N x q orthonormal basis (kept for diagnostics).
    """

    g_red: np.ndarray
    c_red: np.ndarray
    b_red: np.ndarray
    l_red: np.ndarray
    input_names: list[str]
    output_names: list[str]
    s0: float
    projection: np.ndarray

    @property
    def order(self) -> int:
        """Reduced state dimension q."""
        return self.g_red.shape[0]

    def transfer(self, frequencies) -> np.ndarray:
        """Transfer matrix H(f) = L^T (G + sC)^-1 B, shape (nf, n_out, n_in)."""
        freqs = np.asarray(list(frequencies), dtype=float)
        out = np.zeros((len(freqs), self.l_red.shape[1], self.b_red.shape[1]),
                       dtype=complex)
        for i, f in enumerate(freqs):
            s = 2j * np.pi * f
            x = np.linalg.solve(self.g_red + s * self.c_red, self.b_red)
            out[i] = self.l_red.T @ x
        return out

    def simulate(
        self,
        inputs: dict[str, object],
        t_stop: float,
        dt: float,
        z0: np.ndarray | None = None,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Trapezoidal time integration of the reduced system.

        Args:
            inputs: input name -> waveform callable u(t); missing inputs
                are held at zero.
            t_stop: End time [s].
            dt: Step [s].
            z0: Initial reduced state; ``None`` solves the DC point for the
                t=0 input values.

        Returns:
            (times, outputs): output name -> waveform array.
        """
        unknown = set(inputs) - set(self.input_names)
        if unknown:
            raise KeyError(f"unknown reduced-model inputs: {sorted(unknown)}")
        wave = [inputs.get(name) for name in self.input_names]

        def u_of(t: float) -> np.ndarray:
            return np.array([w(t) if w is not None else 0.0 for w in wave])

        num_steps = int(round(t_stop / dt))
        times = np.arange(num_steps + 1) * dt
        if z0 is None:
            z = np.linalg.lstsq(self.g_red, self.b_red @ u_of(0.0), rcond=None)[0]
        else:
            z = np.asarray(z0, dtype=float).copy()
        y = np.zeros((num_steps + 1, self.l_red.shape[1]))
        y[0] = self.l_red.T @ z
        u_prev = u_of(0.0)
        # Factor the two companion matrices once and back-substitute per
        # step (explicit inverses are both slower and less accurate).
        lu_be = sla.lu_factor(self.c_red / dt + self.g_red)
        lu_tr = sla.lu_factor(2.0 * self.c_red / dt + self.g_red)
        for k in range(num_steps):
            u_next = u_of(times[k + 1])
            if k < 2:
                z = sla.lu_solve(lu_be, self.c_red @ z / dt + self.b_red @ u_next)
            else:
                rhs = (
                    2.0 / dt * (self.c_red @ z)
                    - self.g_red @ z
                    + self.b_red @ (u_next + u_prev)
                )
                z = sla.lu_solve(lu_tr, rhs)
            y[k + 1] = self.l_red.T @ z
            u_prev = u_next
        return times, {
            name: y[:, j] for j, name in enumerate(self.output_names)
        }

    def observe(self, result, macro_name: str, output_name: str) -> np.ndarray:
        """Reconstruct an observed waveform from a host-circuit simulation.

        After embedding this model via :meth:`to_macromodel`, the host
        transient records the reduced states as branches
        ``"{macro_name}.z{k}"``; any quantity in ``output_names`` (e.g. a
        passive sink's voltage) is ``l_red[:, j]^T z(t)``.

        Args:
            result: A :class:`~repro.circuit.transient.TransientResult`
                from the host simulation.
            macro_name: Name the macromodel was embedded under.
            output_name: One of ``self.output_names``.
        """
        try:
            j = self.output_names.index(output_name)
        except ValueError:
            raise KeyError(
                f"{output_name!r} not among outputs {self.output_names}"
            ) from None
        z = np.stack(
            [result.current(f"{macro_name}.z{k}") for k in range(self.order)],
            axis=1,
        )
        return z @ self.l_red[:, j]

    def to_macromodel(self, name: str, ports: list[NodePort]) -> StateSpaceElement:
        """Package as a circuit element for co-simulation with gate models.

        Only valid when the reduction was driven purely by
        :class:`NodePort` inputs; ``ports`` re-binds those inputs (in
        order) to nodes of the *host* circuit.
        """
        if len(ports) != self.b_red.shape[1]:
            raise ValueError(
                f"{self.b_red.shape[1]} reduction inputs but {len(ports)} "
                "host ports"
            )
        return StateSpaceElement(
            name=name,
            ports=tuple((p.n_plus, p.n_minus) for p in ports),
            g_red=self.g_red,
            c_red=self.c_red,
            b_red=self.b_red,
        )


def _block_orthonormalize(
    block: np.ndarray, basis: list[np.ndarray], drop_tol: float
) -> np.ndarray:
    """Orthogonalize a block against the basis (twice) and itself via QR.

    Columns are normalized first so deflation is *relative*: a column is
    dropped only when orthogonalization removes all but ``drop_tol`` of
    it.  (MNA vectors mix volts, amps, and 1e-14-scale capacitor charges,
    so absolute tolerances silently truncate the Krylov recursion.)
    """
    norms = np.linalg.norm(block, axis=0)
    keep = norms > 0.0
    block = block[:, keep] / norms[keep]
    for _ in range(2):  # repeated MGS for numerical orthogonality
        for v in basis:
            block = block - v @ (v.T @ block)
    q, r = np.linalg.qr(block)
    keep = np.abs(np.diagonal(r)) > drop_tol
    return q[:, keep]


def prima_reduce(
    system_or_circuit,
    inputs,
    order: int,
    outputs=(),
    s0_hz: float = 1e9,
    drop_tol: float = 1e-10,
) -> ReducedOrderModel:
    """Reduce an MNA system by PRIMA congruence projection.

    Args:
        system_or_circuit: A linear :class:`Circuit` or compiled
            :class:`MNASystem`.  Independent sources inside the circuit are
            *not* inputs automatically -- list the ports explicitly.
        inputs: Port specs (:class:`NodePort` / :class:`SourcePort`): the
            *active* ports.  The Krylov block size equals ``len(inputs)``,
            which is exactly why the paper excites only active ports.
        order: Target reduced order q (rounded down to whole blocks when
            deflation removes columns).
        outputs: Node/branch names to observe (the passive sinks); defaults
            to none, in which case the inputs are observed (classical
            symmetric macromodel).
        s0_hz: Real expansion point, in Hz (converted to rad/s).
        drop_tol: Relative column deflation tolerance in the block QR.

    Returns:
        The reduced model.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    system = (
        system_or_circuit
        if isinstance(system_or_circuit, MNASystem)
        else MNASystem(system_or_circuit)
    )
    if system.has_devices:
        raise ValueError(
            "PRIMA reduces the *linear* portion; remove nonlinear devices "
            "and re-attach them to the reduced macromodel's ports"
        )
    inputs = list(inputs)
    with span("mor.prima", size=system.size, order=order, ports=len(inputs)):
        return _prima_project(system, inputs, order, outputs, s0_hz, drop_tol)


def _prima_project(
    system: MNASystem,
    inputs,
    order: int,
    outputs,
    s0_hz: float,
    drop_tol: float,
) -> ReducedOrderModel:
    g_matrix, c_matrix = system.build_matrices()
    b = input_matrix(system, list(inputs))

    s0 = 2.0 * np.pi * s0_hz
    shifted = g_matrix + s0 * c_matrix
    if sp.issparse(shifted):
        shifted = shifted.tocsc()
    solver = Factorization(shifted)

    def solve_block(m: np.ndarray) -> np.ndarray:
        return np.column_stack([solver.solve(m[:, j]) for j in range(m.shape[1])])

    basis: list[np.ndarray] = []
    block = _block_orthonormalize(solve_block(b), basis, drop_tol)
    total = 0
    while block.shape[1] > 0 and total < order:
        basis.append(block)
        total += block.shape[1]
        if sp.issparse(c_matrix):
            next_block = solve_block(np.asarray(c_matrix @ block))
        else:
            next_block = solve_block(c_matrix @ block)
        block = _block_orthonormalize(next_block, basis, drop_tol)
    v = np.column_stack(basis)[:, :order]

    if sp.issparse(g_matrix):
        g_red = v.T @ np.asarray(g_matrix @ v)
        c_red = v.T @ np.asarray(c_matrix @ v)
    else:
        g_red = v.T @ g_matrix @ v
        c_red = v.T @ c_matrix @ v
    b_red = v.T @ b

    input_names = [
        getattr(p, "name", "") or getattr(p, "source_name", "")
        or f"port{j}"
        for j, p in enumerate(inputs)
    ]
    outputs = list(outputs)
    if outputs:
        l_red = v.T @ output_matrix(system, outputs)
        output_names = outputs
    else:
        l_red = b_red.copy()
        output_names = list(input_names)
    return ReducedOrderModel(
        g_red=g_red,
        c_red=c_red,
        b_red=b_red,
        l_red=l_red,
        input_names=input_names,
        output_names=output_names,
        s0=s0,
        projection=v,
    )
