"""Resistance extraction for segments and vias.

"The resistance is frequency independent and is computed as a function of
geometry and sheet resistance" (paper, Section 3).  Frequency dependence of
the *effective* loop resistance emerges from current redistribution among
filaments in the loop extractor, not from these element values.
"""

from __future__ import annotations

from repro.geometry.layout import Via
from repro.geometry.segment import Direction, Layer, Segment

#: Resistance of a single via cut [ohm]; typical for stacked copper vias.
VIA_CUT_RESISTANCE = 2.0

#: Nominal size of one via cut [m]; wide vias contain an array of cuts.
VIA_CUT_SIZE = 0.5e-6

#: Floor to keep via resistance finite and the MNA matrix well-conditioned.
MIN_VIA_RESISTANCE = 0.05


def segment_resistance(segment: Segment, layer: Layer) -> float:
    """DC resistance of an in-plane segment [ohm].

    R = R_sheet * length / width, with the segment's own thickness assumed
    equal to the layer thickness (the generators guarantee this).  For a
    filament sub-segment whose thickness differs from the layer's, the
    sheet resistance is rescaled so that the parallel combination of a full
    filament grid reproduces the parent resistance.
    """
    if segment.direction == Direction.Z:
        raise ValueError("segment_resistance is for in-plane segments; vias "
                         "use via_resistance")
    sheet = layer.sheet_resistance
    if abs(segment.thickness - layer.thickness) > 1e-15:
        sheet = sheet * layer.thickness / segment.thickness
    return sheet * segment.length / segment.width


def resistivity_of(layer: Layer) -> float:
    """Bulk resistivity implied by a layer's sheet resistance [ohm*m]."""
    return layer.sheet_resistance * layer.thickness


def via_resistance(via: Via) -> float:
    """Resistance of a via [ohm].

    A via of width w contains an n x n array of cuts with
    n = max(1, floor(w / cut_size)); cuts conduct in parallel.
    """
    n = max(1, int(via.width / VIA_CUT_SIZE))
    return max(VIA_CUT_RESISTANCE / (n * n), MIN_VIA_RESISTANCE)
