"""Partial self and mutual inductance of rectangular conductors.

The PEEC method (Ruehli, 1972) assigns every conductor segment a *partial*
self inductance and every pair of parallel segments a *partial* mutual
inductance; loop inductance emerges from the circuit solution rather than
from a priori loop identification.  This module provides:

* :func:`self_inductance_bar` -- closed-form partial self inductance of a
  rectangular bar (Grover 1946 / Ruehli 1972 working formula).
* :func:`mutual_inductance_filaments` -- exact Neumann-integral mutual
  inductance between two parallel *filaments* with arbitrary axial offset
  and unequal lengths (Grover's tables in closed form).
* :func:`mutual_inductance_bars` -- mutual inductance between two parallel
  rectangular *bars*, computed by averaging the exact filament formula over
  a subdivision of both cross sections (the same discretization FastHenry
  uses).  Converges to the exact volume integral as the subdivision is
  refined; a single center filament is accurate for well-separated bars.

All functions are vectorized over numpy arrays so that dense partial-L
matrix assembly (100k+ mutual terms) stays fast.

Sign convention: currents flow in the +axis direction in every segment, so
the Neumann integral for co-directed parallel segments is positive.  Branch
orientation in the circuit carries any sign flips.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import MU0

#: mu0 / (4 pi) [H/m]
_K = MU0 / (4.0 * math.pi)


def self_inductance_bar(length: float, width: float, thickness: float) -> float:
    """Partial self inductance of a rectangular bar [H].

    Grover's working formula (also Ruehli 1972, eq. for a thin rectangular
    conductor)::

        L = (mu0 / 2 pi) * l * [ ln(2 l / (w + t)) + 0.5 + 0.2235 (w + t) / l ]

    Accurate to a few percent for l >~ (w + t); the ``0.2235`` term is
    Grover's arithmetic-mean-distance correction for the rectangular cross
    section.

    Args:
        length: Bar length along current flow [m].
        width: Cross-section width [m].
        thickness: Cross-section thickness [m].
    """
    if length <= 0 or width <= 0 or thickness <= 0:
        raise ValueError(
            f"dimensions must be positive: l={length}, w={width}, t={thickness}"
        )
    wt = width + thickness
    return 2.0 * _K * length * (
        math.log(2.0 * length / wt) + 0.5 + 0.2235 * wt / length
    )


def _g(z: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """Antiderivative kernel for the parallel-filament Neumann integral.

    g(z) = z*asinh(z/rho) - sqrt(z^2 + rho^2), with g''(z) = 1/sqrt(z^2+rho^2).
    For rho -> 0 (collinear filaments) the limit |z|*ln|z| - |z| is used; the
    rho-dependent and constant terms cancel in the 4-corner combination for
    any non-overlapping collinear pair.
    """
    z = np.asarray(z, dtype=float)
    rho = np.asarray(rho, dtype=float)
    z, rho = np.broadcast_arrays(z, rho)
    out = np.empty_like(z)
    collinear = rho <= 0.0
    if np.any(collinear):
        az = np.abs(z[collinear])
        with np.errstate(divide="ignore", invalid="ignore"):
            val = az * np.log(az) - az
        out[collinear] = np.where(az == 0.0, 0.0, val)
    regular = ~collinear
    if np.any(regular):
        zr = z[regular]
        rr = rho[regular]
        out[regular] = zr * np.arcsinh(zr / rr) - np.hypot(zr, rr)
    return out


def mutual_inductance_filaments(
    start1, end1, start2, end2, rho
) -> np.ndarray | float:
    """Mutual inductance between two parallel filaments [H].

    The filaments lie along a common axis direction; filament 1 spans axial
    coordinates ``[start1, end1]``, filament 2 spans ``[start2, end2]``, and
    ``rho`` is their transverse (perpendicular) separation.  The result is
    the exact double Neumann integral::

        M = (mu0 / 4 pi) * [ g(e1-s2) - g(e1-e2) - g(s1-s2) + g(s1-e2) ]

    which specializes to Grover's classic equal-length formula when the
    spans coincide.  Collinear filaments (``rho == 0``) are supported when
    the spans do not overlap.

    All arguments broadcast as numpy arrays; scalars in give a scalar out.
    """
    s1 = np.asarray(start1, dtype=float)
    e1 = np.asarray(end1, dtype=float)
    s2 = np.asarray(start2, dtype=float)
    e2 = np.asarray(end2, dtype=float)
    r = np.asarray(rho, dtype=float)
    if np.any(r < 0):
        raise ValueError("rho must be non-negative")
    # Tolerate floating-point dust: abutting same-wire pieces can "overlap"
    # by ~1e-20 m after coordinate arithmetic; real overlaps in um-scale
    # layouts are nanometers or more.
    overlap = np.minimum(e1, e2) - np.maximum(s1, s2)
    if np.any((r <= 0.0) & (overlap > 1e-12)):
        raise ValueError(
            "collinear filaments (rho == 0) must not overlap axially; "
            "the Neumann integral diverges"
        )
    # One stacked _g call over the four Neumann corners instead of four
    # separate ones: the per-element math (and hence the result, bitwise)
    # is unchanged, but the fixed broadcast/mask overhead is paid once --
    # this path is the inner loop of both assemblies.
    d1, d2, d3, d4, rb = np.broadcast_arrays(
        e1 - s2, e1 - e2, s1 - s2, s1 - e2, r
    )
    g = _g(np.stack([d1, d2, d3, d4]), rb)
    m = _K * (g[0] - g[1] - g[2] + g[3])
    if np.ndim(m) == 0:
        return float(m)
    return m


def mutual_inductance_filaments_grover(length: float, rho: float) -> float:
    """Grover's equal-length parallel-filament mutual inductance [H].

    Classic closed form for two filaments of equal ``length`` with no axial
    offset at separation ``rho``::

        M = 2e-7 * l * [ ln(l/d + sqrt(1 + (l/d)^2)) - sqrt(1 + (d/l)^2) + d/l ]

    Kept as an independent implementation for cross-validation against
    :func:`mutual_inductance_filaments` in the test suite.
    """
    if length <= 0 or rho <= 0:
        raise ValueError("length and rho must be positive")
    u = length / rho
    return 2.0 * _K * length * (
        math.log(u + math.sqrt(1.0 + u * u))
        - math.sqrt(1.0 + 1.0 / (u * u))
        + 1.0 / u
    )


def _filament_offsets(n: int, extent: float) -> np.ndarray:
    """Centroid offsets of ``n`` equal slices of an interval of ``extent``."""
    if n == 1:
        return np.zeros(1)
    edges = np.linspace(-extent / 2.0, extent / 2.0, n + 1)
    return (edges[:-1] + edges[1:]) / 2.0


def mutual_inductance_bars(
    start1: float,
    end1: float,
    start2: float,
    end2: float,
    d_width: float,
    d_thick: float,
    width1: float,
    thick1: float,
    width2: float,
    thick2: float,
    subdivisions: int | None = None,
) -> float:
    """Mutual inductance between two parallel rectangular bars [H].

    Bars share a current axis; ``(start, end)`` give their axial spans and
    ``(d_width, d_thick)`` the transverse center-to-center offsets along the
    cross-section width and thickness axes.  The exact filament mutual is
    averaged over an ``n x n`` centroid subdivision of both cross sections.

    Args:
        subdivisions: Cross-section slices per transverse axis.  ``None``
            selects automatically: a single center filament when the bars
            are far apart relative to their cross sections, 3 otherwise.

    Returns:
        Mutual inductance; positive for co-directed currents.
    """
    sep = math.hypot(d_width, d_thick)
    max_cross = max(width1, thick1, width2, thick2)
    if subdivisions is None:
        subdivisions = 1 if sep >= 4.0 * max_cross else 3
    if subdivisions < 1:
        raise ValueError("subdivisions must be >= 1")

    n = subdivisions
    w_off1 = _filament_offsets(n, width1)
    t_off1 = _filament_offsets(n, thick1)
    w_off2 = _filament_offsets(n, width2)
    t_off2 = _filament_offsets(n, thick2)

    # All filament-pair transverse separations, vectorized.
    dw = (d_width + w_off2[None, :] - w_off1[:, None]).ravel()
    dt_pairs = (d_thick + t_off2[None, :] - t_off1[:, None]).ravel()
    dws, dts = np.meshgrid(dw, dt_pairs, indexing="ij")
    rho = np.hypot(dws, dts).ravel()

    m = mutual_inductance_filaments(start1, end1, start2, end2, rho)
    return float(np.mean(m))


def mutual_inductance_bars_batch(
    start1: np.ndarray,
    end1: np.ndarray,
    start2: np.ndarray,
    end2: np.ndarray,
    d_width: np.ndarray,
    d_thick: np.ndarray,
    width1: np.ndarray,
    thick1: np.ndarray,
    width2: np.ndarray,
    thick2: np.ndarray,
    subdivisions: int,
) -> np.ndarray:
    """Batched :func:`mutual_inductance_bars` over ``P`` bar pairs [H].

    All ten geometry arguments are arrays of length ``P``; the result is
    the length-``P`` array of bar-pair mutuals.  The evaluation is
    bit-identical to calling :func:`mutual_inductance_bars` once per
    pair: the per-pair filament offsets, transverse separations, and the
    final mean reduce in exactly the same element order, so dense
    assembly can batch its close-pair integrals without perturbing any
    cached or checkpointed result.
    """
    if subdivisions < 1:
        raise ValueError("subdivisions must be >= 1")
    s1 = np.asarray(start1, dtype=float)
    e1 = np.asarray(end1, dtype=float)
    s2 = np.asarray(start2, dtype=float)
    e2 = np.asarray(end2, dtype=float)
    n = subdivisions
    if n == 1:
        rho = np.hypot(np.asarray(d_width, dtype=float),
                       np.asarray(d_thick, dtype=float))
        m = mutual_inductance_filaments(s1, e1, s2, e2, rho)
        return np.atleast_1d(np.asarray(m, dtype=float))

    def offsets(extent: np.ndarray) -> np.ndarray:
        # (P, n) centroid offsets; np.linspace with array endpoints runs
        # the same start + k*step arithmetic as the scalar helper, so
        # each row is bit-identical to _filament_offsets(n, extent[p]).
        e = np.asarray(extent, dtype=float)
        edges = np.linspace(-e / 2.0, e / 2.0, n + 1, axis=-1)
        return (edges[..., :-1] + edges[..., 1:]) / 2.0

    w_off1 = offsets(width1)
    t_off1 = offsets(thick1)
    w_off2 = offsets(width2)
    t_off2 = offsets(thick2)

    # (P, n*n) width/thickness filament-pair offsets, then the full
    # (P, n^2 x n^2) separation grid -- the same meshgrid order the
    # scalar path ravels.
    dw = np.asarray(d_width, dtype=float)[:, None, None] \
        + w_off2[:, None, :] - w_off1[:, :, None]
    dt = np.asarray(d_thick, dtype=float)[:, None, None] \
        + t_off2[:, None, :] - t_off1[:, :, None]
    dw = dw.reshape(dw.shape[0], -1)
    dt = dt.reshape(dt.shape[0], -1)
    rho = np.hypot(dw[:, :, None], dt[:, None, :])
    rho = rho.reshape(rho.shape[0], -1)

    m = mutual_inductance_filaments(
        s1[:, None], e1[:, None], s2[:, None], e2[:, None], rho
    )
    return np.mean(np.asarray(m, dtype=float), axis=1)


def mutual_between_segments(seg1, seg2, subdivisions: int | None = None) -> float:
    """Mutual inductance between two parallel layout segments [H].

    Orthogonal segments have zero mutual by symmetry and raise
    ``ValueError`` to catch caller mistakes; filter with
    :meth:`Segment.is_parallel` first.
    """
    if not seg1.is_parallel(seg2):
        raise ValueError(
            f"segments {seg1.name!r} and {seg2.name!r} are orthogonal; "
            "their mutual inductance is identically zero"
        )
    axis = seg1.direction.axis
    c1 = seg1.center
    c2 = seg2.center
    trans_axes = [a for a in range(3) if a != axis]
    # Map transverse axes onto (width, thickness) of the cross section.
    # For X/Y segments: width is in-plane, thickness is z.
    d_width = c2[trans_axes[0]] - c1[trans_axes[0]]
    d_thick = c2[trans_axes[1]] - c1[trans_axes[1]]
    return mutual_inductance_bars(
        seg1.axis_start,
        seg1.axis_end,
        seg2.axis_start,
        seg2.axis_end,
        d_width,
        d_thick,
        seg1.width,
        seg1.thickness,
        seg2.width,
        seg2.thickness,
        subdivisions=subdivisions,
    )
