"""Parasitic extraction: partial inductance, resistance, and capacitance.

Implements the element-value computations the paper's PEEC model relies on
(Section 3): frequency-independent resistance from geometry and sheet
resistance, partial self and mutual inductances from analytical formulas
(Grover / Ruehli / exact filament integrals), and Chern-style empirical
ground and coupling capacitance models.
"""

from repro.extraction.inductance import (
    mutual_inductance_bars,
    mutual_inductance_bars_batch,
    mutual_inductance_filaments,
    self_inductance_bar,
)
from repro.extraction.filaments import FilamentGrid, filaments_for_skin_depth
from repro.extraction.resistance import segment_resistance, via_resistance
from repro.extraction.capacitance import (
    CapacitanceModel,
    coupling_capacitance_per_length,
    ground_capacitance_per_length,
)
from repro.extraction.partial_matrix import (
    PartialInductanceResult,
    extract_partial_inductance,
)
from repro.extraction.hierarchical import (
    HierarchicalPartialInductanceResult,
    HierarchicalPartialL,
    build_hierarchical_operator,
    extract_hierarchical,
)

__all__ = [
    "self_inductance_bar",
    "mutual_inductance_filaments",
    "mutual_inductance_bars",
    "mutual_inductance_bars_batch",
    "FilamentGrid",
    "filaments_for_skin_depth",
    "segment_resistance",
    "via_resistance",
    "CapacitanceModel",
    "ground_capacitance_per_length",
    "coupling_capacitance_per_length",
    "PartialInductanceResult",
    "extract_partial_inductance",
    "HierarchicalPartialL",
    "HierarchicalPartialInductanceResult",
    "build_hierarchical_operator",
    "extract_hierarchical",
]
