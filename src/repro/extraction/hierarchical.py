"""Hierarchical far-field partial-inductance engine (H-matrix + ACA).

The paper's Section-4 warning -- clock plus power-grid topologies lead to
"mutual inductance of the order of 10G" terms -- is a statement about the
*dense* partial-L matrix: every one of the O(n^2) parallel pairs gets an
exact mutual.  Its own loop extractor cites multipole-accelerated
FastHenry as the way out, and this module is that idea in H-matrix form:

* a **cluster tree** per direction group, built by axis-aligned bisection
  of the segment bounding boxes (leaf size ~32),
* an **admissibility rule** ``max(diam_A, diam_B) < eta * dist(A, B)``
  that splits cluster pairs into *near* blocks -- evaluated exactly with
  the same vectorized filament/bar kernels the dense assembly uses
  (:func:`repro.extraction.partial_matrix.mutual_for_pairs`) -- and
  *far* blocks,
* **ACA** (adaptive cross approximation with partial pivoting) that
  builds each far block as a rank-``r`` outer product ``U @ V`` from
  ``O(r)`` sampled rows and columns, to a relative Frobenius tolerance;
  a block that refuses to converge by :data:`MAX_ACA_RANK` falls back to
  an exact near block, so compression never costs correctness,
* a :class:`HierarchicalPartialL` operator exposing ``matvec`` (O(near +
  sum r*(m+n)) instead of O(n^2)), ``to_dense()`` for small-n
  validation / MNA hand-off, and memory/compression stats.

The QA passivity checker stays the guard: the sparsifier-style adapter
(:class:`repro.sparsify.hierarchical.HierarchicalSparsifier`) verifies
the materialized matrix is SPD before MNA consumes it and falls back to
exact assembly -- recorded in RunReport -- when ACA truncation pushed it
off the cone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.extraction.inductance import self_inductance_bar
from repro.extraction.partial_matrix import (
    _segment_arrays,
    coupling_coefficient,
    mutual_for_pairs,
    reject_vias,
    structural_mutual_count,
)
from repro.geometry.segment import Segment
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

#: Default admissibility parameter: a cluster pair is far when the larger
#: cluster diameter is below ``eta`` times the box-to-box distance.
DEFAULT_ETA = 2.0

#: Default ACA stopping tolerance (relative Frobenius norm per block).
DEFAULT_TOL = 1e-6

#: Default cluster-tree leaf size.
DEFAULT_LEAF_SIZE = 32

#: Rank cap per far block; hitting it without converging falls the block
#: back to exact evaluation (never a silently bad approximation).
MAX_ACA_RANK = 96


# -- cluster tree ------------------------------------------------------------


@dataclass
class Cluster:
    """A node of the per-direction-group cluster tree.

    Attributes:
        indices: Group-local segment positions owned by this cluster.
        lo: Elementwise minimum corner of the members' bounding boxes.
        hi: Elementwise maximum corner.
        left: First half after bisection (None for leaves).
        right: Second half after bisection (None for leaves).
    """

    indices: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    left: "Cluster | None" = None
    right: "Cluster | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def size(self) -> int:
        return int(self.indices.size)

    @property
    def diameter(self) -> float:
        """Diagonal of the cluster bounding box [m]."""
        return float(np.linalg.norm(self.hi - self.lo))

    def distance(self, other: "Cluster") -> float:
        """Box-to-box distance [m]; zero when the boxes touch/overlap."""
        gap = np.maximum(
            np.maximum(self.lo - other.hi, other.lo - self.hi), 0.0
        )
        return float(np.linalg.norm(gap))


def build_cluster_tree(
    lo_corners: np.ndarray,
    hi_corners: np.ndarray,
    leaf_size: int = DEFAULT_LEAF_SIZE,
) -> Cluster:
    """Axis-aligned bisection tree over segment bounding boxes.

    Each level splits along the longest bounding-box axis at the median
    of the member box centers (stable argsort halves, so the tree is
    deterministic and balanced regardless of coordinate degeneracies).
    """
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
    lo_corners = np.asarray(lo_corners, dtype=float)
    hi_corners = np.asarray(hi_corners, dtype=float)
    centers = (lo_corners + hi_corners) / 2.0

    def build(idx: np.ndarray) -> Cluster:
        lo = lo_corners[idx].min(axis=0)
        hi = hi_corners[idx].max(axis=0)
        node = Cluster(indices=idx, lo=lo, hi=hi)
        if idx.size > leaf_size:
            axis = int(np.argmax(hi - lo))
            order = np.argsort(centers[idx, axis], kind="stable")
            half = idx.size // 2
            node.left = build(idx[order[:half]])
            node.right = build(idx[order[half:]])
        return node

    return build(np.arange(lo_corners.shape[0]))


def is_admissible(a: Cluster, b: Cluster, eta: float) -> bool:
    """Far-field admissibility: ``max(diam) < eta * dist`` with dist > 0."""
    dist = a.distance(b)
    return dist > 0.0 and max(a.diameter, b.diameter) < eta * dist


def _collect_block_pairs(
    a: Cluster, b: Cluster, eta: float,
    near: list, far: list, diag: list,
) -> None:
    """Partition the (a x b) interaction into near/far/diagonal blocks."""
    if a is b:
        if a.is_leaf:
            diag.append(a)
        else:
            _collect_block_pairs(a.left, a.left, eta, near, far, diag)
            _collect_block_pairs(a.left, a.right, eta, near, far, diag)
            _collect_block_pairs(a.right, a.right, eta, near, far, diag)
        return
    if is_admissible(a, b, eta):
        far.append((a, b))
        return
    if a.is_leaf and b.is_leaf:
        near.append((a, b))
        return
    # Refine the larger cluster (leaves cannot split further).
    if not a.is_leaf and (b.is_leaf or a.diameter >= b.diameter):
        _collect_block_pairs(a.left, b, eta, near, far, diag)
        _collect_block_pairs(a.right, b, eta, near, far, diag)
    else:
        _collect_block_pairs(a, b.left, eta, near, far, diag)
        _collect_block_pairs(a, b.right, eta, near, far, diag)


# -- adaptive cross approximation --------------------------------------------


def aca(
    entry_row: Callable[[int], np.ndarray],
    entry_col: Callable[[int], np.ndarray],
    num_rows: int,
    num_cols: int,
    tol: float,
    max_rank: int = MAX_ACA_RANK,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Partial-pivot ACA of an ``num_rows x num_cols`` block.

    ``entry_row(i)`` / ``entry_col(j)`` evaluate one exact row / column
    of the block.  Returns ``(U, V)`` with ``A ~= U @ V`` such that the
    estimated relative Frobenius error is below ``tol``, or ``None``
    when ``max_rank`` crosses were not enough (the caller should fall
    back to exact evaluation).
    """
    if tol <= 0.0:
        raise ValueError(f"tol must be positive, got {tol}")
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    row_unused = np.ones(num_rows, dtype=bool)
    col_unused = np.ones(num_cols, dtype=bool)
    approx_norm2 = 0.0
    i = 0
    for _ in range(min(num_rows, num_cols, max_rank)):
        residual_row = np.array(entry_row(i), dtype=float, copy=True)
        for u, v in zip(us, vs):
            residual_row -= u[i] * v
        row_unused[i] = False
        candidates = np.where(col_unused, np.abs(residual_row), -1.0)
        j = int(np.argmax(candidates))
        pivot = residual_row[j]
        if candidates[j] <= 0.0 or pivot == 0.0:
            # The sampled residual row is exactly zero: the remaining
            # residual is (numerically) rank-deficient; accept.
            break
        v = residual_row / pivot
        residual_col = np.array(entry_col(j), dtype=float, copy=True)
        for u, w in zip(us, vs):
            residual_col -= w[j] * u
        u = residual_col
        col_unused[j] = False
        us.append(u)
        vs.append(v)
        uu = float(u @ u)
        vv = float(v @ v)
        cross = 0.0
        for u_prev, v_prev in zip(us[:-1], vs[:-1]):
            cross += float(u_prev @ u) * float(v_prev @ v)
        approx_norm2 += uu * vv + 2.0 * cross
        if approx_norm2 <= 0.0 or uu * vv <= (tol * tol) * approx_norm2:
            break
        if not row_unused.any():
            break
        next_candidates = np.where(row_unused, np.abs(u), -1.0)
        i = int(np.argmax(next_candidates))
    else:
        return None  # rank cap hit before the tolerance
    if not us:
        return (
            np.zeros((num_rows, 0)),
            np.zeros((0, num_cols)),
        )
    return np.column_stack(us), np.vstack(vs)


# -- the compressed operator -------------------------------------------------


@dataclass
class DenseBlock:
    """Exactly evaluated off-diagonal block (mirrored implicitly)."""

    rows: np.ndarray
    cols: np.ndarray
    matrix: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.matrix.nbytes + self.rows.nbytes + self.cols.nbytes)


@dataclass
class SymmetricBlock:
    """Same-cluster leaf block: symmetric, zero diagonal (diag is global)."""

    indices: np.ndarray
    matrix: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.matrix.nbytes + self.indices.nbytes)


@dataclass
class LowRankBlock:
    """ACA-compressed far-field block ``U @ V`` (mirrored implicitly)."""

    rows: np.ndarray
    cols: np.ndarray
    u: np.ndarray
    v: np.ndarray

    @property
    def rank(self) -> int:
        return int(self.u.shape[1])

    @property
    def nbytes(self) -> int:
        return int(
            self.u.nbytes + self.v.nbytes + self.rows.nbytes
            + self.cols.nbytes
        )


class HierarchicalPartialL:
    """Compressed partial-inductance operator: exact near + low-rank far.

    The operator is symmetric by construction: off-diagonal blocks are
    stored once and applied in both orientations.  ``matvec`` is the
    production interface; ``to_dense`` materializes the full matrix for
    small-n validation and for MNA consumers that need entries.
    """

    def __init__(
        self,
        diag: np.ndarray,
        sym_blocks: list[SymmetricBlock],
        near_blocks: list[DenseBlock],
        far_blocks: list[LowRankBlock],
        params: dict | None = None,
        aca_fallbacks: int = 0,
    ) -> None:
        self.diag = np.asarray(diag, dtype=float)
        self.sym_blocks = sym_blocks
        self.near_blocks = near_blocks
        self.far_blocks = far_blocks
        self.params = dict(params or {})
        self.aca_fallbacks = int(aca_fallbacks)

    @property
    def n(self) -> int:
        return int(self.diag.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = L @ x`` without ever forming the dense matrix."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise ValueError(
                f"matvec expects shape ({self.n},), got {x.shape}"
            )
        y = self.diag * x
        for blk in self.sym_blocks:
            y[blk.indices] += blk.matrix @ x[blk.indices]
        for blk in self.near_blocks:
            y[blk.rows] += blk.matrix @ x[blk.cols]
            y[blk.cols] += blk.matrix.T @ x[blk.rows]
        for blk in self.far_blocks:
            y[blk.rows] += blk.u @ (blk.v @ x[blk.cols])
            y[blk.cols] += blk.v.T @ (blk.u.T @ x[blk.rows])
        return y

    def to_dense(self) -> np.ndarray:
        """Materialize the full symmetric matrix (small-n validation)."""
        obs_metrics.counter("hierarchical.to_dense_calls").inc()
        out = np.zeros((self.n, self.n))
        np.fill_diagonal(out, self.diag)
        for blk in self.sym_blocks:
            out[np.ix_(blk.indices, blk.indices)] += blk.matrix
        for blk in self.near_blocks:
            out[np.ix_(blk.rows, blk.cols)] = blk.matrix
            out[np.ix_(blk.cols, blk.rows)] = blk.matrix.T
        for blk in self.far_blocks:
            approx = blk.u @ blk.v
            out[np.ix_(blk.rows, blk.cols)] = approx
            out[np.ix_(blk.cols, blk.rows)] = approx.T
        return out

    def near_block_diagonal(self) -> sp.csr_matrix:
        """Exact near field as a sparse matrix.

        The diagonal, the same-cluster leaf blocks, and the exact
        off-diagonal near blocks (both orientations): everything the
        operator stores exactly, leaving only the ACA-compressed far
        field out.  It is the preconditioner seed for the Krylov solve
        tier — cheap to factor with ``splu`` and never densifies the far
        field, which :meth:`far_lowrank` supplies as global low-rank
        factors instead.
        """
        n = self.n
        rows = [np.arange(n)]
        cols = [np.arange(n)]
        vals = [self.diag]
        for blk in self.sym_blocks:
            rr, cc = np.meshgrid(blk.indices, blk.indices, indexing="ij")
            rows.append(rr.ravel())
            cols.append(cc.ravel())
            vals.append(blk.matrix.ravel())
        for blk in self.near_blocks:
            rr, cc = np.meshgrid(blk.rows, blk.cols, indexing="ij")
            rows.append(rr.ravel())
            cols.append(cc.ravel())
            vals.append(blk.matrix.ravel())
            # The mirrored orientation: value M[i, j] lands at
            # (cols[j], rows[i]), so the same raveled data pairs with the
            # swapped coordinate arrays.
            rows.append(cc.ravel())
            cols.append(rr.ravel())
            vals.append(blk.matrix.ravel())
        mat = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        )
        return mat.tocsr()

    def far_lowrank(self) -> tuple[np.ndarray, np.ndarray]:
        """Global low-rank factors ``(U, V)`` of the compressed far field.

        ``U @ V`` (shape ``(n, K) @ (K, n)`` with ``K`` the summed block
        ranks, both orientations) reproduces exactly the part of the
        operator that :meth:`near_block_diagonal` leaves out, so
        ``near_block_diagonal() + U @ V`` equals :meth:`to_dense` to
        rounding.  ``K`` is small (ACA ranks), which makes a Woodbury
        correction of the near-field preconditioner affordable.
        """
        n = self.n
        total = 2 * sum(blk.rank for blk in self.far_blocks)
        u_global = np.zeros((n, total))
        v_global = np.zeros((total, n))
        at = 0
        for blk in self.far_blocks:
            k = blk.rank
            u_global[blk.rows, at:at + k] = blk.u
            v_global[at:at + k, blk.cols] = blk.v
            at += k
            u_global[blk.cols, at:at + k] = blk.v.T
            v_global[at:at + k, blk.rows] = blk.u.T
            at += k
        return u_global, v_global

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the compressed representation."""
        total = int(self.diag.nbytes)
        for blk in self.sym_blocks:
            total += blk.nbytes
        for blk in self.near_blocks:
            total += blk.nbytes
        for blk in self.far_blocks:
            total += blk.nbytes
        return total

    def stats(self) -> dict:
        """Memory / compression / rank statistics for reports and bench."""
        dense_bytes = 8 * self.n * self.n
        memory = self.memory_bytes
        ranks = [blk.rank for blk in self.far_blocks]
        return {
            "n": self.n,
            "num_sym_blocks": len(self.sym_blocks),
            "num_near_blocks": len(self.near_blocks),
            "num_far_blocks": len(self.far_blocks),
            "aca_fallbacks": self.aca_fallbacks,
            "max_rank": max(ranks) if ranks else 0,
            "mean_rank": float(np.mean(ranks)) if ranks else 0.0,
            "memory_bytes": memory,
            "dense_bytes": dense_bytes,
            "compression": dense_bytes / memory if memory else float("inf"),
            **{k: v for k, v in self.params.items()},
        }


# -- builder -----------------------------------------------------------------


def _group_corners(segments: list[Segment], indices: list[int]):
    """(lo, hi) bounding-box corner arrays for a direction group."""
    lo = np.array([segments[i].origin for i in indices], dtype=float)
    hi = np.array([segments[i].end for i in indices], dtype=float)
    return lo, hi


def build_hierarchical_operator(
    segments: list[Segment],
    eta: float = DEFAULT_ETA,
    tol: float = DEFAULT_TOL,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    close_ratio: float = 4.0,
    close_subdivisions: int = 3,
) -> HierarchicalPartialL:
    """Build the compressed partial-L operator for in-plane segments.

    Near-field blocks reproduce the dense assembly bit for bit (same
    kernels, same close-pair classification); far-field blocks carry the
    ACA truncation error, bounded per block by ``tol`` in relative
    Frobenius norm.
    """
    reject_vias(segments)
    if eta <= 0.0:
        raise ValueError(f"eta must be positive, got {eta}")
    n = len(segments)
    diag = np.array([
        self_inductance_bar(s.length, s.width, s.thickness)
        for s in segments
    ])

    sym_blocks: list[SymmetricBlock] = []
    near_blocks: list[DenseBlock] = []
    far_blocks: list[LowRankBlock] = []
    fallbacks = 0

    with span(
        "extraction.hierarchical", segments=n, eta=eta, tol=tol,
        leaf_size=leaf_size,
    ) as sp:
        for direction_axis in (0, 1):
            indices = [
                i for i, s in enumerate(segments)
                if s.direction.axis == direction_axis
            ]
            if len(indices) < 2:
                continue
            arrays = _segment_arrays(segments, indices)
            start, end, ta, tb, width, thick = arrays
            global_of = np.array(indices)

            with span(
                "hierarchical.tree", axis=direction_axis,
                segments=len(indices),
            ):
                root = build_cluster_tree(
                    *_group_corners(segments, indices), leaf_size=leaf_size
                )
                near: list[tuple[Cluster, Cluster]] = []
                far: list[tuple[Cluster, Cluster]] = []
                diag_leaves: list[Cluster] = []
                _collect_block_pairs(
                    root, root, eta, near, far, diag_leaves
                )

            def entries(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
                return mutual_for_pairs(
                    start, end, ta, tb, width, thick, rows, cols,
                    close_ratio, close_subdivisions,
                )

            def dense_block(ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
                rows = np.repeat(ii, jj.size)
                cols = np.tile(jj, ii.size)
                return entries(rows, cols).reshape(ii.size, jj.size)

            with span(
                "hierarchical.near", axis=direction_axis,
                blocks=len(near) + len(diag_leaves),
            ):
                for leaf in diag_leaves:
                    ii = leaf.indices
                    m = ii.size
                    block = np.zeros((m, m))
                    if m > 1:
                        iu, ju = np.triu_indices(m, k=1)
                        vals = entries(ii[iu], ii[ju])
                        block[iu, ju] = vals
                        block[ju, iu] = vals
                    sym_blocks.append(SymmetricBlock(
                        indices=global_of[ii], matrix=block,
                    ))
                for a, b in near:
                    near_blocks.append(DenseBlock(
                        rows=global_of[a.indices],
                        cols=global_of[b.indices],
                        matrix=dense_block(a.indices, b.indices),
                    ))

            with span(
                "hierarchical.far", axis=direction_axis, blocks=len(far),
            ):
                for a, b in far:
                    ii, jj = a.indices, b.indices
                    uv = aca(
                        lambda i: entries(
                            np.full(jj.size, ii[i]), jj
                        ),
                        lambda j: entries(
                            ii, np.full(ii.size, jj[j])
                        ),
                        ii.size, jj.size, tol,
                    )
                    if uv is None:
                        # The block resisted compression: keep it exact.
                        fallbacks += 1
                        near_blocks.append(DenseBlock(
                            rows=global_of[ii], cols=global_of[jj],
                            matrix=dense_block(ii, jj),
                        ))
                        continue
                    far_blocks.append(LowRankBlock(
                        rows=global_of[ii], cols=global_of[jj],
                        u=uv[0], v=uv[1],
                    ))

        op = HierarchicalPartialL(
            diag=diag,
            sym_blocks=sym_blocks,
            near_blocks=near_blocks,
            far_blocks=far_blocks,
            params={
                "eta": float(eta), "tol": float(tol),
                "leaf_size": int(leaf_size),
            },
            aca_fallbacks=fallbacks,
        )
        stats = op.stats()
        sp.attrs.update(
            near_blocks=stats["num_near_blocks"] + stats["num_sym_blocks"],
            far_blocks=stats["num_far_blocks"],
            max_rank=stats["max_rank"],
            aca_fallbacks=stats["aca_fallbacks"],
            compression=round(stats["compression"], 3),
        )
        obs_metrics.gauge("hierarchical.compression_ratio").set(
            stats["compression"]
        )
        obs_metrics.gauge("hierarchical.max_rank").set(stats["max_rank"])
        obs_metrics.counter("hierarchical.far_blocks").inc(
            stats["num_far_blocks"]
        )
        obs_metrics.counter("hierarchical.aca_fallbacks").inc(fallbacks)
    return op


# -- extraction-level result -------------------------------------------------


class HierarchicalPartialInductanceResult:
    """Hierarchical counterpart of :class:`PartialInductanceResult`.

    Duck-type compatible with the dense result (``segments``, ``size``,
    ``matrix``, ``num_mutuals``, ``coupling_coefficient``,
    ``is_positive_definite``), plus the compressed ``operator``.  The
    ``matrix`` property materializes -- and caches -- the dense form on
    first access; large-n consumers should stay on ``operator.matvec``.
    """

    def __init__(
        self, segments: list[Segment], operator: HierarchicalPartialL
    ) -> None:
        self.segments = list(segments)
        self.operator = operator
        self._dense: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.operator.n

    @property
    def matrix(self) -> np.ndarray:
        if self._dense is None:
            self._dense = self.operator.to_dense()
        return self._dense

    @property
    def num_mutuals(self) -> int:
        """Number of structural couplings (parallel same-axis pairs)."""
        return structural_mutual_count(self.segments)

    def coupling_coefficient(self, i: int, j: int) -> float:
        """Dimensionless k_ij = M_ij / sqrt(L_ii * L_jj)."""
        return coupling_coefficient(self.matrix, self.segments, i, j)

    def is_positive_definite(self) -> bool:
        try:
            np.linalg.cholesky(self.matrix)
            return True
        except np.linalg.LinAlgError:
            return False

    def stats(self) -> dict:
        """The operator's memory/compression statistics."""
        return self.operator.stats()


def extract_hierarchical(
    segments: list[Segment],
    eta: float = DEFAULT_ETA,
    tol: float = DEFAULT_TOL,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    close_ratio: float = 4.0,
    close_subdivisions: int = 3,
) -> HierarchicalPartialInductanceResult:
    """Hierarchical extraction behind ``assembly="hierarchical"``.

    Memoized through the :mod:`repro.perf.cache` content-addressed store
    under a key that covers the exact geometry *and* every
    value-affecting parameter -- ``eta``, ``tol``, ``leaf_size``, and
    the close-pair settings -- so changing a knob always recomputes.
    """
    reject_vias(segments)
    from repro.perf import cache as perf_cache

    digest = perf_cache.fingerprint_segments(
        segments,
        {
            "assembly": "hierarchical",
            "eta": float(eta),
            "tol": float(tol),
            "leaf_size": int(leaf_size),
            "close_ratio": float(close_ratio),
            "close_subdivisions": int(close_subdivisions),
        },
    )
    with span(
        "extraction.partial_L", segments=len(segments),
        assembly="hierarchical",
    ) as sp:
        cached = perf_cache.load_operator(digest)
        if cached is not None:
            sp.attrs["cached"] = True
            return HierarchicalPartialInductanceResult(
                segments=list(segments), operator=cached
            )
        sp.attrs["cached"] = False
        operator = build_hierarchical_operator(
            segments, eta=eta, tol=tol, leaf_size=leaf_size,
            close_ratio=close_ratio, close_subdivisions=close_subdivisions,
        )
        perf_cache.store_operator(digest, operator)
        return HierarchicalPartialInductanceResult(
            segments=list(segments), operator=operator
        )


__all__ = [
    "DEFAULT_ETA",
    "DEFAULT_TOL",
    "DEFAULT_LEAF_SIZE",
    "MAX_ACA_RANK",
    "Cluster",
    "build_cluster_tree",
    "is_admissible",
    "aca",
    "DenseBlock",
    "SymmetricBlock",
    "LowRankBlock",
    "HierarchicalPartialL",
    "HierarchicalPartialInductanceResult",
    "build_hierarchical_operator",
    "extract_hierarchical",
]
