"""Chern-style empirical capacitance models.

The paper computes interconnect ground and coupling capacitance "using
Chern models or commercial extraction tools".  The Chern coefficients are
proprietary-foundry-calibrated; we substitute the published Sakurai-Tamaru
empirical forms (same family: area + fringe ground capacitance and a
power-law coupling term), which reproduce the geometric trends -- wider
lines and thinner dielectrics raise ground capacitance, tighter spacing
raises coupling -- that drive the paper's conclusions.  DESIGN.md records
the substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import EPS0, EPS_R_SIO2
from repro.geometry.layout import Layout
from repro.geometry.segment import Segment


def ground_capacitance_per_length(
    width: float,
    thickness: float,
    height: float,
    eps_r: float = EPS_R_SIO2,
) -> float:
    """Capacitance per unit length of a line over a ground plane [F/m].

    Sakurai-Tamaru single-line formula (area + fringe)::

        C = eps * [ 1.15 (w/h) + 2.80 (t/h)^0.222 ]

    Args:
        width: Line width [m].
        thickness: Line thickness [m].
        height: Dielectric height between line bottom and the plane [m].
        eps_r: Relative dielectric permittivity.
    """
    if width <= 0 or thickness <= 0 or height <= 0:
        raise ValueError("width, thickness, height must be positive")
    eps = EPS0 * eps_r
    return eps * (1.15 * (width / height) + 2.80 * (thickness / height) ** 0.222)


def coupling_capacitance_per_length(
    thickness: float,
    spacing: float,
    height: float,
    width: float,
    eps_r: float = EPS_R_SIO2,
) -> float:
    """Coupling capacitance per unit length of two parallel lines [F/m].

    Sakurai-Tamaru coupled-line term::

        C_c = eps * [ 0.03 (w/h) + 0.83 (t/h) - 0.07 (t/h)^0.222 ] (s/h)^-1.34

    Args:
        thickness: Line thickness [m].
        spacing: Edge-to-edge spacing [m].
        height: Height above the reference plane [m].
        width: Line width [m].
        eps_r: Relative dielectric permittivity.
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    eps = EPS0 * eps_r
    geo = 0.03 * (width / height) + 0.83 * (thickness / height) \
        - 0.07 * (thickness / height) ** 0.222
    return eps * max(geo, 0.0) * (spacing / height) ** -1.34


@dataclass
class CapacitanceModel:
    """Capacitance extraction over a layout.

    Produces the two capacitance populations of the paper's PEEC model:
    grounded capacitance for every segment (the C of each RLC-pi section)
    and coupling capacitance "between all pairs of adjacent lines".

    Attributes:
        eps_r: Dielectric relative permittivity.
        coupling_max_gap: Ignore coupling beyond this edge-to-edge gap [m].
            (Unlike the inductance matrix, the capacitance matrix *can* be
            truncated without passivity problems -- Section 4 of the paper.)
    """

    eps_r: float = EPS_R_SIO2
    coupling_max_gap: float = 5e-6

    def segment_ground_capacitance(self, segment: Segment, layout: Layout) -> float:
        """Total grounded capacitance of one segment [F].

        Height is taken to the substrate (z = 0); stacked-conductor
        shielding of the field is ignored, which is the standard
        pre-layout simplification.
        """
        height = segment.origin[2]
        if height <= 0:
            raise ValueError(
                f"segment {segment.name!r} sits at z<=0; ground capacitance "
                "needs a positive dielectric height"
            )
        c_per_len = ground_capacitance_per_length(
            segment.width, segment.thickness, height, self.eps_r
        )
        return c_per_len * segment.length

    def coupling_pairs(
        self, layout: Layout
    ) -> list[tuple[int, int, float]]:
        """(i, j, C) coupling capacitances between adjacent parallel lines.

        Only same-layer parallel segments with positive axial overlap and an
        edge gap below ``coupling_max_gap`` couple; C is computed from the
        overlap length.
        """
        out: list[tuple[int, int, float]] = []
        segs = layout.segments
        for i, j in layout.parallel_pairs():
            si, sj = segs[i], segs[j]
            if si.layer != sj.layer:
                continue
            overlap = si.axial_overlap(sj)
            if overlap <= 0:
                continue
            gap = si.gap(sj)
            if gap <= 0 or gap > self.coupling_max_gap:
                continue
            height = si.origin[2]
            c_per_len = coupling_capacitance_per_length(
                si.thickness, gap, height, min(si.width, sj.width), self.eps_r
            )
            c = c_per_len * overlap
            if c > 0:
                out.append((i, j, c))
        return out
