"""Cross-section filament subdivision for skin and proximity effects.

The partial-inductance formulas assume uniform current density over a
segment's cross section.  At high frequency, current crowds toward the
surface (skin effect) and toward nearby return conductors (proximity
effect).  FastHenry-style extraction captures both by splitting each
conductor into parallel *filaments* -- each a thin bar with its own
resistance and partial inductance, all tied together at the segment ends --
and letting the frequency-domain circuit solution redistribute current
among them.

This module produces those subdivisions.  The paper's note that "very wide
conductors must be split into narrower lines before computing inductance"
is :func:`filaments_for_skin_depth` with the width axis only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.constants import MU0, skin_depth
from repro.geometry.segment import Direction, Segment


@dataclass(frozen=True)
class FilamentGrid:
    """A rectangular subdivision of a conductor cross section.

    Attributes:
        num_width: Number of slices across the width.
        num_thickness: Number of slices across the thickness.
    """

    num_width: int
    num_thickness: int

    def __post_init__(self) -> None:
        if self.num_width < 1 or self.num_thickness < 1:
            raise ValueError("filament counts must be >= 1")

    @property
    def count(self) -> int:
        """Total number of filaments."""
        return self.num_width * self.num_thickness

    def offsets(self, width: float, thickness: float) -> list[tuple[float, float]]:
        """(width-offset, thickness-offset) of each filament centroid [m]."""
        def centers(n: int, extent: float) -> np.ndarray:
            edges = np.linspace(-extent / 2.0, extent / 2.0, n + 1)
            return (edges[:-1] + edges[1:]) / 2.0

        return [
            (float(dw), float(dt))
            for dw in centers(self.num_width, width)
            for dt in centers(self.num_thickness, thickness)
        ]

    def split_segment(self, segment: Segment) -> list[Segment]:
        """Split a segment into its filament sub-segments.

        Each filament keeps the parent's net, layer, span, and name (with a
        ``.fK`` suffix) and shares the parent's end nodes electrically --
        the caller (loop extractor / PEEC builder) ties filament ends
        together.
        """
        if self.count == 1:
            return [segment]
        axis = segment.direction.axis
        width_axis = 1 if axis == 0 else 0
        fil_w = segment.width / self.num_width
        fil_t = segment.thickness / self.num_thickness
        out = []
        for k, (dw, dt) in enumerate(self.offsets(segment.width, segment.thickness)):
            origin = list(segment.origin)
            # Offsets are relative to the cross-section center; convert to
            # origin-corner coordinates of the filament.
            origin[width_axis] += (dw + segment.width / 2.0) - fil_w / 2.0
            origin[2] += (dt + segment.thickness / 2.0) - fil_t / 2.0
            out.append(
                replace(
                    segment,
                    origin=tuple(origin),
                    width=fil_w,
                    thickness=fil_t,
                    name=f"{segment.name}.f{k}",
                )
            )
        return out


def filaments_for_skin_depth(
    width: float,
    thickness: float,
    frequency: float,
    resistivity: float,
    slices_per_depth: float = 1.0,
    max_per_axis: int = 9,
) -> FilamentGrid:
    """Choose a filament grid fine enough for ``frequency``.

    Each filament should be no larger than ~2 skin depths across (so that a
    uniform-current-density assumption holds within it); counts are capped
    at ``max_per_axis`` per axis to bound cost.

    Args:
        width: Conductor width [m].
        thickness: Conductor thickness [m].
        frequency: Analysis frequency [Hz]; 0 or negative means DC (single
            filament).
        resistivity: Conductor resistivity [ohm*m].
        slices_per_depth: Refinement knob; >1 subdivides more finely.
        max_per_axis: Upper bound on slices per axis.
    """
    if frequency <= 0.0:
        return FilamentGrid(1, 1)
    delta = skin_depth(frequency, resistivity)
    target = 2.0 * delta / slices_per_depth

    def count(extent: float) -> int:
        n = int(math.ceil(extent / target))
        return max(1, min(n, max_per_axis))

    return FilamentGrid(count(width), count(thickness))


def max_useful_frequency(width: float, thickness: float,
                         resistivity: float) -> float:
    """Frequency below which a single filament is adequate [Hz].

    The skin depth equals half the smaller cross-section dimension at this
    frequency; below it, current distribution across the conductor is
    nearly uniform and subdividing buys nothing.
    """
    d_min = min(width, thickness) / 2.0
    return resistivity / (math.pi * MU0 * d_min * d_min)
