"""Assembly of the dense partial-inductance matrix for a layout.

Produces the matrix the whole of Section 4 of the paper is about: one row
per in-plane conductor segment, diagonal = partial self inductances,
off-diagonal = partial mutual inductances between all pairs of parallel
segments (orthogonal pairs couple zero by symmetry).  The matrix is dense
-- "large clock net topologies along with power grid can lead to ... mutual
inductance of the order of 10G" -- which is why the sparsification and
model-order-reduction machinery in :mod:`repro.sparsify` and
:mod:`repro.mor` exists.

Assembly is fully vectorized: all far pairs are evaluated with the exact
center-filament formula in one numpy pass per direction group; only close
pairs (where cross-section size matters) fall back to the subdivided bar
integral.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extraction.inductance import (
    _K,
    mutual_inductance_bars,
    mutual_inductance_filaments,
    self_inductance_bar,
)
from repro.geometry.layout import Layout
from repro.geometry.segment import Direction, Segment
from repro.obs.trace import span


@dataclass
class PartialInductanceResult:
    """Dense partial-inductance extraction result.

    Attributes:
        segments: The in-plane segments, in matrix order.
        matrix: Symmetric positive-definite partial-L matrix [H],
            shape (n, n).
    """

    segments: list[Segment]
    matrix: np.ndarray

    @property
    def size(self) -> int:
        """Number of self inductances (matrix dimension)."""
        return self.matrix.shape[0]

    @property
    def num_mutuals(self) -> int:
        """Number of nonzero off-diagonal couplings (upper triangle)."""
        upper = np.triu(self.matrix, k=1)
        return int(np.count_nonzero(upper))

    def coupling_coefficient(self, i: int, j: int) -> float:
        """Dimensionless k_ij = M_ij / sqrt(L_ii * L_jj)."""
        m = self.matrix
        return float(m[i, j] / np.sqrt(m[i, i] * m[j, j]))

    def is_positive_definite(self) -> bool:
        """Cholesky-based positive-definiteness check."""
        try:
            np.linalg.cholesky(self.matrix)
            return True
        except np.linalg.LinAlgError:
            return False


def _segment_arrays(segments: list[Segment], indices: list[int]):
    """Column arrays (start, end, trans-a, trans-b, width, thickness)."""
    axis = segments[indices[0]].direction.axis
    trans_axes = [a for a in range(3) if a != axis]
    start = np.array([segments[i].axis_start for i in indices])
    end = np.array([segments[i].axis_end for i in indices])
    centers = np.array([segments[i].center for i in indices])
    ta = centers[:, trans_axes[0]]
    tb = centers[:, trans_axes[1]]
    width = np.array([segments[i].width for i in indices])
    thick = np.array([segments[i].thickness for i in indices])
    return start, end, ta, tb, width, thick


def extract_partial_inductance(
    segments: list[Segment],
    close_ratio: float = 4.0,
    close_subdivisions: int = 3,
    block: int = 512,
) -> PartialInductanceResult:
    """Compute the full dense partial-inductance matrix [H].

    Args:
        segments: In-plane segments (Z-direction segments are rejected;
            the PEEC model treats vias as resistive).
        close_ratio: Pairs closer than ``close_ratio * max cross-section
            dimension`` are re-evaluated with cross-section subdivision.
        close_subdivisions: Filaments per transverse axis for close pairs.
        block: Row-block size bounding peak memory of the vectorized pass.

    Returns:
        The extraction result with a symmetric matrix.
    """
    for seg in segments:
        if seg.direction == Direction.Z:
            raise ValueError(
                f"segment {seg.name!r} is a via (Z direction); exclude vias "
                "from inductance extraction"
            )

    # Content-addressed memoization: the matrix is a pure function of the
    # geometry and the close-pair parameters (``block`` only bounds peak
    # memory, so it stays out of the key).  Import lazily -- repro.perf
    # sits above the extraction layer in the package graph.
    from repro.perf import cache as perf_cache

    digest = perf_cache.fingerprint_segments(
        segments,
        {"close_ratio": float(close_ratio),
         "close_subdivisions": int(close_subdivisions)},
    )
    with span("extraction.partial_L", segments=len(segments)) as sp:
        cached = perf_cache.load_matrix(digest)
        if cached is not None:
            sp.attrs["cached"] = True
            return PartialInductanceResult(
                segments=list(segments), matrix=cached
            )
        sp.attrs["cached"] = False
        matrix = _assemble_matrix(
            segments, close_ratio, close_subdivisions, block
        )
        perf_cache.store_matrix(digest, matrix)
        return PartialInductanceResult(segments=list(segments), matrix=matrix)


def _assemble_matrix(
    segments: list[Segment],
    close_ratio: float,
    close_subdivisions: int,
    block: int,
) -> np.ndarray:
    """The vectorized dense assembly behind the cache lookup."""
    n = len(segments)
    matrix = np.zeros((n, n))
    for i, seg in enumerate(segments):
        matrix[i, i] = self_inductance_bar(seg.length, seg.width, seg.thickness)

    for direction_axis in (0, 1):
        indices = [
            i for i, s in enumerate(segments) if s.direction.axis == direction_axis
        ]
        if len(indices) < 2:
            continue
        start, end, ta, tb, width, thick = _segment_arrays(segments, indices)
        idx = np.array(indices)
        m = len(indices)
        for r0 in range(0, m, block):
            r1 = min(r0 + block, m)
            rows = slice(r0, r1)
            # Broadcast rows x all-columns; keep upper triangle only.
            dw = ta[rows, None] - ta[None, :]
            dt = tb[rows, None] - tb[None, :]
            rho = np.hypot(dw, dt)
            col_idx = np.arange(m)[None, :]
            row_idx = np.arange(r0, r1)[:, None]
            upper = col_idx > row_idx
            pair_rows, pair_cols = np.nonzero(upper)
            if pair_rows.size == 0:
                continue
            pr = pair_rows + r0
            pc = pair_cols
            rr = rho[pair_rows, pair_cols]
            mutual = mutual_inductance_filaments(
                start[pr], end[pr], start[pc], end[pc], rr
            )
            mutual = np.asarray(mutual)
            # Close pairs: redo with cross-section subdivision.
            max_cross = np.maximum.reduce(
                [width[pr], thick[pr], width[pc], thick[pc]]
            )
            close = rr < close_ratio * max_cross
            for k in np.nonzero(close)[0]:
                a, b = int(pr[k]), int(pc[k])
                mutual[k] = mutual_inductance_bars(
                    start[a], end[a], start[b], end[b],
                    ta[b] - ta[a], tb[b] - tb[a],
                    width[a], thick[a], width[b], thick[b],
                    subdivisions=close_subdivisions,
                )
            gi = idx[pr]
            gj = idx[pc]
            matrix[gi, gj] = mutual
            matrix[gj, gi] = mutual
    return matrix


def extract_for_layout(
    layout: Layout, **kwargs
) -> tuple[PartialInductanceResult, list[int]]:
    """Extract the partial-L matrix for a layout's in-plane segments.

    Returns:
        (result, segment_indices): ``segment_indices[k]`` is the index into
        ``layout.segments`` of matrix row ``k``.
    """
    indices = [
        i for i, s in enumerate(layout.segments) if s.direction != Direction.Z
    ]
    result = extract_partial_inductance(
        [layout.segments[i] for i in indices], **kwargs
    )
    return result, indices
