"""Assembly of the dense partial-inductance matrix for a layout.

Produces the matrix the whole of Section 4 of the paper is about: one row
per in-plane conductor segment, diagonal = partial self inductances,
off-diagonal = partial mutual inductances between all pairs of parallel
segments (orthogonal pairs couple zero by symmetry).  The matrix is dense
-- "large clock net topologies along with power grid can lead to ... mutual
inductance of the order of 10G" -- which is why the sparsification and
model-order-reduction machinery in :mod:`repro.sparsify` and
:mod:`repro.mor` exists, and why :mod:`repro.extraction.hierarchical`
compresses the far field instead of storing it.

Assembly is fully vectorized: all far pairs are evaluated with the exact
center-filament formula in one numpy pass per direction group, and close
pairs (where cross-section size matters) are re-evaluated with the
subdivided bar integral in batched passes over the close-pair index set.
A pair is *close* when the edge-to-edge (surface) separation of the two
cross sections -- not the center-to-center distance, which misclassifies
wide bars whose edges nearly touch -- falls inside ``close_ratio`` times
the largest cross-section dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.extraction.inductance import (
    mutual_inductance_bars_batch,
    mutual_inductance_filaments,
    self_inductance_bar,
)
from repro.geometry.layout import Layout
from repro.geometry.segment import Direction, Segment
from repro.obs.trace import span

#: Close-pair bar integrals are batched in slices of this many pairs to
#: bound peak memory (each pair expands to ``subdivisions**4`` filament
#: separations).
CLOSE_PAIR_CHUNK = 4096


def structural_mutual_count(segments: list[Segment]) -> int:
    """Number of structural mutual couplings: parallel same-axis pairs.

    This is a property of the geometry, not of the matrix values: a
    mutual that evaluates to exactly zero by symmetric cancellation
    (twisted-bundle layouts are engineered for it) is still a coupling
    the model carries, so counting nonzero entries would undercount.
    """
    counts: dict[int, int] = {}
    for seg in segments:
        axis = seg.direction.axis
        counts[axis] = counts.get(axis, 0) + 1
    return sum(k * (k - 1) // 2 for k in counts.values())


@dataclass
class PartialInductanceResult:
    """Dense partial-inductance extraction result.

    Attributes:
        segments: The in-plane segments, in matrix order.
        matrix: Symmetric positive-definite partial-L matrix [H],
            shape (n, n).
    """

    segments: list[Segment]
    matrix: np.ndarray

    @property
    def size(self) -> int:
        """Number of self inductances (matrix dimension)."""
        return self.matrix.shape[0]

    @property
    def num_mutuals(self) -> int:
        """Number of structural couplings (parallel same-axis pairs)."""
        return structural_mutual_count(self.segments)

    def coupling_coefficient(self, i: int, j: int) -> float:
        """Dimensionless k_ij = M_ij / sqrt(L_ii * L_jj)."""
        return coupling_coefficient(self.matrix, self.segments, i, j)

    def is_positive_definite(self) -> bool:
        """Cholesky-based positive-definiteness check."""
        try:
            np.linalg.cholesky(self.matrix)
            return True
        except np.linalg.LinAlgError:
            return False


def coupling_coefficient(
    matrix: np.ndarray, segments: list[Segment], i: int, j: int
) -> float:
    """k_ij = M_ij / sqrt(L_ii * L_jj), guarded against degenerate rows.

    A nonpositive diagonal entry means the segment's self inductance is
    broken (degenerate geometry or a corrupted matrix); dividing by its
    square root would silently return NaN or garbage, so it raises
    instead, naming the offending row.
    """
    for k in (i, j):
        diag = float(matrix[k, k])
        if not diag > 0.0:
            name = segments[k].name if k < len(segments) else ""
            raise ValueError(
                f"nonpositive self inductance L[{k},{k}] = {diag:.6g} H "
                f"(segment {name!r}); coupling coefficients are undefined "
                "for a degenerate row"
            )
    return float(matrix[i, j] / math.sqrt(matrix[i, i] * matrix[j, j]))


def reject_vias(segments: list[Segment]) -> None:
    """Raise when any segment is a via (Z direction)."""
    for seg in segments:
        if seg.direction == Direction.Z:
            raise ValueError(
                f"segment {seg.name!r} is a via (Z direction); exclude vias "
                "from inductance extraction"
            )


def _segment_arrays(segments: list[Segment], indices: list[int]):
    """Column arrays (start, end, trans-a, trans-b, width, thickness)."""
    axis = segments[indices[0]].direction.axis
    trans_axes = [a for a in range(3) if a != axis]
    start = np.array([segments[i].axis_start for i in indices])
    end = np.array([segments[i].axis_end for i in indices])
    centers = np.array([segments[i].center for i in indices])
    ta = centers[:, trans_axes[0]]
    tb = centers[:, trans_axes[1]]
    width = np.array([segments[i].width for i in indices])
    thick = np.array([segments[i].thickness for i in indices])
    return start, end, ta, tb, width, thick


def _close_mask(
    dw: np.ndarray,
    dt: np.ndarray,
    gap_z: np.ndarray,
    w1: np.ndarray,
    t1: np.ndarray,
    w2: np.ndarray,
    t2: np.ndarray,
    close_ratio: float,
) -> np.ndarray:
    """Edge-to-edge close-pair classification.

    ``dw``/``dt`` are center-to-center transverse offsets along the
    width and thickness axes and ``gap_z`` the axial span-to-span gap
    (0 for overlapping spans).  The surface separation subtracts the
    two half-cross-sections per transverse axis (clipped at touching),
    so wide bars whose edges nearly touch classify as close even when
    their centers are many cross-sections apart.  Including the axial
    gap keeps the classification a true 3-D edge-to-edge distance:
    laterally adjacent pieces far apart along the axis -- where the
    single-filament Neumann integral is already accurate to
    O((cross-section / distance)^2) -- stay on the cheap path instead
    of paying the subdivided bar integral.
    """
    gap_w = np.maximum(np.abs(dw) - 0.5 * (w1 + w2), 0.0)
    gap_t = np.maximum(np.abs(dt) - 0.5 * (t1 + t2), 0.0)
    sep = np.hypot(np.hypot(gap_w, gap_t), gap_z)
    max_cross = np.maximum.reduce([w1, t1, w2, t2])
    return sep < close_ratio * max_cross


def mutual_for_pairs(
    start: np.ndarray,
    end: np.ndarray,
    ta: np.ndarray,
    tb: np.ndarray,
    width: np.ndarray,
    thick: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    close_ratio: float,
    close_subdivisions: int,
) -> np.ndarray:
    """Mutual inductances for explicit same-direction index pairs [H].

    The shared pair kernel of both assemblies: the dense path feeds it
    every upper-triangle pair, the hierarchical engine feeds it near
    blocks and ACA-sampled rows/columns.  Far pairs use the exact
    center-filament formula in one vectorized pass; close pairs (by
    edge-to-edge separation) are re-evaluated with the subdivided bar
    integral, batched over the close-pair index set.
    """
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    dw = ta[cols] - ta[rows]
    dt = tb[cols] - tb[rows]
    rho = np.hypot(dw, dt)
    mutual = np.atleast_1d(np.asarray(
        mutual_inductance_filaments(
            start[rows], end[rows], start[cols], end[cols], rho
        ),
        dtype=float,
    ))
    gap_z = np.maximum(
        np.maximum(start[rows], start[cols])
        - np.minimum(end[rows], end[cols]),
        0.0,
    )
    close = np.nonzero(_close_mask(
        dw, dt, gap_z, width[rows], thick[rows], width[cols], thick[cols],
        close_ratio,
    ))[0]
    for c0 in range(0, close.size, CLOSE_PAIR_CHUNK):
        k = close[c0:c0 + CLOSE_PAIR_CHUNK]
        a = rows[k]
        b = cols[k]
        mutual[k] = mutual_inductance_bars_batch(
            start[a], end[a], start[b], end[b],
            dw[k], dt[k],
            width[a], thick[a], width[b], thick[b],
            subdivisions=close_subdivisions,
        )
    return mutual


def extract_partial_inductance(
    segments: list[Segment],
    close_ratio: float = 4.0,
    close_subdivisions: int = 3,
    block: int = 512,
    assembly: str = "exact",
    eta: float | None = None,
    tol: float | None = None,
    leaf_size: int | None = None,
):
    """Compute the partial-inductance matrix (or operator) [H].

    Args:
        segments: In-plane segments (Z-direction segments are rejected;
            the PEEC model treats vias as resistive).
        close_ratio: Pairs whose edge-to-edge separation is below
            ``close_ratio * max cross-section dimension`` are
            re-evaluated with cross-section subdivision.
        close_subdivisions: Filaments per transverse axis for close pairs.
        block: Row-block size bounding peak memory of the vectorized pass.
        assembly: ``"exact"`` (dense, every mutual computed and stored)
            or ``"hierarchical"`` (cluster-tree near/far split with
            ACA-compressed far field; see
            :mod:`repro.extraction.hierarchical`).
        eta: Hierarchical admissibility parameter (``diam/dist < eta``);
            hierarchical assembly only.
        tol: Hierarchical ACA relative-error tolerance; hierarchical
            assembly only.
        leaf_size: Hierarchical cluster-tree leaf size; hierarchical
            assembly only.

    Returns:
        :class:`PartialInductanceResult` for exact assembly, or a
        :class:`repro.extraction.hierarchical.
        HierarchicalPartialInductanceResult` (duck-type compatible, with
        an ``operator`` attribute) for hierarchical assembly.
    """
    reject_vias(segments)
    if assembly == "hierarchical":
        from repro.extraction import hierarchical as hier

        kwargs = {}
        if eta is not None:
            kwargs["eta"] = eta
        if tol is not None:
            kwargs["tol"] = tol
        if leaf_size is not None:
            kwargs["leaf_size"] = leaf_size
        return hier.extract_hierarchical(
            segments, close_ratio=close_ratio,
            close_subdivisions=close_subdivisions, **kwargs,
        )
    if assembly != "exact":
        raise ValueError(
            f"unknown assembly {assembly!r}; expected 'exact' or "
            "'hierarchical'"
        )
    if eta is not None or tol is not None or leaf_size is not None:
        raise ValueError(
            "eta/tol/leaf_size only apply to assembly='hierarchical'"
        )

    # Content-addressed memoization: the matrix is a pure function of the
    # geometry and the close-pair parameters (``block`` only bounds peak
    # memory, so it stays out of the key).  Import lazily -- repro.perf
    # sits above the extraction layer in the package graph.
    from repro.perf import cache as perf_cache

    digest = perf_cache.fingerprint_segments(
        segments,
        {"close_ratio": float(close_ratio),
         "close_subdivisions": int(close_subdivisions)},
    )
    with span("extraction.partial_L", segments=len(segments)) as sp:
        cached = perf_cache.load_matrix(digest)
        if cached is not None:
            sp.attrs["cached"] = True
            return PartialInductanceResult(
                segments=list(segments), matrix=cached
            )
        sp.attrs["cached"] = False
        matrix = _assemble_matrix(
            segments, close_ratio, close_subdivisions, block
        )
        perf_cache.store_matrix(digest, matrix)
        return PartialInductanceResult(segments=list(segments), matrix=matrix)


def _assemble_matrix(
    segments: list[Segment],
    close_ratio: float,
    close_subdivisions: int,
    block: int,
) -> np.ndarray:
    """The vectorized dense assembly behind the cache lookup."""
    n = len(segments)
    matrix = np.zeros((n, n))
    for i, seg in enumerate(segments):
        matrix[i, i] = self_inductance_bar(seg.length, seg.width, seg.thickness)

    for direction_axis in (0, 1):
        indices = [
            i for i, s in enumerate(segments) if s.direction.axis == direction_axis
        ]
        if len(indices) < 2:
            continue
        start, end, ta, tb, width, thick = _segment_arrays(segments, indices)
        idx = np.array(indices)
        m = len(indices)
        for r0 in range(0, m, block):
            r1 = min(r0 + block, m)
            rows = slice(r0, r1)
            # Broadcast rows x all-columns; keep upper triangle only.
            col_idx = np.arange(m)[None, :]
            row_idx = np.arange(r0, r1)[:, None]
            upper = col_idx > row_idx
            pair_rows, pair_cols = np.nonzero(upper)
            if pair_rows.size == 0:
                continue
            pr = pair_rows + r0
            pc = pair_cols
            mutual = mutual_for_pairs(
                start, end, ta, tb, width, thick, pr, pc,
                close_ratio, close_subdivisions,
            )
            gi = idx[pr]
            gj = idx[pc]
            matrix[gi, gj] = mutual
            matrix[gj, gi] = mutual
    return matrix


def extract_for_layout(
    layout: Layout, **kwargs
) -> tuple[PartialInductanceResult, list[int]]:
    """Extract the partial-L matrix for a layout's in-plane segments.

    Accepts every :func:`extract_partial_inductance` keyword, including
    ``assembly="hierarchical"``.

    Returns:
        (result, segment_indices): ``segment_indices[k]`` is the index into
        ``layout.segments`` of matrix row ``k``.
    """
    indices = [
        i for i, s in enumerate(layout.segments) if s.direction != Direction.Z
    ]
    result = extract_partial_inductance(
        [layout.segments[i] for i in indices], **kwargs
    )
    return result, indices
