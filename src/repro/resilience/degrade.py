"""Graceful degradation: keep the run alive on a weaker model.

The paper's Section-4 warning is that aggressive sparsification can go
non-passive; PR 1 taught the sparsifiers to *detect* that and abort.
This module turns the abort into a controlled downgrade: a failing (or
non-passive) strategy falls back to block-diagonal sparsification --
passive by construction -- and finally to the dense reference, with
every downgrade recorded in the :class:`~repro.resilience.report.RunReport`
so nothing degrades silently.  The same pattern covers model-order
reduction in the flows: a failed PRIMA/combined reduction falls back to
simulating the unreduced circuit.
"""

from __future__ import annotations

from repro.extraction.partial_matrix import PartialInductanceResult
from repro.resilience import faults
from repro.resilience.report import RunReport, current_run_report
from repro.sparsify.base import (
    DenseInductance,
    InductanceBlocks,
    Sparsifier,
    traced_apply,
)
from repro.sparsify.block_diagonal import BlockDiagonalSparsifier
from repro.sparsify.stability import is_positive_definite


class DegradationError(RuntimeError):
    """Every rung of a degradation chain failed."""


def _passive(blocks: InductanceBlocks) -> bool:
    """All L-blocks positive definite (K blocks are checked upstream)."""
    if blocks.kind != "L":
        return True
    return all(is_positive_definite(matrix) for _, matrix in blocks.blocks)


def sparsify_with_fallback(
    extraction: PartialInductanceResult,
    sparsifier: Sparsifier | None,
    report: RunReport | None = None,
    focus_nets: tuple[str, ...] = (),
    check_passivity: bool = True,
) -> tuple[InductanceBlocks, Sparsifier]:
    """Apply ``sparsifier`` with automatic downgrade on failure.

    Chain: requested strategy -> block-diagonal -> dense.  A strategy is
    rejected when it raises, when fault injection sabotages it, or (with
    ``check_passivity``) when it hands back an indefinite -- i.e.
    non-passive -- block structure without raising.  Each rejection is
    recorded as a downgrade in ``report`` (or the active run report).

    Returns:
        ``(blocks, winner)`` -- the accepted block structure and the
        strategy instance that produced it.

    Raises:
        DegradationError: Even the dense reference failed (this means the
            extraction itself is broken).
    """
    report = report if report is not None else current_run_report()
    requested = sparsifier or DenseInductance()
    chain: list[Sparsifier] = [requested]
    if not isinstance(requested, (BlockDiagonalSparsifier, DenseInductance)):
        chain.append(BlockDiagonalSparsifier(focus_nets=focus_nets))
    if not isinstance(chain[-1], DenseInductance):
        chain.append(DenseInductance())

    last_error: Exception | None = None
    for strategy in chain:
        reason = None
        try:
            faults.maybe_fail(f"sparsify.{strategy.name}")
            blocks = traced_apply(strategy, extraction)
            if (
                check_passivity
                and not isinstance(strategy, DenseInductance)
                and not _passive(blocks)
            ):
                reason = "result is not positive definite (non-passive)"
        except RuntimeError as exc:  # includes InjectedFault
            reason = str(exc)
            last_error = exc
        if reason is None:
            return blocks, strategy
        if report is not None:
            next_name = "(none)"
            idx = chain.index(strategy)
            if idx + 1 < len(chain):
                next_name = chain[idx + 1].name
            report.record_downgrade("sparsify", strategy.name, next_name, reason)
    raise DegradationError(
        f"all sparsification fallbacks failed (last: {last_error})"
    ) from last_error


__all__ = ["DegradationError", "sparsify_with_fallback"]
