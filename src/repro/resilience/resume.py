"""Rebuild and finish a checkpointed run from nothing but its ``.ckpt``.

The engines checkpoint themselves (see
:mod:`repro.resilience.checkpoint`); when the circuit was expressible in
the SPICE subset, the snapshot also embeds the deck text.  This module
is the other half: given only the checkpoint file, it re-parses the
embedded deck, maps the saved state onto the re-parsed circuit's
unknowns, and hands the run back to the engine to finish -- which is
what the ``repro resume`` CLI command does.

The only subtlety is naming.  The SPICE writer prefixes every element
with its type letter and flattens ``InductorSet`` branches (``Vin`` ->
``VVin``, ``Lf[3]`` -> ``LLf_3``), so state vectors cannot be matched by
exact name.  :func:`_remap_state` matches *normalized* names (lowercase,
non-alphanumerics collapsed to ``_``), also trying each re-parsed name
with its designator letter stripped; any ambiguity or miss raises
:class:`~repro.resilience.checkpoint.CheckpointMismatch` instead of
silently resuming with scrambled state.

This module intentionally lives outside ``repro.resilience``'s package
exports: it imports the circuit engines, which themselves import the
resilience package.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

import numpy as np

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointError,
    CheckpointMismatch,
    load_checkpoint,
    save_checkpoint,
)


def _normalize(name: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")


def _rebuild_circuit(snap: Checkpoint, path):
    from repro.io.parser import read_spice

    deck = snap.meta.get("deck")
    if not deck:
        raise CheckpointError(
            f"{path}: checkpoint has no embedded SPICE deck (the circuit "
            "was not expressible in the SPICE subset); resume it "
            "programmatically by re-running with the same "
            "CheckpointConfig instead"
        )
    return read_spice(io.StringIO(deck)).circuit


def _remap_state(snap: Checkpoint, system, path) -> tuple[np.ndarray, dict[str, str]]:
    """Saved state vector reordered for the re-parsed system.

    Returns ``(x, name_map)`` where ``name_map`` translates every saved
    unknown name to the re-parsed circuit's name for it.
    """
    old_names = list(snap.meta["unknowns"])
    num_nodes = int(snap.meta["num_nodes"])
    x_old = np.asarray(snap.arrays["x"], dtype=float)
    if system.size != len(old_names) or system.size != x_old.shape[0]:
        raise CheckpointMismatch(
            f"{path}: re-parsed circuit has {system.size} unknowns, "
            f"checkpoint saved {len(old_names)}"
        )

    # Candidate keys for each re-parsed name: as-is, and with the SPICE
    # designator letter stripped (VVin -> Vin, LLf_3 -> Lf_3).
    ambiguous = object()

    def index_names(pairs):
        table: dict[str, object] = {}
        for name, idx in pairs:
            keys = {_normalize(name)}
            if len(name) > 1:
                keys.add(_normalize(name[1:]))
            for key in keys:
                if key in table and table[key] != idx:
                    table[key] = ambiguous
                else:
                    table[key] = idx
        return table

    node_table = index_names(
        (n, system.node_index(n))
        for n in system.circuit.node_names
        if system.node_index(n) >= 0
    )
    branch_table = index_names(system._branch_index.items())
    new_name_at = {}
    for n in system.circuit.node_names:
        if system.node_index(n) >= 0:
            new_name_at[system.node_index(n)] = n
    for name, idx in system._branch_index.items():
        new_name_at[idx] = name

    x_new = np.zeros(system.size)
    name_map: dict[str, str] = {}
    taken: set[int] = set()
    for old_idx, old_name in enumerate(old_names):
        table = node_table if old_idx < num_nodes else branch_table
        new_idx = table.get(_normalize(old_name))
        if new_idx is None or new_idx is ambiguous or new_idx in taken:
            raise CheckpointMismatch(
                f"{path}: cannot match saved unknown {old_name!r} to the "
                "re-parsed circuit (missing or ambiguous after name "
                "normalization)"
            )
        taken.add(new_idx)
        x_new[new_idx] = x_old[old_idx]
        name_map[old_name] = new_name_at[new_idx]
    return x_new, name_map


def describe(path) -> str:
    """One-paragraph human summary of what a checkpoint contains."""
    path = Path(path)
    snap = load_checkpoint(path)
    fp = snap.meta.get("fingerprint", {})
    lines = [f"{path}: {snap.kind} checkpoint ({snap.meta.get('reason', '?')})"]
    if snap.kind == "transient":
        step = snap.meta.get("step", "?")
        lines.append(
            f"  completed step {step}/{fp.get('num_steps', '?')} "
            f"(dt = {fp.get('dt', '?')}, t_stop = {fp.get('t_stop', '?')}, "
            f"method = {fp.get('method', '?')})"
        )
        lines.append(f"  state size {fp.get('size', '?')}, "
                     f"{len(fp.get('columns', []))} recorded columns")
    elif snap.kind == "loop-sweep":
        done = np.asarray(snap.arrays.get("done", []), dtype=bool)
        lines.append(
            f"  {int(done.sum())}/{len(done)} frequencies solved "
            f"({fp.get('f_min', '?')} .. {fp.get('f_max', '?')} Hz)"
        )
    lines.append(
        "  resumable from CLI: "
        + ("yes (embedded deck)" if snap.meta.get("deck") else "no")
    )
    return "\n".join(lines)


def resume_transient(path, keep: bool = False):
    """Finish a checkpointed transient from its ``.ckpt`` file alone.

    Rebuilds the circuit from the embedded deck, remaps the saved state
    and recorded columns onto the re-parsed names, rewrites the
    checkpoint in those names, and lets
    :func:`~repro.circuit.transient.transient_analysis` resume it.

    Returns:
        The completed :class:`~repro.circuit.transient.TransientResult`
        (columns carry the re-parsed, SPICE-prefixed names).
    """
    from repro.circuit.mna import MNASystem
    from repro.circuit.transient import transient_analysis

    path = Path(path)
    snap = load_checkpoint(path)
    if snap.kind != "transient":
        raise CheckpointMismatch(
            f"{path}: expected a transient checkpoint, found {snap.kind!r}"
        )
    circuit = _rebuild_circuit(snap, path)
    system = MNASystem(circuit)
    x, name_map = _remap_state(snap, system, path)

    args = snap.meta["args"]
    fingerprint = dict(snap.meta["fingerprint"])
    columns = [name_map[c] for c in fingerprint["columns"]]
    fingerprint["columns"] = columns
    meta = dict(snap.meta)
    meta["fingerprint"] = fingerprint
    meta["unknowns"] = [
        name_map[n] for n in snap.meta["unknowns"]
    ]
    save_checkpoint(
        path, "transient", meta, {"x": x, "data": snap.arrays["data"]}
    )
    return transient_analysis(
        system,
        t_stop=float(args["t_stop"]),
        dt=float(args["dt"]),
        method=args["method"],
        x0="zero",  # ignored: the state comes from the checkpoint
        record=columns,
        newton_tol=float(args["newton_tol"]),
        max_newton=int(args["max_newton"]),
        checkpoint=CheckpointConfig(path=path, resume=True, keep=keep),
    )


def resume_loop(path, keep: bool = False):
    """Finish a checkpointed loop-extraction frequency sweep.

    Returns:
        ``(frequencies, impedance)`` arrays of the completed sweep.
    """
    from repro.loop.extractor import _sweep_impedance
    from repro.resilience.policy import default_policy
    from repro.resilience.report import RunReport

    path = Path(path)
    snap = load_checkpoint(path)
    if snap.kind != "loop-sweep":
        raise CheckpointMismatch(
            f"{path}: expected a loop-sweep checkpoint, found {snap.kind!r}"
        )
    circuit = _rebuild_circuit(snap, path)
    args = snap.meta["args"]
    freqs = np.asarray(snap.arrays["frequencies"], dtype=float)
    report = RunReport()
    z = _sweep_impedance(
        circuit,
        freqs,
        tuple(args["port"]),
        float(args["gmin"]),
        default_policy(),
        CheckpointConfig(path=path, resume=True, keep=keep),
        report,
    )
    return freqs, z


__all__ = ["describe", "resume_transient", "resume_loop"]
