"""On-disk checkpoints for long solves: crash, resume, continue.

A checkpoint is a single ``.ckpt`` file (numpy ``.npz`` container) with a
JSON metadata record plus the numeric state needed to pick a run back up:
for a transient, the last completed step and full state vector plus the
recorded rows so far; for a loop-extraction frequency sweep, the
per-frequency completion mask and partial impedances.  When the circuit
is expressible in the SPICE subset, its deck text is embedded too, which
is what lets ``repro resume <file>.ckpt`` rebuild and finish a run from
nothing but the checkpoint.

Writes are atomic (temp file + :func:`os.replace`), so a crash mid-write
leaves the previous snapshot intact.  Compatibility between a checkpoint
and the run trying to resume it is enforced with a fingerprint of the
run's defining parameters; a mismatch raises :class:`CheckpointMismatch`
rather than silently continuing the wrong simulation.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

#: Format version stamped into every checkpoint.
CKPT_VERSION = 1


class CheckpointError(RuntimeError):
    """The checkpoint file is unreadable or structurally invalid."""


class CheckpointMismatch(CheckpointError):
    """The checkpoint belongs to a different run configuration."""


@dataclass
class CheckpointConfig:
    """How an engine should checkpoint itself.

    Attributes:
        path: Checkpoint file location (conventionally ``*.ckpt``).
        interval: Completed steps (or sweep points) between snapshots.
        resume: Pick up from ``path`` when it exists and matches this
            run's fingerprint.  A mismatched checkpoint raises.
        keep: Keep the file after the run completes (default: a finished
            run deletes its checkpoint).
    """

    path: str | Path
    interval: int = 25
    resume: bool = True
    keep: bool = False

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("interval must be >= 1")
        self.path = Path(self.path)


@dataclass
class Checkpoint:
    """One loaded snapshot: ``kind`` + JSON ``meta`` + numeric ``arrays``."""

    kind: str
    meta: dict[str, Any]
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


def save_checkpoint(
    path: str | Path,
    kind: str,
    meta: dict[str, Any],
    arrays: dict[str, np.ndarray],
) -> None:
    """Atomically write a snapshot to ``path``."""
    path = Path(path)
    record = {"version": CKPT_VERSION, "kind": kind, "meta": meta}
    header = np.frombuffer(
        json.dumps(record).encode("utf-8"), dtype=np.uint8
    )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        np.savez(f, __checkpoint__=header, **arrays)
    os.replace(tmp, path)


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read a snapshot written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            if "__checkpoint__" not in data:
                raise CheckpointError(
                    f"{path}: not a repro checkpoint (missing header)"
                )
            record = json.loads(bytes(data["__checkpoint__"]).decode("utf-8"))
            arrays = {
                key: data[key] for key in data.files if key != "__checkpoint__"
            }
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: cannot read checkpoint: {exc}") from exc
    version = record.get("version")
    if version != CKPT_VERSION:
        raise CheckpointMismatch(
            f"{path}: checkpoint version {version} != supported {CKPT_VERSION}"
        )
    return Checkpoint(
        kind=record.get("kind", ""), meta=record.get("meta", {}), arrays=arrays
    )


def verify_fingerprint(
    checkpoint: Checkpoint, kind: str, fingerprint: dict[str, Any], path
) -> None:
    """Raise :class:`CheckpointMismatch` unless the snapshot fits this run."""
    if checkpoint.kind != kind:
        raise CheckpointMismatch(
            f"{path}: checkpoint kind {checkpoint.kind!r} != expected {kind!r}"
        )
    stored = checkpoint.meta.get("fingerprint", {})
    if stored != fingerprint:
        diffs = sorted(
            key for key in set(stored) | set(fingerprint)
            if stored.get(key) != fingerprint.get(key)
        )
        raise CheckpointMismatch(
            f"{path}: checkpoint was written by a different run "
            f"(mismatched: {', '.join(diffs) or 'structure'})"
        )


def finish_checkpoint(config: CheckpointConfig | None) -> None:
    """Remove the checkpoint after a successful run (unless ``keep``)."""
    if config is None or config.keep:
        return
    try:
        Path(config.path).unlink()
    except FileNotFoundError:
        pass


__all__ = [
    "CKPT_VERSION",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointConfig",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "verify_fingerprint",
    "finish_checkpoint",
]
