"""Retry, step-control, and escalation policies.

One frozen dataclass carries every knob the fault-tolerance layer
consults, so engines take a single ``policy=`` argument and tests can
construct exact configurations.  The default is read once from the
``REPRO_RESILIENCE`` environment variable:

* ``off``  -- single-rung solves, no retries: fail fast (pre-resilience
  behavior, useful to expose latent numerical problems).
* ``safe`` -- the default.  Escalation rungs that are *answer-preserving*
  (plain LU, then equilibrated LU) plus bounded retries and step
  halving.  A genuinely singular system still raises.
* ``full`` -- additionally enables the rescue rungs (gmin-shifted solve
  with iterative refinement, then Tikhonov-regularized least squares)
  and DC source stepping.  Rescue solutions are only accepted when their
  residual against the original system passes ``residual_tol`` /
  ``lstsq_tol``, so an inconsistent singular system still raises; see
  DESIGN.md for why least squares is a last resort.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Escalation rungs per mode, in the order they are tried.
_RUNGS = {
    "off": ("lu",),
    "safe": ("lu", "equilibrated"),
    "full": ("lu", "equilibrated", "gmin", "lstsq"),
}


@dataclass(frozen=True)
class ResiliencePolicy:
    """Every knob of the runtime fault-tolerance layer.

    Attributes:
        escalation: ``"off"`` / ``"safe"`` / ``"full"`` -- which solver
            escalation rungs are available (see module docstring).
        max_retries: Plain same-operation retries after an injected or
            transient fault (per time step / per sweep frequency).
        max_step_halvings: How many times a failing transient step may be
            halved (the step is integrated as ``2^k`` backward-Euler
            substeps) before the failure propagates.
        source_steps: DC source-stepping ramp fractions tried when gmin
            stepping alone fails to converge (``full`` escalation only).
        gmin_shifts: Relative diagonal shifts tried by the ``gmin``
            escalation rung (scaled by the matrix diagonal magnitude).
        refine_iters: Iterative-refinement sweeps the ``gmin`` rung runs
            against the *original* matrix before accepting.
        residual_tol: Max relative residual for accepting a ``gmin``-rung
            solution.
        lstsq_tol: Max relative residual for accepting a least-squares
            last-resort solution.
        krylov_tol: GMRES inner relative-residual target for the
            matrix-free ``krylov`` rung (operator-backed systems only).
            A stopping heuristic, not the acceptance criterion: quality
            is judged by ``krylov_residual_tol`` afterwards.
        krylov_restart: GMRES restart length (Krylov subspace dimension
            per cycle).
        krylov_maxiter: GMRES restart cycles before the rung declares
            stagnation and falls back to the dense direct path.
        krylov_residual_tol: Max normwise *backward error*
            ``max|Ax-b| / (max|A| max|x| + max|b|)``, checked with a true
            operator matvec independent of GMRES's preconditioned
            estimate, for accepting a Krylov solution.  Backward-stable
            direct solves land at machine level on this measure, so the
            default leaves orders of magnitude of margin while still
            rejecting genuine stagnation.
    """

    escalation: str = "safe"
    max_retries: int = 2
    max_step_halvings: int = 4
    source_steps: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    gmin_shifts: tuple[float, ...] = (1e-10, 1e-7)
    refine_iters: int = 3
    residual_tol: float = 1e-8
    lstsq_tol: float = 1e-6
    krylov_tol: float = 1e-9
    krylov_restart: int = 150
    krylov_maxiter: int = 12
    krylov_residual_tol: float = 1e-8

    def __post_init__(self) -> None:
        if self.escalation not in _RUNGS:
            raise ValueError(
                f"escalation must be one of {sorted(_RUNGS)}, "
                f"got {self.escalation!r}"
            )
        if self.max_retries < 0 or self.max_step_halvings < 0:
            raise ValueError("retry/halving counts must be >= 0")

    @property
    def rungs(self) -> tuple[str, ...]:
        """Escalation rung names enabled by this policy, in order."""
        return _RUNGS[self.escalation]

    @property
    def source_stepping_enabled(self) -> bool:
        return self.escalation == "full" and bool(self.source_steps)

    @classmethod
    def from_env(cls, env: str | None = None) -> "ResiliencePolicy":
        """Policy selected by ``REPRO_RESILIENCE`` (or an explicit string)."""
        value = env if env is not None else os.environ.get("REPRO_RESILIENCE", "")
        value = value.strip().lower()
        if not value:
            return cls()
        if value not in _RUNGS:
            raise ValueError(
                f"REPRO_RESILIENCE must be one of {sorted(_RUNGS)}, "
                f"got {value!r}"
            )
        return cls(escalation=value)


#: Process-wide default, fixed at import from ``REPRO_RESILIENCE``.
DEFAULT_POLICY = ResiliencePolicy.from_env()


def default_policy() -> ResiliencePolicy:
    """The process default policy (``REPRO_RESILIENCE`` at import time)."""
    return DEFAULT_POLICY


__all__ = ["ResiliencePolicy", "DEFAULT_POLICY", "default_policy"]
