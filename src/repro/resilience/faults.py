"""Deterministic fault injection into named solve sites.

The escalation chain, retry policies, and checkpoint/resume paths only
earn their keep if they demonstrably fire.  This module gives the test
suite (and CI) a seeded, reproducible way to make them fire: solver
internals call the three hooks below at *named sites*, and an installed
:class:`FaultInjector` decides -- deterministically, from its seed and
call order -- whether to sabotage that call.

Fault kinds:

* ``"raise"``    -- raise :class:`InjectedFault` at the site (a transient
  exception: retrying the operation succeeds).
* ``"nan"``      -- poison the solution vector with NaN (exercises the
  non-finite detection and escalation path).
* ``"singular"`` -- replace the matrix handed to that site with a
  singular copy (first row zeroed), so that *this rung's* factorization
  fails while later rungs still see clean data.

Sites are dotted names (``"transient.lu"``, ``"dc.newton.equilibrated"``,
``"loop.freq"``); specs match them with :mod:`fnmatch` patterns, so
``"*.lu"`` targets the first escalation rung everywhere.

Activation is either programmatic::

    with inject_faults(FaultSpec("transient.lu", "singular")):
        transient_analysis(...)

or process-wide chaos via the environment: ``REPRO_FAULTS=chaos-1234``
installs a low-probability injector over the recoverable sites, which CI
uses to run the whole suite with every fallback path genuinely
exercised.  ``with inject_faults():`` (no specs) suppresses any ambient
injector for precision-sensitive blocks.
"""

from __future__ import annotations

import fnmatch
import os
import threading
from dataclasses import dataclass
from contextlib import contextmanager
from typing import Iterator

import numpy as np


class InjectedFault(RuntimeError):
    """A deliberately injected, transient solver fault."""

    def __init__(self, site: str, detail: str = "injected fault") -> None:
        self.site = site
        super().__init__(f"{detail} at solve site {site!r}")


@dataclass
class FaultSpec:
    """One injection rule.

    Attributes:
        site: :mod:`fnmatch` pattern over dotted site names.
        kind: ``"raise"`` / ``"nan"`` / ``"singular"``.
        probability: Chance of firing per eligible call (1.0 = always).
        max_hits: Stop firing after this many injections (None = never).
        after: Skip this many eligible calls before becoming active --
            lets a test crash a run mid-flight rather than at step 0.
    """

    site: str
    kind: str
    probability: float = 1.0
    max_hits: int | None = 1
    after: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "nan", "singular"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")


class FaultInjector:
    """Seeded decision-maker over a set of :class:`FaultSpec` rules."""

    def __init__(self, specs: tuple[FaultSpec, ...] = (), seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._calls = [0] * len(self.specs)
        self._hits = [0] * len(self.specs)
        self.injections: list[tuple[str, str]] = []  # (site, kind) log

    def fires(self, site: str, kinds: tuple[str, ...]) -> FaultSpec | None:
        """The first spec that decides to sabotage this call, if any."""
        for k, spec in enumerate(self.specs):
            if spec.kind not in kinds:
                continue
            if not fnmatch.fnmatchcase(site, spec.site):
                continue
            self._calls[k] += 1
            if self._calls[k] <= spec.after:
                continue
            if spec.max_hits is not None and self._hits[k] >= spec.max_hits:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            self._hits[k] += 1
            self.injections.append((site, spec.kind))
            return spec
        return None


#: Chaos-mode rules: low-probability faults at sites the resilience layer
#: provably recovers from bit-compatibly (first-rung escalation recomputes
#: the same answer; step retries redo identical work).
def chaos_specs() -> tuple[FaultSpec, ...]:
    return (
        FaultSpec("*.lu", "raise", probability=0.02, max_hits=None),
        FaultSpec("*.lu", "nan", probability=0.01, max_hits=None),
        FaultSpec("transient.step", "raise", probability=0.003, max_hits=None),
        FaultSpec("adaptive.step", "raise", probability=0.003, max_hits=None),
        FaultSpec("loop.freq", "raise", probability=0.02, max_hits=None),
        FaultSpec("perf.pool", "raise", probability=0.05, max_hits=None),
    )


def injector_from_env(value: str | None = None) -> FaultInjector | None:
    """Build the ambient injector described by ``REPRO_FAULTS``.

    Grammar: empty / ``off`` -> None; ``chaos`` -> chaos rules with seed
    0; ``chaos-<seed>`` -> chaos rules with that seed.
    """
    raw = value if value is not None else os.environ.get("REPRO_FAULTS", "")
    raw = raw.strip().lower()
    if not raw or raw == "off":
        return None
    if raw == "chaos":
        return FaultInjector(chaos_specs(), seed=0)
    if raw.startswith("chaos-"):
        try:
            seed = int(raw[len("chaos-"):])
        except ValueError:
            raise ValueError(
                f"REPRO_FAULTS seed must be an integer, got {raw!r}"
            ) from None
        return FaultInjector(chaos_specs(), seed=seed)
    raise ValueError(
        f"REPRO_FAULTS must be 'off', 'chaos', or 'chaos-<seed>', got {raw!r}"
    )


_ENV_INJECTOR = injector_from_env()
_LOCAL = threading.local()


def active_injector() -> FaultInjector | None:
    """The injector governing this thread (innermost context, else env)."""
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        return stack[-1]
    return _ENV_INJECTOR


@contextmanager
def inject_faults(
    *specs: FaultSpec, seed: int = 0
) -> Iterator[FaultInjector]:
    """Install a fault injector for the block (no specs = suppress all)."""
    injector = FaultInjector(tuple(specs), seed=seed)
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    stack.append(injector)
    try:
        yield injector
    finally:
        stack.pop()


# -- hooks called from solver internals -------------------------------------


def maybe_fail(site: str) -> None:
    """Raise :class:`InjectedFault` if a ``"raise"`` rule fires here."""
    injector = active_injector()
    if injector is not None and injector.fires(site, ("raise",)):
        raise InjectedFault(site)


def corrupt_matrix(site: str, matrix):
    """Return ``matrix``, or a singular copy if a ``"singular"`` rule fires."""
    injector = active_injector()
    if injector is None or injector.fires(site, ("singular",)) is None:
        return matrix
    import scipy.sparse as sp

    if sp.issparse(matrix):
        bad = matrix.tolil(copy=True)
        bad[0, :] = 0.0
        return bad.tocsc()
    bad = np.array(matrix, copy=True)
    bad[0, :] = 0.0
    return bad


def corrupt_solution(site: str, x: np.ndarray) -> np.ndarray:
    """Return ``x``, or a NaN-poisoned copy if a ``"nan"`` rule fires."""
    injector = active_injector()
    if injector is None or injector.fires(site, ("nan",)) is None:
        return x
    bad = np.array(x, copy=True)
    bad[0] = np.nan
    return bad


__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultInjector",
    "chaos_specs",
    "injector_from_env",
    "active_injector",
    "inject_faults",
    "maybe_fail",
    "corrupt_matrix",
    "corrupt_solution",
]
