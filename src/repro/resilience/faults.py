"""Deterministic fault injection into named solve sites.

The escalation chain, retry policies, and checkpoint/resume paths only
earn their keep if they demonstrably fire.  This module gives the test
suite (and CI) a seeded, reproducible way to make them fire: solver
internals call the three hooks below at *named sites*, and an installed
:class:`FaultInjector` decides -- deterministically, from its seed and
call order -- whether to sabotage that call.

Fault kinds:

* ``"raise"``    -- raise :class:`InjectedFault` at the site (a transient
  exception: retrying the operation succeeds).
* ``"nan"``      -- poison the solution vector with NaN (exercises the
  non-finite detection and escalation path).
* ``"singular"`` -- replace the matrix handed to that site with a
  singular copy (first row zeroed), so that *this rung's* factorization
  fails while later rungs still see clean data.
* ``"hang"``     -- sleep for ``REPRO_HANG_SECONDS`` (default 30) at the
  site, then continue normally: without supervision the call is merely
  late, under a supervisor deadline it is a hung worker.
* ``"crash"``    -- ``os._exit`` the process at the site (a killed pool
  worker; breaks the whole pool, exercising reissue-to-restarted-pool).
* ``"bigalloc"`` -- attempt a ``REPRO_BIGALLOC_MB`` (default 1024)
  allocation and raise :class:`MemoryError` at the site; under a
  ``REPRO_WORKER_RLIMIT_MB`` ceiling the allocation itself fails, and
  without one the error is raised deterministically after the probe so
  the supervised ``MemoryError`` path fires either way.

Sites are dotted names (``"transient.lu"``, ``"dc.newton.equilibrated"``,
``"loop.freq"``); specs match them with :mod:`fnmatch` patterns, so
``"*.lu"`` targets the first escalation rung everywhere.

Activation is either programmatic::

    with inject_faults(FaultSpec("transient.lu", "singular")):
        transient_analysis(...)

or process-wide chaos via the environment: ``REPRO_FAULTS=chaos-1234``
installs a low-probability injector over the recoverable sites, which CI
uses to run the whole suite with every fallback path genuinely
exercised.  Deterministic rule lists are also accepted --
``REPRO_FAULTS='*.worker=hang@0.5,loop.freq=raise'`` -- which is how the
CI chaos-hang job makes specific supervision paths fire on demand.
``with inject_faults():`` (no specs) suppresses any ambient injector for
precision-sensitive blocks.
"""

from __future__ import annotations

import fnmatch
import os
import threading
import time
from dataclasses import dataclass
from contextlib import contextmanager
from typing import Iterator

import numpy as np


class InjectedFault(RuntimeError):
    """A deliberately injected, transient solver fault."""

    def __init__(self, site: str, detail: str = "injected fault") -> None:
        self.site = site
        super().__init__(f"{detail} at solve site {site!r}")


@dataclass
class FaultSpec:
    """One injection rule.

    Attributes:
        site: :mod:`fnmatch` pattern over dotted site names.
        kind: ``"raise"`` / ``"nan"`` / ``"singular"``.
        probability: Chance of firing per eligible call (1.0 = always).
        max_hits: Stop firing after this many injections (None = never).
        after: Skip this many eligible calls before becoming active --
            lets a test crash a run mid-flight rather than at step 0.
    """

    site: str
    kind: str
    probability: float = 1.0
    max_hits: int | None = 1
    after: int = 0

    KINDS = ("raise", "nan", "singular", "hang", "crash", "bigalloc")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")


class FaultInjector:
    """Seeded decision-maker over a set of :class:`FaultSpec` rules."""

    def __init__(self, specs: tuple[FaultSpec, ...] = (), seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._calls = [0] * len(self.specs)
        self._hits = [0] * len(self.specs)
        self.injections: list[tuple[str, str]] = []  # (site, kind) log

    def fires(self, site: str, kinds: tuple[str, ...]) -> FaultSpec | None:
        """The first spec that decides to sabotage this call, if any."""
        for k, spec in enumerate(self.specs):
            if spec.kind not in kinds:
                continue
            if not fnmatch.fnmatchcase(site, spec.site):
                continue
            self._calls[k] += 1
            if self._calls[k] <= spec.after:
                continue
            if spec.max_hits is not None and self._hits[k] >= spec.max_hits:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            self._hits[k] += 1
            self.injections.append((site, spec.kind))
            return spec
        return None


#: Chaos-mode rules: low-probability faults at sites the resilience layer
#: provably recovers from bit-compatibly (first-rung escalation recomputes
#: the same answer; step retries redo identical work).
def chaos_specs() -> tuple[FaultSpec, ...]:
    return (
        FaultSpec("*.lu", "raise", probability=0.02, max_hits=None),
        FaultSpec("*.lu", "nan", probability=0.01, max_hits=None),
        FaultSpec("transient.step", "raise", probability=0.003, max_hits=None),
        FaultSpec("adaptive.step", "raise", probability=0.003, max_hits=None),
        FaultSpec("loop.freq", "raise", probability=0.02, max_hits=None),
        FaultSpec("perf.pool", "raise", probability=0.05, max_hits=None),
        # Worker-process faults, recovered by the execution supervisor
        # (reissue after deadline kill / pool restart / MemoryError
        # strike).  Kept rare: each hit costs a deadline or a pool
        # generation, not just a retry.
        FaultSpec("*.worker", "hang", probability=0.003, max_hits=None),
        FaultSpec("*.worker", "crash", probability=0.003, max_hits=None),
        FaultSpec("*.worker", "bigalloc", probability=0.003, max_hits=None),
    )


def _parse_rule(item: str) -> FaultSpec:
    """One ``site=kind[@prob]`` clause of a deterministic rule list."""
    site, _, rest = item.partition("=")
    site = site.strip()
    kind, _, prob = rest.partition("@")
    kind = kind.strip()
    if not site or not kind:
        raise ValueError(
            f"REPRO_FAULTS rule must look like 'site=kind[@prob]', got {item!r}"
        )
    probability = 1.0
    if prob:
        try:
            probability = float(prob)
        except ValueError:
            raise ValueError(
                f"REPRO_FAULTS probability must be a number, got {item!r}"
            ) from None
    try:
        return FaultSpec(site, kind, probability=probability, max_hits=None)
    except ValueError as exc:
        raise ValueError(f"bad REPRO_FAULTS rule {item!r}: {exc}") from None


def injector_from_env(value: str | None = None) -> FaultInjector | None:
    """Build the ambient injector described by ``REPRO_FAULTS``.

    Grammar: empty / ``off`` -> None; ``chaos`` -> chaos rules with seed
    0; ``chaos-<seed>`` -> chaos rules with that seed; otherwise a
    comma-separated deterministic rule list, each clause
    ``site=kind[@prob]`` (probability defaults to 1.0, unlimited hits),
    e.g. ``'*.worker=hang@0.5,loop.freq=raise'``.
    """
    raw = value if value is not None else os.environ.get("REPRO_FAULTS", "")
    raw = raw.strip().lower()
    if not raw or raw == "off":
        return None
    if raw == "chaos":
        return FaultInjector(chaos_specs(), seed=0)
    if raw.startswith("chaos-"):
        try:
            seed = int(raw[len("chaos-"):])
        except ValueError:
            raise ValueError(
                f"REPRO_FAULTS seed must be an integer, got {raw!r}"
            ) from None
        return FaultInjector(chaos_specs(), seed=seed)
    if "=" in raw:
        specs = tuple(
            _parse_rule(item) for item in raw.split(",") if item.strip()
        )
        return FaultInjector(specs, seed=0)
    raise ValueError(
        "REPRO_FAULTS must be 'off', 'chaos', 'chaos-<seed>', or a "
        f"'site=kind[@prob]' rule list, got {raw!r}"
    )


_ENV_INJECTOR = injector_from_env()
_LOCAL = threading.local()


def active_injector() -> FaultInjector | None:
    """The injector governing this thread (innermost context, else env)."""
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        return stack[-1]
    return _ENV_INJECTOR


@contextmanager
def inject_faults(
    *specs: FaultSpec, seed: int = 0
) -> Iterator[FaultInjector]:
    """Install a fault injector for the block (no specs = suppress all)."""
    injector = FaultInjector(tuple(specs), seed=seed)
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    stack.append(injector)
    try:
        yield injector
    finally:
        stack.pop()


# -- hooks called from solver internals -------------------------------------

#: Bound on injected hangs [s]; even unsupervised code paths are merely
#: late, never stalled forever.  CI sets this low so chaos stays fast.
HANG_ENV = "REPRO_HANG_SECONDS"
DEFAULT_HANG_SECONDS = 30.0

#: Size of the ``bigalloc`` probe allocation [MiB].
BIGALLOC_ENV = "REPRO_BIGALLOC_MB"
DEFAULT_BIGALLOC_MB = 1024


def _env_number(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {raw!r}")
    return value


def maybe_disrupt(site: str) -> None:
    """Fire any worker-process fault (hang / crash / bigalloc) due here.

    Called from inside pool-worker chunk bodies only -- serial paths do
    not pass through it, so a circuit-breaker fallback can always finish
    the sweep even when every worker is sabotaged.
    """
    injector = active_injector()
    if injector is None:
        return
    spec = injector.fires(site, ("hang", "crash", "bigalloc"))
    if spec is None:
        return
    if spec.kind == "hang":
        time.sleep(_env_number(HANG_ENV, DEFAULT_HANG_SECONDS))
    elif spec.kind == "crash":
        os._exit(13)
    else:  # bigalloc
        mb = int(_env_number(BIGALLOC_ENV, DEFAULT_BIGALLOC_MB))
        # MiB -> float64 element count; under an rlimit ceiling the
        # allocation itself raises, otherwise we raise after the probe.
        probe = np.ones(mb << 17)
        del probe
        raise MemoryError(f"injected bigalloc of {mb} MiB at site {site!r}")


def maybe_fail(site: str) -> None:
    """Raise :class:`InjectedFault` if a ``"raise"`` rule fires here."""
    injector = active_injector()
    if injector is not None and injector.fires(site, ("raise",)):
        raise InjectedFault(site)


def corrupt_matrix(site: str, matrix):
    """Return ``matrix``, or a singular copy if a ``"singular"`` rule fires."""
    injector = active_injector()
    if injector is None or injector.fires(site, ("singular",)) is None:
        return matrix
    import scipy.sparse as sp

    if sp.issparse(matrix):
        bad = matrix.tolil(copy=True)
        bad[0, :] = 0.0
        return bad.tocsc()
    bad = np.array(matrix, copy=True)
    bad[0, :] = 0.0
    return bad


def corrupt_solution(site: str, x: np.ndarray) -> np.ndarray:
    """Return ``x``, or a NaN-poisoned copy if a ``"nan"`` rule fires."""
    injector = active_injector()
    if injector is None or injector.fires(site, ("nan",)) is None:
        return x
    bad = np.array(x, copy=True)
    bad[0] = np.nan
    return bad


__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultInjector",
    "chaos_specs",
    "injector_from_env",
    "active_injector",
    "inject_faults",
    "maybe_disrupt",
    "maybe_fail",
    "corrupt_matrix",
    "corrupt_solution",
]
