"""Supervised process-pool execution: deadlines, watchdog, quarantine.

The plain pool paths in :mod:`repro.perf.parallel` and
:mod:`repro.scenarios.scheduler` share three failure modes that a
long-running service cannot tolerate:

* a **hung worker** (pathological input, runaway solve, injected
  ``hang`` fault) stalls its chunk -- and therefore the sweep -- forever;
* a **killed worker** (OOM killer, segfault, injected ``crash`` fault)
  breaks the whole pool, and the old answer was to degrade the *entire*
  remaining sweep to serial on the first death;
* a **poison input** that reliably hangs or kills whatever worker
  touches it turns both of the above into an unbounded loop.

This module wraps pool execution in a :class:`Supervisor` that fixes all
three with one discipline:

* every chunk gets a **wall-clock deadline** -- explicit
  (``SupervisorConfig.deadline``), or derived online from the sweep's
  :class:`~repro.resilience.budget.TimeBudget` per-point estimates (a
  chunk running many multiples of the going rate is hung, not slow);
* a **heartbeat watchdog thread** stamps each chunk when its future
  starts running, detects deadline overruns and budget exhaustion, and
  kills the pool's worker processes so the parent never blocks on a
  corpse;
* dead/expired chunks are **reissued to a restarted pool** with
  exponential backoff; a chunk that keeps failing is **bisected** down
  to the offending point, which is **quarantined** -- handed to the
  caller's ``quarantine`` callback to be recorded as a degraded result
  (NaN row, ``status: "quarantined"`` record) instead of aborting the
  sweep;
* a **circuit breaker** trips pool execution to the caller's serial
  path after ``max_pool_restarts`` pool generations, so restart storms
  are bounded;
* workers optionally run under a ``resource.setrlimit`` **memory
  ceiling** (``REPRO_WORKER_RLIMIT_MB``), turning runaway allocations
  into a catchable ``MemoryError`` instead of an OOM kill.

Every supervision event (timeout, worker loss, restart, bisection,
quarantine, breaker trip, budget exhaustion) is recorded in the active
:class:`~repro.resilience.report.RunReport`, counted in
:mod:`repro.obs.metrics`, and -- because quarantined points flow through
the caller's normal result/checkpoint callbacks -- lands in the
checkpoint stream, so a SIGKILL'd sweep resumes bit-identically.

Application exceptions (a genuinely singular system, an injected
``"raise"`` fault past its retry budget) are *not* supervised: they
propagate to the caller exactly as the unsupervised pool propagated
them, after completed chunks have been stored.  Supervision concerns
itself with the process-level failures the math cannot see.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience.budget import TimeBudget
from repro.resilience.report import RunReport

#: Environment knobs (all optional; explicit arguments win).
RLIMIT_ENV = "REPRO_WORKER_RLIMIT_MB"
DEADLINE_ENV = "REPRO_DEADLINE"
TIME_BUDGET_ENV = "REPRO_TIME_BUDGET"

#: Ceiling on the exponential restart backoff [s].
BACKOFF_MAX = 2.0

#: How long to wait for a broken pool's futures to settle before
#: treating the stragglers as casualties outright [s].
DRAIN_TIMEOUT = 10.0


def _positive_float(raw: str, what: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{what} must be a number, got {raw!r}") from None
    if not value > 0:
        raise ValueError(f"{what} must be positive, got {raw!r}")
    return value


def _positive_int(raw: str, what: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{what} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"{what} must be >= 1, got {raw!r}")
    return value


@dataclass
class SupervisorConfig:
    """Knobs governing one supervised pool run.

    Attributes:
        deadline: Hard per-chunk wall-clock cap [s].  ``None`` derives a
            deadline from the time budget's online per-point estimate
            (``deadline_factor`` x predicted chunk cost, floored at
            ``min_deadline``); with neither a deadline, a budget, nor an
            estimate yet, chunks are unbounded (the pre-supervisor
            behavior).
        time_budget: Wall-clock allowance for the whole sweep [s]; when
            it runs out, unfinished points are quarantined as degraded
            records rather than blowing the allowance.
        heartbeat: Watchdog poll period [s].
        min_deadline: Floor for *derived* deadlines [s] (estimates from
            a few fast chunks must not declare a merely-slower chunk
            hung).
        deadline_factor: Derived deadline = factor x estimated chunk
            cost.
        max_chunk_retries: Reissues a chunk gets before it is bisected
            (and a single point before it is quarantined).
        max_pool_restarts: Pool generations before the circuit breaker
            trips to the caller's serial path.
        backoff_base: First restart delay [s]; doubles (``backoff_factor``)
            per restart, capped at :data:`BACKOFF_MAX`.
        backoff_factor: Restart delay growth factor.
        rlimit_mb: Per-worker address-space ceiling [MiB] applied with
            ``resource.setrlimit`` in the pool initializer; ``None``
            leaves workers unlimited.
    """

    deadline: float | None = None
    time_budget: float | None = None
    heartbeat: float = 0.05
    min_deadline: float = 1.0
    deadline_factor: float = 10.0
    max_chunk_retries: int = 2
    max_pool_restarts: int = 4
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    rlimit_mb: int | None = None

    def __post_init__(self) -> None:
        for name in ("deadline", "time_budget"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if not self.heartbeat > 0:
            raise ValueError(f"heartbeat must be positive, got {self.heartbeat}")
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")
        if self.rlimit_mb is not None and self.rlimit_mb < 1:
            raise ValueError(
                f"rlimit_mb must be >= 1 MiB, got {self.rlimit_mb}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "SupervisorConfig":
        """Build a config from ``REPRO_*`` knobs, then apply overrides.

        ``None``-valued overrides are ignored, so CLI plumbing can pass
        its optional flags straight through.
        """
        values: dict = {}
        raw = os.environ.get(RLIMIT_ENV, "").strip()
        if raw:
            values["rlimit_mb"] = _positive_int(raw, RLIMIT_ENV)
        raw = os.environ.get(DEADLINE_ENV, "").strip()
        if raw:
            values["deadline"] = _positive_float(raw, DEADLINE_ENV)
        raw = os.environ.get(TIME_BUDGET_ENV, "").strip()
        if raw:
            values["time_budget"] = _positive_float(raw, TIME_BUDGET_ENV)
        values.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        return cls(**values)


# -- worker-side plumbing ----------------------------------------------------


def _apply_rlimit(rlimit_mb: int | None) -> None:
    """Cap this process's address space (best-effort, worker-side)."""
    if not rlimit_mb:
        return
    try:
        import resource

        limit = int(rlimit_mb) << 20
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ImportError, ValueError, OSError):
        # An unsupported platform or a hard limit below the request must
        # not kill the worker; the ceiling is an extra guard, not a
        # correctness requirement.
        obs_metrics.counter("supervisor.rlimit_failed").inc()


def supervised_init(
    rlimit_mb: int | None,
    inner: Callable | None = None,
    inner_args: tuple = (),
) -> None:
    """Pool initializer: apply the memory ceiling, then the caller's own.

    Callers chain their existing initializer through ``inner`` /
    ``inner_args`` so one ``initializer=`` slot serves both concerns.
    """
    _apply_rlimit(rlimit_mb)
    if inner is not None:
        inner(*inner_args)


def _kill_pool(executor) -> None:
    """SIGKILL every worker of a pool (hung workers ignore SIGTERM).

    Reaches into ``ProcessPoolExecutor._processes`` -- stable private
    API since 3.7 and the only handle to the worker PIDs; guarded so a
    future stdlib change degrades to a no-op (the pool then dies by
    itself or the breaker trips).
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, AttributeError, ValueError):
            pass  # already dead / already reaped


# -- supervisor internals ----------------------------------------------------


@dataclass
class _Chunk:
    """One schedulable unit of work plus its supervision bookkeeping."""

    key: int
    idx: np.ndarray
    strikes: int = 0
    submitted: float = 0.0
    started: float | None = None
    deadline_at: float | None = None

    def reset(self) -> None:
        self.submitted = 0.0
        self.started = None
        self.deadline_at = None


@dataclass
class SupervisionStats:
    """What the supervisor had to do during one run."""

    timeouts: int = 0
    worker_losses: int = 0
    memory_errors: int = 0
    restarts: int = 0
    bisections: int = 0
    quarantined: list[int] = field(default_factory=list)
    breaker_tripped: bool = False
    budget_exhausted: bool = False

    @property
    def clean(self) -> bool:
        return (
            not self.timeouts and not self.worker_losses
            and not self.memory_errors and not self.restarts
            and not self.bisections and not self.quarantined
            and not self.breaker_tripped and not self.budget_exhausted
        )


class _Watchdog(threading.Thread):
    """Heartbeat monitor over one pool generation.

    Polls the shared in-flight table every ``heartbeat`` seconds: stamps
    a chunk's start time the first poll its future reports running,
    assigns its deadline, and -- on the first deadline overrun or on
    sweep-budget exhaustion -- records the verdicts and SIGKILLs the
    pool so the parent's ``wait`` wakes with ``BrokenProcessPool``
    instead of blocking on a hung worker forever.  One watchdog serves
    one pool generation; the supervisor starts a fresh one per restart.
    """

    def __init__(
        self,
        executor,
        inflight: dict,
        lock: threading.Lock,
        heartbeat: float,
        deadline_for: Callable[[int], float | None],
        budget: TimeBudget,
    ) -> None:
        super().__init__(name="repro-supervisor-watchdog", daemon=True)
        self._executor = executor
        self._inflight = inflight
        self._lock = lock
        self._heartbeat = heartbeat
        self._deadline_for = deadline_for
        self._budget = budget
        self._stop_event = threading.Event()
        self.timed_out: set[int] = set()
        self.budget_fired = False
        self.fired = False

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)

    def run(self) -> None:
        while not self._stop_event.wait(self._heartbeat):
            now = time.monotonic()  # qa: ignore[QA106] -- watchdog clock, not profiling
            expired: list[int] = []
            busy = False
            with self._lock:
                for future, work in self._inflight.items():
                    busy = True
                    if work.started is None:
                        if future.running():
                            work.started = now
                            limit = self._deadline_for(len(work.idx))
                            work.deadline_at = (
                                None if limit is None else now + limit
                            )
                    elif (work.deadline_at is not None
                          and now >= work.deadline_at):
                        expired.append(work.key)
            over_budget = busy and self._budget.exhausted()
            if expired or over_budget:
                self.timed_out.update(expired)
                self.budget_fired = over_budget
                self.fired = True
                _kill_pool(self._executor)
                return


class Supervisor:
    """Deadline/watchdog/quarantine harness around one pool sweep.

    The supervisor owns scheduling and failure policy only; everything
    domain-specific arrives as callbacks, so the same engine serves the
    numeric frequency sweep and the scenario batch scheduler:

    Args:
        executor: The live pool for the first generation (created by the
            caller so pool-creation failures keep their existing
            degrade-to-serial paths).
        make_executor: Zero-argument factory for replacement pools.
        submit: ``submit(executor, key, idx) -> Future`` -- fan one chunk
            out; ``key`` is a supervisor-assigned label unique per
            (re)issue.
        on_result: ``on_result(idx, payload)`` -- store one completed
            chunk (fill by index, persist, checkpoint).
        solve_serial: ``solve_serial(idx)`` -- evaluate one chunk in the
            parent, used after the circuit breaker trips.
        quarantine: ``quarantine(point, reason)`` -- record one poison
            point as a degraded result.
        workers: Pool width (for reporting only).
        config: Supervision knobs; default :meth:`SupervisorConfig.from_env`.
        report: Run report receiving supervision events.
        stage: Report/metric stage label (``"perf"``, ``"sweep"``).
    """

    def __init__(
        self,
        *,
        executor,
        make_executor: Callable[[], object],
        submit: Callable,
        on_result: Callable[[np.ndarray, object], None],
        solve_serial: Callable[[np.ndarray], None],
        quarantine: Callable[[int, str], None],
        workers: int,
        config: SupervisorConfig | None = None,
        report: RunReport | None = None,
        stage: str = "perf",
    ) -> None:
        self._executor = executor
        self._make_executor = make_executor
        self._submit = submit
        self._on_result = on_result
        self._solve_serial = solve_serial
        self._quarantine = quarantine
        self.workers = workers
        self.config = config if config is not None else SupervisorConfig.from_env()
        self.report = report
        self.stage = stage
        self.budget = TimeBudget(self.config.time_budget)
        self._next_key = 0

    # -- helpers -----------------------------------------------------------

    def _key(self) -> int:
        # 0-based and unique per (re)issue, so first-generation keys
        # coincide with the caller's chunk ids.
        key = self._next_key
        self._next_key += 1
        return key

    def _record(self, kind: str, detail: str) -> None:
        if self.report is not None:
            self.report.record(kind, self.stage, detail)

    def _deadline_for(self, points: int) -> float | None:
        """Per-chunk wall-clock cap: explicit, else estimate-derived."""
        cfg = self.config
        limit = cfg.deadline
        if limit is None:
            predicted = self.budget.estimate(points)
            if predicted is not None:
                limit = max(cfg.min_deadline, cfg.deadline_factor * predicted)
        remaining = self.budget.remaining()
        if remaining is not None:
            # One chunk must never swallow the rest of the sweep budget.
            limit = remaining if limit is None else min(limit, remaining)
        return limit

    def _do_quarantine(self, point: int, reason: str,
                       stats: SupervisionStats) -> None:
        stats.quarantined.append(point)
        obs_metrics.counter("supervisor.quarantined").inc()
        if self.report is not None:
            self.report.record_quarantine(
                self.stage, f"point {point}: {reason}"
            )
        self._quarantine(point, reason)

    def _quarantine_chunks(self, works, reason: str,
                           stats: SupervisionStats) -> None:
        for work in works:
            for i in work.idx:
                self._do_quarantine(int(i), reason, stats)

    def _strike(self, work: _Chunk, reason: str, kind: str,
                queue: deque, stats: SupervisionStats) -> None:
        """Penalize a supervised failure: reissue, bisect, or quarantine."""
        work.strikes += 1
        if kind == "timeout":
            stats.timeouts += 1
            obs_metrics.counter("supervisor.timeouts").inc()
            if self.report is not None:
                self.report.record_timeout(
                    self.stage,
                    f"chunk of {len(work.idx)} point(s) {reason} "
                    f"(strike {work.strikes})",
                )
        elif kind == "memory":
            stats.memory_errors += 1
            obs_metrics.counter("supervisor.memory_errors").inc()
            self._record(
                "worker-lost",
                f"chunk of {len(work.idx)} point(s) {reason} "
                f"(strike {work.strikes})",
            )
        else:
            stats.worker_losses += 1
            obs_metrics.counter("supervisor.worker_losses").inc()
            self._record(
                "worker-lost",
                f"chunk of {len(work.idx)} point(s) {reason} "
                f"(strike {work.strikes})",
            )
        if work.strikes <= self.config.max_chunk_retries:
            work.reset()
            queue.append(work)
        elif len(work.idx) > 1:
            # Bisect toward the poison point instead of retrying the
            # whole chunk forever.
            mid = len(work.idx) // 2
            stats.bisections += 1
            obs_metrics.counter("supervisor.bisections").inc()
            self._record(
                "bisect",
                f"chunk of {len(work.idx)} point(s) keeps failing "
                f"({reason}); splitting to isolate the poison point",
            )
            queue.append(_Chunk(self._key(), work.idx[:mid]))
            queue.append(_Chunk(self._key(), work.idx[mid:]))
        else:
            self._do_quarantine(int(work.idx[0]), reason, stats)

    def _serial_tail(self, works, stats: SupervisionStats) -> None:
        """Finish remaining chunks in the parent (post-breaker path)."""
        for k, work in enumerate(works):
            if self.budget.exhausted():
                stats.budget_exhausted = True
                obs_metrics.counter("supervisor.budget_exhausted").inc()
                self._record(
                    "budget-exhausted",
                    f"time budget spent with {len(works) - k} serial "
                    "chunk(s) left; quarantining the remainder",
                )
                self._quarantine_chunks(
                    works[k:], "sweep time budget exhausted", stats
                )
                return
            started = time.monotonic()  # qa: ignore[QA106] -- budget accounting
            self._solve_serial(work.idx)
            self.budget.observe(len(work.idx), time.monotonic() - started)  # qa: ignore[QA106] -- budget accounting

    # -- main loop ---------------------------------------------------------

    def run(self, chunks) -> SupervisionStats:
        """Supervise the sweep to completion; returns the stats.

        Application exceptions from chunks re-raise after completed work
        has been stored (matching the unsupervised pool contract);
        process-level failures (hang, crash, OOM) are absorbed into
        reissue/bisect/quarantine and never propagate.
        """
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        cfg = self.config
        stats = SupervisionStats()
        self.budget.start()
        queue: deque[_Chunk] = deque(
            _Chunk(self._key(), np.asarray(idx, dtype=int)) for idx in chunks
        )
        inflight: dict = {}
        lock = threading.Lock()
        executor = self._executor
        watchdog: _Watchdog | None = None
        restarts = 0
        failure: BaseException | None = None

        def teardown_pool() -> None:
            nonlocal executor, watchdog
            if watchdog is not None:
                watchdog.stop()
                watchdog = None
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                executor = None

        def consume(future, work: _Chunk, casualties: list) -> None:
            """Fold one settled future into results/strikes/failure."""
            nonlocal failure
            try:
                payload = future.result()
            except BrokenProcessPool:
                casualties.append(work)
            except MemoryError as exc:
                self._strike(
                    work, f"ran out of worker memory: {exc}", "memory",
                    queue, stats,
                )
            except BaseException as exc:  # qa: ignore[QA206] -- stashed; re-raised after the drain
                if failure is None:
                    failure = exc
            else:
                reference = work.started if work.started is not None \
                    else work.submitted
                elapsed = max(0.0, time.monotonic() - reference)  # qa: ignore[QA106] -- budget accounting
                self.budget.observe(len(work.idx), elapsed)
                obs_metrics.histogram("supervisor.chunk_seconds").observe(
                    elapsed
                )
                self._on_result(work.idx, payload)

        try:
            with span(
                "supervisor.run", stage=self.stage, chunks=len(queue),
                workers=self.workers,
            ):
                while queue or inflight:
                    if failure is not None:
                        break
                    if self.budget.exhausted() and not inflight:
                        stats.budget_exhausted = True
                        obs_metrics.counter("supervisor.budget_exhausted").inc()
                        self._record(
                            "budget-exhausted",
                            f"time budget of {cfg.time_budget:g}s spent "
                            f"with {sum(len(w.idx) for w in queue)} "
                            "point(s) left; quarantining the remainder",
                        )
                        self._quarantine_chunks(
                            queue, "sweep time budget exhausted", stats
                        )
                        queue.clear()
                        break
                    if executor is None:
                        try:
                            executor = self._make_executor()
                        except (OSError, ImportError, PermissionError) as exc:
                            stats.breaker_tripped = True
                            obs_metrics.counter(
                                "supervisor.breaker_trips"
                            ).inc()
                            if self.report is not None:
                                self.report.record_breaker(
                                    self.stage,
                                    "cannot restart the process pool "
                                    f"({exc}); finishing serially",
                                )
                            works = list(queue)
                            queue.clear()
                            self._serial_tail(works, stats)
                            break
                    if watchdog is None:
                        watchdog = _Watchdog(
                            executor, inflight, lock, cfg.heartbeat,
                            self._deadline_for, self.budget,
                        )
                        watchdog.start()
                    pool_broken = False
                    with lock:
                        while queue:
                            work = queue.popleft()
                            work.reset()
                            try:
                                future = self._submit(
                                    executor, work.key, work.idx
                                )
                            except (BrokenProcessPool, RuntimeError):
                                # The watchdog (or the OS) killed the pool
                                # mid-submission; drain and restart below.
                                queue.appendleft(work)
                                pool_broken = True
                                break
                            work.submitted = time.monotonic()  # qa: ignore[QA106] -- deadline anchor
                            inflight[future] = work
                    if inflight:
                        done, _ = wait(
                            set(inflight), return_when=FIRST_COMPLETED
                        )
                    else:
                        done = set()
                    casualties: list[_Chunk] = []
                    for future in done:
                        with lock:
                            work = inflight.pop(future)
                        consume(future, work, casualties)
                    pool_broken = pool_broken or bool(casualties) or (
                        watchdog is not None and watchdog.fired
                    )
                    if not pool_broken:
                        continue

                    # -- the pool died: drain, attribute, restart --------
                    if inflight:
                        done, still_pending = wait(
                            set(inflight), timeout=DRAIN_TIMEOUT
                        )
                        for future in done:
                            with lock:
                                work = inflight.pop(future)
                            consume(future, work, casualties)
                        for future in still_pending:
                            future.cancel()
                            with lock:
                                work = inflight.pop(future)
                            casualties.append(work)
                    timed_out = watchdog.timed_out if watchdog else set()
                    budget_fired = (
                        watchdog.budget_fired if watchdog else False
                    )
                    teardown_pool()
                    if budget_fired:
                        stats.budget_exhausted = True
                        obs_metrics.counter("supervisor.budget_exhausted").inc()
                        self._record(
                            "budget-exhausted",
                            f"time budget of {cfg.time_budget:g}s spent "
                            "with chunks still in flight; quarantining "
                            "the remainder",
                        )
                        self._quarantine_chunks(
                            list(casualties) + list(queue),
                            "sweep time budget exhausted", stats,
                        )
                        queue.clear()
                        break
                    deadline_text = cfg.deadline
                    for work in casualties:
                        if work.key in timed_out:
                            limit = (
                                work.deadline_at - work.started
                                if work.deadline_at and work.started
                                else deadline_text
                            )
                            self._strike(
                                work,
                                "exceeded its deadline"
                                + (f" of {limit:.3g}s" if limit else ""),
                                "timeout", queue, stats,
                            )
                        elif work.started is not None:
                            # Observed running when the pool died: the
                            # plausible culprit of a worker crash.
                            self._strike(
                                work, "was running when its worker died",
                                "crash", queue, stats,
                            )
                        else:
                            # Never started: an innocent bystander of the
                            # pool loss; reissue without prejudice.
                            work.reset()
                            queue.append(work)
                    if not queue:
                        continue  # everything resolved to results/quarantine
                    restarts += 1
                    stats.restarts = restarts
                    if restarts > cfg.max_pool_restarts:
                        stats.breaker_tripped = True
                        obs_metrics.counter("supervisor.breaker_trips").inc()
                        if self.report is not None:
                            self.report.record_breaker(
                                self.stage,
                                f"pool restarted {cfg.max_pool_restarts} "
                                "time(s) and died again; circuit breaker "
                                "trips to the serial path",
                            )
                        works = list(queue)
                        queue.clear()
                        self._serial_tail(works, stats)
                        break
                    delay = min(
                        BACKOFF_MAX,
                        cfg.backoff_base
                        * cfg.backoff_factor ** (restarts - 1),
                    )
                    obs_metrics.counter("supervisor.restarts").inc()
                    if self.report is not None:
                        self.report.record_restart(
                            self.stage,
                            f"pool generation {restarts} after "
                            f"{delay:.3g}s backoff "
                            f"({len(queue)} chunk(s) reissued)",
                        )
                    time.sleep(delay)
        finally:
            if watchdog is not None:
                watchdog.stop()
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
        if failure is not None:
            raise failure
        return stats


__all__ = [
    "BACKOFF_MAX",
    "DEADLINE_ENV",
    "DRAIN_TIMEOUT",
    "RLIMIT_ENV",
    "TIME_BUDGET_ENV",
    "SupervisionStats",
    "Supervisor",
    "SupervisorConfig",
    "supervised_init",
]
