"""Wall-clock budgets for supervised sweeps.

A :class:`TimeBudget` owns two related pieces of timing state:

* the **sweep-level budget** -- an optional total wall-clock allowance
  for the whole batch (``repro sweep --time-budget``).  ``remaining()``
  counts it down from the first observation and ``exhausted()`` is the
  signal the supervisor acts on (quarantine what is left rather than
  blow the allowance);
* the **per-point cost estimate** -- refined online from completed
  chunks (exponential moving average seeded by the first observation),
  which is what turns a coarse budget into *per-chunk* deadlines: a
  chunk that runs many multiples of the going per-point rate is hung,
  not slow.

The clock is injectable so tests can drive time deterministically; the
default is :func:`time.monotonic` (wall-clock deadlines must not jump
with NTP adjustments).
"""

from __future__ import annotations

import time
from typing import Callable

#: Weight of the newest observation in the per-point moving average.
EWMA_ALPHA = 0.4


class TimeBudget:
    """Sweep-level time allowance plus an online per-point cost model.

    Args:
        total: Wall-clock budget for the whole sweep [s]; ``None`` means
            unbounded (the estimate machinery still works).
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        total: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if total is not None and not total > 0:
            raise ValueError(f"time budget must be positive, got {total}")
        self.total = total
        self._clock = clock
        self._start: float | None = None
        self._per_point: float | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Anchor the budget clock (idempotent; auto-called on first use)."""
        if self._start is None:
            self._start = self._clock()

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before the clock is anchored)."""
        if self._start is None:
            return 0.0
        return max(0.0, self._clock() - self._start)

    def remaining(self) -> float | None:
        """Seconds left in the budget; ``None`` when unbounded."""
        if self.total is None:
            return None
        self.start()
        return max(0.0, self.total - self.elapsed())

    def exhausted(self) -> bool:
        """True once the sweep has used up its whole allowance."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    # -- per-point cost model ----------------------------------------------

    def observe(self, points: int, seconds: float) -> None:
        """Fold one completed chunk into the per-point estimate."""
        if points < 1 or seconds < 0:
            return
        sample = seconds / points
        if self._per_point is None:
            self._per_point = sample
        else:
            self._per_point += EWMA_ALPHA * (sample - self._per_point)

    @property
    def per_point(self) -> float | None:
        """Current per-point estimate [s]; ``None`` before any observation."""
        return self._per_point

    def estimate(self, points: int) -> float | None:
        """Predicted wall-clock for ``points`` points, if known yet."""
        if self._per_point is None:
            return None
        return self._per_point * points

    def __repr__(self) -> str:
        total = "unbounded" if self.total is None else f"{self.total:g}s"
        est = "?" if self._per_point is None else f"{self._per_point:.3g}s/pt"
        return f"TimeBudget({total}, {est})"


__all__ = ["EWMA_ALPHA", "TimeBudget"]
