"""Structured records of what the fault-tolerance layer actually did.

Two granularities:

* :class:`SolveReport` -- one linear solve: which escalation rungs were
  tried, why each failed, condition estimates, and which rung won.
* :class:`RunReport` -- one analysis run (a transient, a flow, a sweep):
  retries, step halvings, checkpoints written, sparsifier/reduction
  downgrades, and any solve reports that needed escalation.

A run report can be *activated* for the current thread; solver internals
attach their escalation records to the active report without every call
site having to thread it through.  Activation nests (the inner report
wins) and is exception-safe.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class SolveAttempt:
    """One escalation rung's outcome inside a single linear solve.

    Attributes:
        rung: Rung name (``"lu"``, ``"equilibrated"``, ``"gmin"``,
            ``"lstsq"``).
        ok: Whether this rung produced an accepted solution.
        error: Failure description when ``ok`` is False.
        condition_estimate: Cheap condition estimate from the rung's
            factorization (max/min ``|diag(U)|``); None when the
            factorization itself failed.
        residual: Relative residual of the accepted/checked solution
            against the *original* matrix, when the rung computes one.
    """

    rung: str
    ok: bool
    error: str = ""
    condition_estimate: float | None = None
    residual: float | None = None


@dataclass
class SolveReport:
    """Escalation trace of one (possibly retried) linear solve site.

    Attributes:
        site: Dotted solve-site name (``"transient"``, ``"dc.newton"``).
        attempts: Rung attempts in the order they were tried.
    """

    site: str
    attempts: list[SolveAttempt] = field(default_factory=list)

    def record(self, attempt: SolveAttempt) -> None:
        self.attempts.append(attempt)

    @property
    def winner(self) -> str | None:
        """Name of the rung that produced the accepted solution."""
        for attempt in reversed(self.attempts):
            if attempt.ok:
                return attempt.rung
        return None

    @property
    def escalated(self) -> bool:
        """True when the first rung did not win outright."""
        return self.winner is not None and (
            len(self.attempts) > 1 or self.attempts[0].rung != self.winner
        )

    @property
    def failed(self) -> bool:
        return self.winner is None and bool(self.attempts)

    def format(self) -> str:
        parts = []
        for a in self.attempts:
            status = "ok" if a.ok else f"failed ({a.error})"
            extra = ""
            if a.condition_estimate is not None:
                extra += f", cond~{a.condition_estimate:.2e}"
            if a.residual is not None:
                extra += f", resid {a.residual:.2e}"
            parts.append(f"{a.rung}: {status}{extra}")
        return f"[{self.site}] " + "; ".join(parts) if parts else f"[{self.site}] (no attempts)"


@dataclass
class RunEvent:
    """One noteworthy resilience action during a run.

    Attributes:
        kind: ``"downgrade"`` / ``"retry"`` / ``"step-halving"`` /
            ``"checkpoint"`` / ``"resume"`` / ``"source-stepping"``, plus
            the supervision kinds ``"timeout"`` / ``"worker-lost"`` /
            ``"restart"`` / ``"bisect"`` / ``"quarantine"`` /
            ``"breaker"`` / ``"budget-exhausted"``.
        stage: Where it happened (``"sparsify"``, ``"transient"``, ...).
        detail: Human-readable specifics.
        span: Open-span path at recording time (``"flow.peec/flow.solve/
            circuit.transient"``), tying the event to the trace tree;
            empty outside any span.
    """

    kind: str
    stage: str
    detail: str
    span: str = ""

    def format(self) -> str:
        where = f" @ {self.span}" if self.span else ""
        return f"{self.kind} [{self.stage}] {self.detail}{where}"


class RunReport:
    """Resilience log of one analysis run.

    Collects :class:`RunEvent` records plus any :class:`SolveReport` that
    needed more than its first rung.  Analyses attach their report to the
    result object; flows aggregate one per model flavor.
    """

    def __init__(self) -> None:
        self.events: list[RunEvent] = []
        self.solve_reports: list[SolveReport] = []

    # -- recording ---------------------------------------------------------

    def record(self, kind: str, stage: str, detail: str) -> None:
        from repro.obs.trace import current_span_path

        self.events.append(
            RunEvent(
                kind=kind, stage=stage, detail=detail,
                span=current_span_path(),
            )
        )

    def record_downgrade(self, stage: str, from_: str, to: str, reason: str) -> None:
        self.record("downgrade", stage, f"{from_} -> {to}: {reason}")

    def record_retry(self, stage: str, detail: str) -> None:
        self.record("retry", stage, detail)

    def record_step_halving(self, stage: str, detail: str) -> None:
        self.record("step-halving", stage, detail)

    def record_checkpoint(self, stage: str, detail: str) -> None:
        self.record("checkpoint", stage, detail)

    def record_resume(self, stage: str, detail: str) -> None:
        self.record("resume", stage, detail)

    def record_timeout(self, stage: str, detail: str) -> None:
        self.record("timeout", stage, detail)

    def record_restart(self, stage: str, detail: str) -> None:
        self.record("restart", stage, detail)

    def record_quarantine(self, stage: str, detail: str) -> None:
        self.record("quarantine", stage, detail)

    def record_breaker(self, stage: str, detail: str) -> None:
        self.record("breaker", stage, detail)

    def attach_solve_report(self, report: SolveReport) -> None:
        self.solve_reports.append(report)

    # -- queries -----------------------------------------------------------

    def by_kind(self, kind: str) -> list[RunEvent]:
        return [e for e in self.events if e.kind == kind]

    @property
    def downgrades(self) -> list[RunEvent]:
        return self.by_kind("downgrade")

    @property
    def retries(self) -> list[RunEvent]:
        return self.by_kind("retry")

    @property
    def timeouts(self) -> list[RunEvent]:
        return self.by_kind("timeout")

    @property
    def quarantines(self) -> list[RunEvent]:
        return self.by_kind("quarantine")

    @property
    def clean(self) -> bool:
        """True when the run needed no resilience action at all."""
        return not self.events and not self.solve_reports

    def format(self) -> str:
        lines = [e.format() for e in self.events]
        lines += [r.format() for r in self.solve_reports]
        if not lines:
            return "(clean run: no resilience actions)"
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events) + len(self.solve_reports)

    def __repr__(self) -> str:
        return (
            f"RunReport({len(self.events)} events, "
            f"{len(self.solve_reports)} escalated solves)"
        )


_LOCAL = threading.local()


def current_run_report() -> RunReport | None:
    """The innermost activated run report of this thread, if any."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(report: RunReport) -> Iterator[RunReport]:
    """Make ``report`` the thread's active run report for the block."""
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    stack.append(report)
    try:
        yield report
    finally:
        stack.pop()


def attach_solve_report(report: SolveReport) -> None:
    """Attach an escalated solve report to the active run report, if any."""
    active = current_run_report()
    if active is not None:
        active.attach_solve_report(report)


__all__ = [
    "SolveAttempt",
    "SolveReport",
    "RunEvent",
    "RunReport",
    "current_run_report",
    "activate",
    "attach_solve_report",
]
