"""Runtime fault tolerance: escalation, retries, checkpoints, degradation.

The paper's analyses *break* on hostile inputs -- truncated inductance
matrices go non-passive, ill-scaled MNA systems defeat plain LU, long
sweeps die mid-run.  This package is the layer that keeps production
runs alive through all of that:

* :mod:`~repro.resilience.policy` -- the single knob object
  (:class:`ResiliencePolicy`) governing escalation rungs, retry budgets,
  and step control; default from ``REPRO_RESILIENCE``.
* :mod:`~repro.resilience.report` -- :class:`SolveReport` /
  :class:`RunReport`: structured records of every rescue taken.
* :mod:`~repro.resilience.faults` -- seeded fault injection into named
  solve sites (``REPRO_FAULTS=chaos-<seed>`` for CI chaos runs).
* :mod:`~repro.resilience.checkpoint` -- atomic ``.ckpt`` snapshots and
  resume for transients and frequency sweeps (``repro resume``).
* :mod:`~repro.resilience.degrade` -- sparsifier fallback chain
  (requested -> block-diagonal -> dense) with logged downgrades.
* :mod:`~repro.resilience.supervisor` / :mod:`~repro.resilience.budget`
  -- the supervised execution runtime over the process-pool sweeps:
  per-chunk deadlines from a sweep time budget, a hung/killed-worker
  watchdog with pool restarts, poison-point quarantine, and a
  pool-to-serial circuit breaker.

The escalation chain itself lives in
:class:`repro.circuit.linalg.ResilientFactorization`, next to the raw
factorization it wraps.
"""

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointError,
    CheckpointMismatch,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.degrade import DegradationError, sparsify_with_fallback
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    inject_faults,
)
from repro.resilience.policy import DEFAULT_POLICY, ResiliencePolicy, default_policy
from repro.resilience.report import (
    RunReport,
    SolveAttempt,
    SolveReport,
    activate,
    current_run_report,
)
from repro.resilience.budget import TimeBudget
from repro.resilience.supervisor import (
    SupervisionStats,
    Supervisor,
    SupervisorConfig,
    supervised_init,
)

__all__ = [
    "Checkpoint",
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointMismatch",
    "load_checkpoint",
    "save_checkpoint",
    "DegradationError",
    "sparsify_with_fallback",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "inject_faults",
    "DEFAULT_POLICY",
    "ResiliencePolicy",
    "default_policy",
    "RunReport",
    "SolveAttempt",
    "SolveReport",
    "activate",
    "current_run_report",
    "SupervisionStats",
    "Supervisor",
    "SupervisorConfig",
    "TimeBudget",
    "supervised_init",
]
