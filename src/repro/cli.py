"""Command-line interface.

Usage::

    python -m repro.cli table1 [--die 600] [--branches 4] [--trace-json t.json]
    python -m repro.cli run ...            # alias of table1
    python -m repro.cli loop [--length 1000] [--trace-json t.json]
    python -m repro.cli design
    python -m repro.cli export --out clocknet.sp
    python -m repro.cli check deck.sp script.py [--strict] [--sanitize]
    python -m repro.cli lint src [--suppress QA104]
    python -m repro.cli analyze [src/repro] [--baseline qa/baseline.json]
                                [--format json] [--out report.json]
    python -m repro.cli resume run.ckpt [--info] [--out waves.csv]
    python -m repro.cli bench [--smoke] [--baseline benchmarks/baseline.json]
    python -m repro.cli trace [--die 300] [--json trace.json]
    python -m repro.cli sweep spec.json [--workers 4] [--store DIR]
                              [--no-resume] [--out results.json]
                              [--deadline S] [--time-budget S]

``table1`` (alias ``run``) runs the Section-6 model comparison, ``loop``
the Figure-3 extraction sweep, ``design`` the Figure 5-9 studies, and
``export`` writes the detailed PEEC model of the clock topology as a
SPICE deck.  ``check`` runs the :mod:`repro.qa` electrical rule check
over SPICE decks and/or the circuits built by Python scripts, and
``lint`` runs the repo-specific AST lint -- both exit non-zero on
error-severity findings.  ``analyze`` runs the project-wide dataflow
lint (:mod:`repro.qa.analyze`): the QA101-QA107 syntax rules plus the
QA201-QA207 semantic rules, with a ``--baseline`` ratchet so only *new*
findings fail the gate.  ``resume`` picks a crashed transient or loop
sweep back up from its checkpoint file (see :mod:`repro.resilience`).
``bench`` times the hot paths (assembly, hierarchical-vs-exact assembly
at Table-1 scale, sparsification, loop sweep serial vs parallel,
transient) and optionally gates against a checked-in baseline -- the
hierarchical section also gates correctness (ACA error vs exact and the
SPD/passivity check, see :mod:`repro.extraction.hierarchical`).  ``sweep`` runs a declarative scenario grid (design variant x
geometry x sparsifier, see :mod:`repro.scenarios`) sharded over a
process pool with per-scenario checkpointing and cross-run resume.  ``trace`` runs a small PEEC flow under the :mod:`repro.obs`
span collector and prints the span tree plus the metrics registry,
exiting non-zero on leaked (unclosed) spans or missing stages; the
``--trace-json`` flag on ``table1``/``run``/``loop``/``bench`` collects
the same data around a full command and writes it as JSON.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro import build_clock_testcase, run_loop_flow, run_peec_flow
    from repro.analysis.report import format_table
    from repro.constants import to_ps

    case = build_clock_testcase(
        die=args.die * 1e-6,
        num_branches=args.branches,
        branch_length=args.die * 1e-6 / 4,
        stripe_pitch=args.die * 1e-6 / 6,
    )
    flows = {
        "PEEC (RC)": run_peec_flow(case, include_inductance=False),
        "PEEC (RLC)": run_peec_flow(case),
        "LOOP (RLC)": run_loop_flow(case),
    }
    rows = [
        [name, res.stats["resistors"], res.stats["capacitors"],
         res.stats["inductors"], res.stats["mutuals"],
         f"{to_ps(res.worst_delay):.1f}", f"{to_ps(res.worst_skew):.2f}",
         f"{res.total_seconds:.2f}"]
        for name, res in flows.items()
    ]
    print(format_table(
        ["model", "R", "C", "L", "mutuals", "delay [ps]", "skew [ps]",
         "time [s]"],
        rows, title="Table 1 (synthetic scale)",
    ))
    return 0


def _cmd_loop(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.geometry import build_signal_over_grid
    from repro.loop import LoopPort, extract_loop_impedance, fit_ladder

    layout, ports = build_signal_over_grid(length=args.length * 1e-6)
    port = LoopPort(
        signal=ports["driver"], reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )
    freqs = np.logspace(7, 11, 9)
    res = extract_loop_impedance(layout, port, freqs,
                                 max_segment_length=250e-6,
                                 assembly=args.assembly)
    rows = [
        [f"{f:.2e}", f"{r:.4f}", f"{l * 1e9:.4f}"]
        for f, r, l in zip(freqs, res.resistance, res.inductance)
    ]
    print(format_table(["frequency [Hz]", "R [ohm]", "L [nH]"], rows,
                       title="Figure 3(b) -- loop R & L vs frequency"))
    ladder = fit_ladder(float(freqs[0]), complex(res.impedance[0]),
                        float(freqs[-1]), complex(res.impedance[-1]))
    print(f"\nladder: R0={ladder.r0:.4f} L0={ladder.l0 * 1e9:.4f}nH "
          f"R1={ladder.r1:.4f} L1={ladder.l1 * 1e9:.4f}nH")
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    import runpy

    # Reuse the worked example (it prints all the study tables).
    from pathlib import Path

    example = Path(__file__).resolve().parents[2] / "examples" / \
        "design_techniques.py"
    if example.exists():
        runpy.run_path(str(example), run_name="__main__")
        return 0
    from examples import design_techniques  # type: ignore[import-not-found]

    design_techniques.main()
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro import build_clock_testcase
    from repro.io.spice import write_spice
    from repro.peec import PEECOptions, attach_package, build_peec_model

    case = build_clock_testcase()
    model = build_peec_model(
        case.layout, PEECOptions(max_segment_length=80e-6)
    )
    attach_package(model)
    with open(args.out, "w", encoding="ascii") as f:
        write_spice(model.circuit, f, t_stop=case.t_stop,
                    analysis=f".tran {case.dt} {case.t_stop}")
    stats = model.stats()
    print(f"wrote {args.out}: {stats['resistors']} R, "
          f"{stats['capacitors']} C, {stats['inductors']} L, "
          f"{stats['mutuals']} mutual couplings")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.io.parser import read_spice
    from repro.qa import check_circuit
    from repro.qa.collect import collect_circuits_from_script

    exit_code = 0
    for path in args.paths:
        p = Path(path)
        targets = []  # (label, circuit)
        runtime = None
        if p.suffix == ".py":
            try:
                circuits, runtime = collect_circuits_from_script(
                    p, run_sanitized=args.sanitize
                )
            except OSError as exc:
                print(f"{p}: {exc}")
                exit_code = max(exit_code, 2)
                continue
            except SystemExit as exc:
                print(f"{p}: script exited with status {exc.code}")
                exit_code = max(exit_code, 1)
                continue
            except Exception as exc:
                print(f"{p}: script raised {type(exc).__name__}: {exc}")
                exit_code = max(exit_code, 1)
                continue
            targets = [(f"{p}::{c.name}", c) for c in circuits]
            if not circuits:
                print(f"{p}: no circuits constructed")
        elif p.suffix in (".sp", ".cir", ".spice", ".net"):
            try:
                with open(p, encoding="ascii", errors="replace") as f:
                    deck = read_spice(f)
            except OSError as exc:
                print(f"{p}: {exc}")
                exit_code = max(exit_code, 2)
                continue
            targets = [(f"{p}::{deck.circuit.name}", deck.circuit)]
        else:
            parser_error = (
                f"{p}: unsupported input (expected .sp/.cir/.spice/.net "
                "deck or .py script)"
            )
            print(parser_error)
            exit_code = 2
            continue
        for label, circuit in targets:
            report = check_circuit(circuit, suppress=args.suppress)
            print(f"-- {label}: {report!r}")
            for diag in report:
                print(f"   {diag.format()}")
            exit_code = max(exit_code, report.exit_code(strict=args.strict))
        if runtime is not None and len(runtime):
            print(f"-- {p}: sanitizer findings")
            for diag in runtime:
                print(f"   {diag.format()}")
            exit_code = max(
                exit_code, runtime.exit_code(strict=args.strict)
            )
    print("check:", "FAIL" if exit_code else "ok")
    return exit_code


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.resilience.checkpoint import CheckpointError, load_checkpoint
    from repro.resilience import resume as rz

    try:
        if args.info:
            print(rz.describe(args.path))
            return 0
        kind = load_checkpoint(args.path).kind
        if kind == "transient":
            result = rz.resume_transient(args.path, keep=args.keep)
            print(
                f"resumed transient: {len(result.times)} time points, "
                f"t_end = {result.times[-1]:.4g} s, "
                f"{len(result.columns)} recorded columns"
            )
            if result.report is not None and not result.report.clean:
                print(result.report.format())
            if args.out:
                header = "time," + ",".join(result.columns)
                np.savetxt(
                    args.out,
                    np.column_stack([result.times, result.data]),
                    delimiter=",", header=header, comments="",
                )
                print(f"wrote {args.out}")
        elif kind == "loop-sweep":
            freqs, z = rz.resume_loop(args.path, keep=args.keep)
            from repro.analysis.report import format_table

            omega = 2.0 * np.pi * freqs
            with np.errstate(divide="ignore", invalid="ignore"):
                l = np.where(omega > 0.0, z.imag / omega, np.nan)
            rows = [
                [f"{f:.2e}", f"{zv.real:.4f}", f"{lv * 1e9:.4f}"]
                for f, zv, lv in zip(freqs, z, l)
            ]
            print(format_table(
                ["frequency [Hz]", "R [ohm]", "L [nH]"], rows,
                title="resumed loop sweep",
            ))
            if args.out:
                np.savetxt(
                    args.out,
                    np.column_stack([freqs, z.real, z.imag]),
                    delimiter=",", header="frequency,re_z,im_z", comments="",
                )
                print(f"wrote {args.out}")
        else:
            print(f"{args.path}: unknown checkpoint kind {kind!r}")
            return 2
    except CheckpointError as exc:
        print(f"resume failed: {exc}")
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.perf.bench import (
        BenchConfig,
        compare_benchmarks,
        default_output_path,
        run_benchmarks,
        write_report,
    )

    config = BenchConfig.for_mode(smoke=args.smoke, workers=args.workers)
    report = run_benchmarks(config)
    out = Path(args.out) if args.out else default_output_path()
    write_report(report, out)
    print(f"wrote {out}")
    if args.baseline:
        try:
            baseline = json.loads(Path(args.baseline).read_text())
        except (OSError, ValueError) as exc:
            print(f"bench: cannot read baseline {args.baseline}: {exc}")
            return 2
        problems = compare_benchmarks(
            report.to_json(), baseline, max_regression=args.max_regression
        )
        for problem in problems:
            print(f"bench: REGRESSION {problem}")
        if problems:
            return 1
        print(f"bench: no regression vs {args.baseline} "
              f"(allowed {args.max_regression:.1f}x)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.scenarios import (
        ResultStore,
        format_comparison,
        load_sweep_spec,
        run_sweep,
        smoke_spec,
        write_results,
    )

    if args.smoke:
        spec = smoke_spec()
    elif args.spec:
        try:
            spec = load_sweep_spec(args.spec)
        except ValueError as exc:
            print(f"sweep: {exc}")
            return 2
    else:
        print("sweep: need a spec file or --smoke")
        return 2

    from repro.resilience import SupervisorConfig

    try:
        config = SupervisorConfig.from_env(
            deadline=args.deadline, time_budget=args.time_budget
        )
    except ValueError as exc:
        print(f"sweep: {exc}")
        return 2
    store = ResultStore(Path(args.store)) if args.store else None
    result = run_sweep(
        spec, store=store, workers=args.workers, resume=args.resume,
        config=config,
    )
    print(format_comparison(
        result.records, title=f"scenario sweep -- {spec.name}"
    ))
    print(
        f"sweep: {result.ok} ok, {result.failed} failed, "
        f"{result.quarantined} quarantined, "
        f"{result.resumed} resumed, {result.computed} computed"
    )
    if not result.report.clean:
        print(result.report.format())
    if args.out:
        write_results(result.records, args.out)
        print(f"wrote {args.out}")
    if result.records and result.failed == len(result.records):
        return 1
    if args.strict and (result.failed or result.quarantined):
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.qa import astlint

    argv = list(args.paths)
    for rule in args.suppress:
        argv += ["--suppress", rule]
    return astlint.main(argv)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.qa.analyze import main as analyze_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.out:
        argv += ["--out", args.out]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.update_baseline:
        argv.append("--update-baseline")
    for rule in args.suppress:
        argv += ["--suppress", rule]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.explain:
        argv += ["--explain", args.explain]
    if args.list_rules:
        argv.append("--list-rules")
    return analyze_main(argv)


#: Top-level spans the ``trace`` smoke command insists on seeing.
_TRACE_EXPECTED = ("flow.peec", "peec.assembly", "circuit.transient")


def _seed_required_metrics() -> None:
    """Touch the headline counters so exports always carry them.

    A short run may never miss the cache or escalate a solve; creating
    the counters up front keeps the exported metric set stable so
    downstream tooling can rely on the keys being present.
    """
    from repro.obs import metrics as obs_metrics

    for name in (
        "extraction.cache.memory_hits",
        "extraction.cache.disk_hits",
        "extraction.cache.misses",
        "extraction.cache.stores",
        "solver.escalation_attempts",
        "solver.escalated_solves",
    ):
        obs_metrics.counter(name)


def _trace_payload(trace) -> dict:
    """JSON-serializable bundle of a trace plus the metrics registry."""
    from repro.obs import metrics as obs_metrics

    payload = trace.to_json()
    payload["metrics"] = obs_metrics.REGISTRY.export()
    return payload


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro import build_clock_testcase, run_peec_flow
    from repro.obs import metrics as obs_metrics
    from repro.obs.trace import tracing

    obs_metrics.REGISTRY.reset()
    _seed_required_metrics()
    case = build_clock_testcase(
        die=args.die * 1e-6,
        num_branches=2,
        branch_length=args.die * 1e-6 / 4,
        stripe_pitch=args.die * 1e-6 / 6,
    )
    with tracing() as trace:
        run_peec_flow(case)

    print(trace.format())
    print()
    print(obs_metrics.REGISTRY.render_prometheus())

    if args.json:
        with open(args.json, "w", encoding="ascii") as f:
            json.dump(_trace_payload(trace), f, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    exit_code = 0
    names = trace.span_names()
    for expected in _TRACE_EXPECTED:
        if expected not in names:
            print(f"trace: MISSING span {expected!r}")
            exit_code = 1
    if trace.open_spans:
        print(f"trace: {trace.open_spans} span(s) leaked (never closed)")
        exit_code = 1
    print("trace:", "FAIL" if exit_code else "ok")
    return exit_code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="On-chip inductance analysis (Inductance 101, DAC 2001)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_json(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace-json", default=None, metavar="PATH",
                       help="run under the span collector and write the "
                            "span tree + metrics as JSON")

    for name, help_text in (
        ("table1", "Section-6 model comparison"),
        ("run", "alias of table1"),
    ):
        p_table1 = sub.add_parser(name, help=help_text)
        p_table1.add_argument("--die", type=float, default=600.0,
                              help="die size [um]")
        p_table1.add_argument("--branches", type=int, default=4)
        add_trace_json(p_table1)
        p_table1.set_defaults(func=_cmd_table1)

    p_loop = sub.add_parser("loop", help="Figure-3 loop extraction sweep")
    p_loop.add_argument("--length", type=float, default=1000.0,
                        help="signal length [um]")
    p_loop.add_argument("--assembly", choices=("exact", "hierarchical"),
                        default="exact",
                        help="partial-L assembly: exact (dense) or "
                             "hierarchical (compressed, matrix-free "
                             "Krylov solves)")
    add_trace_json(p_loop)
    p_loop.set_defaults(func=_cmd_loop)

    p_design = sub.add_parser("design", help="Figure 5-9 design studies")
    p_design.set_defaults(func=_cmd_design)

    p_export = sub.add_parser("export", help="export PEEC model as SPICE")
    p_export.add_argument("--out", default="clocknet.sp")
    p_export.set_defaults(func=_cmd_export)

    p_check = sub.add_parser(
        "check", help="electrical rule check over decks / script circuits"
    )
    p_check.add_argument("paths", nargs="+",
                         help="SPICE decks (.sp) and/or Python scripts (.py)")
    p_check.add_argument("--suppress", action="append", default=[],
                         metavar="RULE", help="drop findings of this rule id")
    p_check.add_argument("--strict", action="store_true",
                         help="exit non-zero on warnings too")
    p_check.add_argument("--sanitize", action="store_true",
                         help="run .py scripts under the numerics sanitizer "
                              "and include its findings")
    p_check.set_defaults(func=_cmd_check)

    p_resume = sub.add_parser(
        "resume", help="finish a checkpointed run from its .ckpt file"
    )
    p_resume.add_argument("path", help="checkpoint file (*.ckpt)")
    p_resume.add_argument("--info", action="store_true",
                          help="describe the checkpoint without resuming")
    p_resume.add_argument("--keep", action="store_true",
                          help="keep the checkpoint after the run completes")
    p_resume.add_argument("--out", default=None,
                          help="write the completed result as CSV")
    p_resume.set_defaults(func=_cmd_resume)

    p_bench = sub.add_parser(
        "bench", help="time the hot paths and write BENCH_<date>.json"
    )
    p_bench.add_argument("--smoke", action="store_true",
                         help="CI-sized configuration (seconds, not minutes)")
    p_bench.add_argument("--workers", type=int, default=None,
                         help="process-pool width for the parallel sweep")
    p_bench.add_argument("--out", default=None,
                         help="output JSON path (default BENCH_<date>.json)")
    p_bench.add_argument("--baseline", default=None,
                         help="compare against this BENCH JSON and exit "
                              "non-zero on regression")
    p_bench.add_argument("--max-regression", type=float, default=2.0,
                         help="allowed slowdown factor vs baseline")
    add_trace_json(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_trace = sub.add_parser(
        "trace", help="smoke-run a small PEEC flow under the span collector"
    )
    p_trace.add_argument("--die", type=float, default=300.0,
                         help="die size [um]")
    p_trace.add_argument("--json", default=None, metavar="PATH",
                         help="also write the span tree + metrics as JSON")
    p_trace.set_defaults(func=_cmd_trace)

    p_sweep = sub.add_parser(
        "sweep", help="run a declarative scenario sweep (JSON spec grid)"
    )
    p_sweep.add_argument("spec", nargs="?", default=None,
                         help="sweep spec JSON (grid over scenario fields)")
    p_sweep.add_argument("--smoke", action="store_true",
                         help="run the built-in 4-scenario CI smoke grid")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process-pool width (1 = serial; default "
                              "REPRO_WORKERS, else CPU count)")
    p_sweep.add_argument("--store", default=None, metavar="DIR",
                         help="content-addressed result store directory "
                              "(per-scenario checkpointing + resume)")
    p_sweep.add_argument("--resume", default=True,
                         action=argparse.BooleanOptionalAction,
                         help="serve scenarios already in the store "
                              "instead of recomputing them")
    p_sweep.add_argument("--out", default=None, metavar="PATH",
                         help="write the canonical aggregated results JSON")
    p_sweep.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-shard wall-clock deadline; hung workers "
                              "are killed and their shards reissued "
                              "(default REPRO_DEADLINE, else derived from "
                              "the time budget)")
    p_sweep.add_argument("--time-budget", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget for the whole sweep; "
                              "unfinished scenarios are quarantined when "
                              "it runs out (default REPRO_TIME_BUDGET)")
    p_sweep.add_argument("--strict", action="store_true",
                         help="exit non-zero if any scenario failed or "
                              "was quarantined")
    add_trace_json(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_lint = sub.add_parser("lint", help="repo-specific AST lint")
    p_lint.add_argument("paths", nargs="*", default=["src"])
    p_lint.add_argument("--suppress", action="append", default=[],
                        metavar="RULE")
    p_lint.set_defaults(func=_cmd_lint)

    p_an = sub.add_parser(
        "analyze", help="project-wide dataflow lint (QA101-QA207)")
    p_an.add_argument("paths", nargs="*", default=["src/repro"])
    p_an.add_argument("--format", choices=("text", "json"), default="text")
    p_an.add_argument("--out", default=None, metavar="PATH")
    p_an.add_argument("--baseline", default=None, metavar="FILE")
    p_an.add_argument("--update-baseline", action="store_true")
    p_an.add_argument("--suppress", action="append", default=[],
                      metavar="RULE")
    p_an.add_argument("--rules", default=None, metavar="ID[,ID...]")
    p_an.add_argument("--explain", default=None, metavar="RULE")
    p_an.add_argument("--list-rules", action="store_true")
    p_an.set_defaults(func=_cmd_analyze)

    args = parser.parse_args(argv)
    trace_json = getattr(args, "trace_json", None)
    if trace_json:
        import json

        from repro.obs import metrics as obs_metrics
        from repro.obs.trace import tracing

        obs_metrics.REGISTRY.reset()
        _seed_required_metrics()
        with tracing() as trace:
            status = args.func(args)
        with open(trace_json, "w", encoding="ascii") as f:
            json.dump(_trace_payload(trace), f, indent=2, sort_keys=True)
        print(f"wrote {trace_json}")
        return status
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
