"""Layout -> PEEC circuit compilation.

The central constructor of the detailed model (paper Figure 2):

* every in-plane metal segment becomes an RLC-pi section -- series
  resistance + partial self inductance between its end nodes, half its
  grounded capacitance at each end;
* partial mutual inductances couple all parallel segments (optionally
  filtered through a Section-4 :class:`~repro.sparsify.base.Sparsifier`);
* coupling capacitance connects adjacent parallel lines;
* vias become resistances between layers.

Device decap, switching activity, and package attachments are separate
composable passes (:mod:`repro.peec.decap`, :mod:`~repro.peec.activity`,
:mod:`~repro.peec.package`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.netlist import GROUND, Circuit
from repro.extraction.capacitance import (
    CapacitanceModel,
    coupling_capacitance_per_length,
)
from repro.extraction.partial_matrix import (
    PartialInductanceResult,
    extract_partial_inductance,
)
from repro.extraction.resistance import segment_resistance, via_resistance
from repro.geometry.clocktree import TapPoint
from repro.geometry.layout import Layout, quantize_point
from repro.geometry.segment import Direction, Segment
from repro.obs.trace import span
from repro.sparsify.base import (
    DenseInductance,
    InductanceBlocks,
    Sparsifier,
    traced_apply,
)


@dataclass
class PEECOptions:
    """Knobs of the PEEC compilation.

    Attributes:
        include_inductance: ``True`` builds the RLC model; ``False`` the RC
            model (the paper's "PEEC (RC)" baseline in Table 1).
        sparsifier: Section-4 strategy for the mutual-inductance structure;
            ``None`` keeps the full dense matrix (detailed PEEC).
        include_coupling_caps: Extract coupling capacitance between
            adjacent lines.
        capacitance: Capacitance model parameters.
        max_segment_length: Split segments longer than this into series
            pi-sections before extraction [m]; ``None`` keeps the
            generator's segmentation.
        max_strip_width: Split conductors wider than this into parallel
            strips before inductance extraction [m] -- the paper's "very
            wide conductors must be split into narrower lines before
            computing inductance", which lets high-frequency current crowd
            toward a wide line's edges.  ``None`` disables.
        mutual_min_coupling: Mutual terms with coupling coefficient below
            this are not even extracted (pure noise floor; distinct from
            Section-4 sparsification, which operates on physically
            meaningful couplings).  0 extracts everything.
        fallback: Degrade gracefully when the requested sparsifier fails
            or produces a non-passive (indefinite) inductance structure:
            fall back to block-diagonal sparsification, then to the dense
            matrix, recording the downgrade in the active
            :class:`~repro.resilience.report.RunReport`.  ``False``
            propagates the failure (pre-resilience behavior).
    """

    include_inductance: bool = True
    sparsifier: Sparsifier | None = None
    include_coupling_caps: bool = True
    capacitance: CapacitanceModel = field(default_factory=CapacitanceModel)
    max_segment_length: float | None = None
    max_strip_width: float | None = None
    mutual_min_coupling: float = 0.0
    fallback: bool = True


class PEECModel:
    """A compiled PEEC circuit plus the geometry-to-circuit bookkeeping.

    Attributes:
        circuit: The simulatable netlist.
        layout: Source layout.
        options: Compilation options used.
        inductance: The raw extraction result (``None`` for RC models).
        node_info: node name -> (net, layer) for attachment passes.
    """

    def __init__(
        self,
        circuit: Circuit,
        layout: Layout,
        options: PEECOptions,
        inductance: PartialInductanceResult | None,
        node_by_point: dict[tuple[int, int, int], str],
        node_info: dict[str, tuple[str, str]],
        terminals: dict[str, list[tuple[tuple[float, float, float], str]]],
    ) -> None:
        self.circuit = circuit
        self.layout = layout
        self.options = options
        self.inductance = inductance
        self._node_by_point = node_by_point
        self.node_info = node_info
        self._terminals = terminals

    def node_at_point(self, point: tuple[float, float, float]) -> str:
        """Circuit node at an exact geometric point (raises if absent)."""
        key = quantize_point(point)
        try:
            return self._node_by_point[key]
        except KeyError:
            raise KeyError(
                f"no circuit node at {point}; use node_at() for nearest-"
                "terminal lookup"
            ) from None

    def node_at(self, tap: TapPoint, tolerance: float = 1e-6) -> str:
        """Circuit node nearest to a tap point on the tap's net.

        Args:
            tap: Where a device wants to attach.
            tolerance: Maximum acceptable distance [m]; generator-produced
                taps coincide exactly with terminals.
        """
        layer = self.layout.layer(tap.layer)
        target = (tap.x, tap.y, layer.z_center)
        candidates = self._terminals.get(tap.net)
        if not candidates:
            raise KeyError(f"net {tap.net!r} has no terminals in this model")
        best_point, best_node = min(
            candidates, key=lambda pn: math.dist(pn[0], target)
        )
        if math.dist(best_point, target) > tolerance:
            raise ValueError(
                f"nearest terminal of net {tap.net!r} is "
                f"{math.dist(best_point, target):.3e} m from tap "
                f"{tap.name!r}; exceeds tolerance {tolerance:.1e}"
            )
        return best_node

    def pad_nodes(self) -> dict[str, tuple[str, str]]:
        """pad name -> (circuit node, net) for every pad in the layout.

        Useful for exposing pads as reduction ports and attaching the
        package model from a host circuit.
        """
        out: dict[str, tuple[str, str]] = {}
        for pad in self.layout.pads:
            layers = sorted(
                (self.layout.layer(lay).index, lay)
                for _, (net, lay) in self.node_info.items()
                if net == pad.net
            )
            if not layers:
                raise KeyError(f"net {pad.net!r} has no nodes in the model")
            top_layer = layers[-1][1]
            node = self.node_at(
                TapPoint(pad.net, pad.x, pad.y, top_layer, pad.name)
            )
            out[pad.name] = (node, pad.net)
        return out

    def nodes_of_net(self, net: str, layer: str | None = None) -> list[str]:
        """All circuit nodes belonging to a net (optionally one layer)."""
        return sorted(
            node
            for node, (n, lay) in self.node_info.items()
            if n == net and (layer is None or lay == layer)
        )

    def stats(self) -> dict[str, int]:
        """Circuit composition (Table-1 columns)."""
        return self.circuit.stats()


def _split_segments(
    layout: Layout,
    max_length: float | None,
    max_width: float | None = None,
) -> list[tuple[Segment, tuple, tuple]]:
    """Refine segments; returns (segment, terminal A, terminal B) triples.

    Axial pieces keep their own endpoints.  Width-split strips are bonded
    at their *parent piece's* endpoints (the strips of one wire are a
    single electrical conductor, exactly like the loop extractor's
    filaments), so connectivity with abutting segments and vias survives.
    """
    out: list[tuple[Segment, tuple, tuple]] = []
    for seg in layout.segments:
        if max_length is None or seg.length <= max_length:
            pieces = [seg]
        else:
            pieces = seg.split(max(1, int(math.ceil(seg.length / max_length))))
        for piece in pieces:
            a, b = piece.endpoints()
            if max_width is not None and seg.direction != Direction.Z:
                strips = max(1, int(math.ceil(piece.width / max_width)))
            else:
                strips = 1
            if strips == 1:
                out.append((piece, a, b))
            else:
                for strip in piece.widthwise_strips(strips):
                    out.append((strip, a, b))
    return out


def build_peec_model(layout: Layout, options: PEECOptions | None = None) -> PEECModel:
    """Compile a layout into a PEEC circuit.

    Args:
        layout: The interconnect layout (validated or generator-produced).
        options: Compilation options; defaults to the full detailed RLC
            model with dense mutual inductance.

    Returns:
        The compiled model.
    """
    options = options or PEECOptions()
    with span(
        "peec.assembly",
        layout=layout.name,
        segments=len(layout.segments),
        inductance=options.include_inductance,
    ):
        return _build_peec_model(layout, options)


def _build_peec_model(layout: Layout, options: PEECOptions) -> PEECModel:
    circuit = Circuit(name=f"peec:{layout.name}")

    segments = _split_segments(
        layout, options.max_segment_length, options.max_strip_width
    )

    node_by_point: dict[tuple[int, int, int], str] = {}
    node_info: dict[str, tuple[str, str]] = {}
    terminals: dict[str, list[tuple[tuple[float, float, float], str]]] = {}
    registered: set[tuple[str, tuple[int, int, int]]] = set()

    def node_for(point: tuple[float, float, float], net: str, layer: str) -> str:
        key = quantize_point(point)
        name = node_by_point.get(key)
        if name is None:
            name = f"n{len(node_by_point)}"
            node_by_point[key] = name
            node_info[name] = (net, layer)
        # A point shared by two nets (abutting segments) must be findable
        # through either net's tap lookup.
        if (net, key) not in registered:
            registered.add((net, key))
            terminals.setdefault(net, []).append((point, name))
        return name

    # -- segment branches -----------------------------------------------
    branch_nodes: list[tuple[str, str]] = []
    inplane: list[Segment] = []
    for seg, a, b in segments:
        if seg.direction == Direction.Z:
            continue
        na = node_for(a, seg.net, seg.layer)
        nb = node_for(b, seg.net, seg.layer)
        inplane.append(seg)
        branch_nodes.append((na, nb))

    layer_of = {layer.name: layer for layer in layout.layers}
    if options.include_inductance:
        extraction = extract_partial_inductance(inplane)
        if options.mutual_min_coupling > 0.0:
            matrix = extraction.matrix
            diag = np.sqrt(np.diagonal(matrix))
            rel = np.abs(matrix) / np.outer(diag, diag)
            drop = rel < options.mutual_min_coupling
            np.fill_diagonal(drop, False)
            matrix[drop] = 0.0
        sparsifier = options.sparsifier or DenseInductance()
        if options.fallback:
            from repro.resilience.degrade import sparsify_with_fallback

            blocks, _ = sparsify_with_fallback(extraction, sparsifier)
        else:
            blocks = traced_apply(sparsifier, extraction)
        _stamp_rl(circuit, inplane, branch_nodes, blocks, layer_of)
    else:
        extraction = None
        for k, seg in enumerate(inplane):
            na, nb = branch_nodes[k]
            circuit.add_resistor(
                f"R_{seg.name}", na, nb,
                segment_resistance(seg, layer_of[seg.layer]),
            )

    # -- grounded capacitance (half at each end of every segment) ----------
    cap_at_node: dict[str, float] = {}
    for k, seg in enumerate(inplane):
        c_total = options.capacitance.segment_ground_capacitance(seg, layout)
        na, nb = branch_nodes[k]
        cap_at_node[na] = cap_at_node.get(na, 0.0) + c_total / 2.0
        cap_at_node[nb] = cap_at_node.get(nb, 0.0) + c_total / 2.0
    for node, cap in sorted(cap_at_node.items()):
        circuit.add_capacitor(f"Cg_{node}", node, GROUND, cap)

    # -- coupling capacitance ----------------------------------------------
    if options.include_coupling_caps:
        pair_caps: dict[tuple[str, str], float] = {}
        coupling = _coupling_for_segments(inplane, options.capacitance)
        for i, j, c in coupling:
            ends_i = branch_nodes[i]
            ends_j = branch_nodes[j]
            # Pair nearest ends: start-with-start when spans are aligned.
            si, sj = inplane[i], inplane[j]
            if abs(si.axis_start - sj.axis_start) <= abs(si.axis_start - sj.axis_end):
                pairs = [(ends_i[0], ends_j[0]), (ends_i[1], ends_j[1])]
            else:
                pairs = [(ends_i[0], ends_j[1]), (ends_i[1], ends_j[0])]
            for na, nb in pairs:
                if na == nb:
                    continue
                key = (na, nb) if na < nb else (nb, na)
                pair_caps[key] = pair_caps.get(key, 0.0) + c / 2.0
        for (na, nb), cap in sorted(pair_caps.items()):
            circuit.add_capacitor(f"Cc_{na}_{nb}", na, nb, cap)

    # -- vias -------------------------------------------------------------------
    for via in layout.vias:
        bottom, top = layout.via_endpoints(via)
        kb = quantize_point(bottom)
        kt = quantize_point(top)
        if kb not in node_by_point or kt not in node_by_point:
            raise ValueError(
                f"via {via.name} does not land on segment terminals; run "
                "layout.validate() to diagnose"
            )
        circuit.add_resistor(
            f"Rv_{via.name}",
            node_by_point[kb],
            node_by_point[kt],
            via_resistance(via),
        )

    return PEECModel(
        circuit=circuit,
        layout=layout,
        options=options,
        inductance=extraction,
        node_by_point=node_by_point,
        node_info=node_info,
        terminals=terminals,
    )


def _stamp_rl(
    circuit: Circuit,
    inplane: list[Segment],
    branch_nodes: list[tuple[str, str]],
    blocks: InductanceBlocks,
    layer_of: dict,
) -> None:
    """Emit R + L(set) series branches for every segment."""
    for k, seg in enumerate(inplane):
        na, _ = branch_nodes[k]
        mid = circuit.node(f"m{k}")
        circuit.add_resistor(
            f"R_{seg.name}", na, mid,
            segment_resistance(seg, layer_of[seg.layer]),
        )
    for b, (indices, matrix) in enumerate(blocks.blocks):
        branches = tuple(
            (f"m{k}", branch_nodes[k][1]) for k in indices
        )
        if blocks.kind == "L":
            circuit.add_inductor_set(f"Lp{b}", branches, matrix)
        else:
            circuit.add_k_set(f"Kp{b}", branches, matrix)


def _coupling_for_segments(
    segments: list[Segment], model: CapacitanceModel
) -> list[tuple[int, int, float]]:
    """Coupling capacitances over an explicit segment list."""
    out: list[tuple[int, int, float]] = []
    for i in range(len(segments)):
        si = segments[i]
        if si.direction == Direction.Z:
            continue
        for j in range(i + 1, len(segments)):
            sj = segments[j]
            if sj.direction == Direction.Z or not si.is_parallel(sj):
                continue
            if si.layer != sj.layer:
                continue
            overlap = si.axial_overlap(sj)
            if overlap <= 0:
                continue
            gap = si.gap(sj)
            if gap <= 0 or gap > model.coupling_max_gap:
                continue
            height = si.origin[2]
            c = coupling_capacitance_per_length(
                si.thickness, gap, height, min(si.width, sj.width), model.eps_r
            ) * overlap
            if c > 0:
                out.append((i, j, c))
    return out
