"""Pad / package parasitics (paper Section 3, "Pad/Package models").

"External power and ground are routed to a chip via package leads and
pads.  The parasitic inductances associated with the package must be
modeled, since they affect on-chip behavior significantly.  In the PEEC
model, it is assumed that the package planes are ideal ... The package is
modeled as a bar, including the pad and a via between the pad and
package."

Each pad gets an ideal external supply behind a series R + L bar model.
The inductance value dominates the chip-level L*di/dt supply noise, which
is why the paper calls it out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import GROUND
from repro.geometry.clocktree import TapPoint
from repro.peec.model import PEECModel


@dataclass
class PackageSpec:
    """Per-pad package parasitics and rail voltages.

    Attributes:
        resistance: Series resistance per pad (lead + bump + pad) [ohm].
        inductance: Series inductance per pad (bar model of lead + via)
            [H].
        rail_voltages: Net name -> ideal external rail voltage [V]
            (typically VDD -> supply voltage, GND -> 0).
    """

    resistance: float = 0.1
    inductance: float = 1.0e-9
    rail_voltages: dict[str, float] = field(
        default_factory=lambda: {"VDD": 1.2, "GND": 0.0}
    )

    def __post_init__(self) -> None:
        if self.resistance <= 0 or self.inductance <= 0:
            raise ValueError("package R and L must be positive")


def attach_package(model: PEECModel, spec: PackageSpec | None = None) -> list[str]:
    """Attach ideal supplies through package RL to every pad in the layout.

    Args:
        model: A compiled PEEC model whose layout has pads.
        spec: Package parameters; nets missing from ``rail_voltages`` get
            their pads skipped (with an error, to catch typos).

    Returns:
        Names of the voltage sources added (one per pad), so analyses can
        measure per-pad supply currents.
    """
    spec = spec or PackageSpec()
    circuit = model.circuit
    if not model.layout.pads:
        raise ValueError(
            f"layout {model.layout.name!r} has no pads; generate the grid "
            "with pads or add them explicitly"
        )
    sources = []
    for pad in model.layout.pads:
        if pad.net not in spec.rail_voltages:
            raise KeyError(
                f"pad {pad.name!r} is on net {pad.net!r}, which has no rail "
                f"voltage in PackageSpec ({sorted(spec.rail_voltages)})"
            )
        voltage = spec.rail_voltages[pad.net]
        # Pads sit on the highest grid layer carrying their net.
        tap_layer = _pad_layer(model, pad)
        pad_node = model.node_at(
            TapPoint(pad.net, pad.x, pad.y, tap_layer, pad.name)
        )
        ext = circuit.node(f"ext_{pad.name}")
        mid = circuit.node(f"pkg_{pad.name}")
        src = circuit.add_vsource(f"Vpkg_{pad.name}", ext, GROUND, voltage)
        circuit.add_resistor(f"Rpkg_{pad.name}", ext, mid, spec.resistance)
        circuit.add_inductor(f"Lpkg_{pad.name}", mid, pad_node, spec.inductance)
        sources.append(src.name)
    return sources


def attach_package_to_nodes(
    circuit,
    pad_bindings: dict[str, tuple[str, str]],
    spec: PackageSpec | None = None,
) -> list[str]:
    """Attach package RL + ideal rails to explicit circuit nodes.

    The host-circuit counterpart of :func:`attach_package`, used when the
    grid lives inside a reduced macromodel and the pads surface as ports.

    Args:
        circuit: Host circuit to extend.
        pad_bindings: pad name -> (host node, net name) as returned by
            :meth:`PEECModel.pad_nodes` (with nodes remapped to the host).
        spec: Package parameters.

    Returns:
        Names of the voltage sources added.
    """
    spec = spec or PackageSpec()
    sources = []
    for pad_name, (node, net) in sorted(pad_bindings.items()):
        if net not in spec.rail_voltages:
            raise KeyError(
                f"pad {pad_name!r} is on net {net!r} with no rail voltage"
            )
        ext = circuit.node(f"ext_{pad_name}")
        mid = circuit.node(f"pkg_{pad_name}")
        src = circuit.add_vsource(
            f"Vpkg_{pad_name}", ext, GROUND, spec.rail_voltages[net]
        )
        circuit.add_resistor(f"Rpkg_{pad_name}", ext, mid, spec.resistance)
        circuit.add_inductor(f"Lpkg_{pad_name}", mid, node, spec.inductance)
        sources.append(src.name)
    return sources


def _pad_layer(model: PEECModel, pad) -> str:
    """Highest layer on which the pad's net has metal."""
    layers = {
        lay
        for _, (net, lay) in model.node_info.items()
        if net == pad.net
    }
    if not layers:
        raise KeyError(f"net {pad.net!r} has no nodes in the model")
    by_index = {model.layout.layer(name).index: name for name in layers}
    return by_index[max(by_index)]
