"""PEEC circuit-model construction (paper Section 3).

Turns a :class:`~repro.geometry.layout.Layout` into the detailed circuit
model of the paper's Figure 2: an RLC-pi section per metal segment,
partial self/mutual inductances (optionally sparsified), coupling
capacitance between adjacent lines, via resistances, device decoupling
capacitance, background switching-activity current sources, and
pad/package RL models.
"""

from repro.peec.model import PEECModel, PEECOptions, build_peec_model
from repro.peec.package import PackageSpec, attach_package, attach_package_to_nodes
from repro.peec.decap import attach_decaps, estimate_decoupling_capacitance
from repro.peec.activity import DEFAULT_ACTIVITY_SEED, attach_switching_activity
from repro.peec.substrate import (
    SubstrateSpec,
    attach_nwell_capacitance,
    attach_substrate,
)

__all__ = [
    "PEECModel",
    "PEECOptions",
    "build_peec_model",
    "PackageSpec",
    "attach_package",
    "attach_package_to_nodes",
    "attach_decaps",
    "estimate_decoupling_capacitance",
    "attach_switching_activity",
    "DEFAULT_ACTIVITY_SEED",
    "SubstrateSpec",
    "attach_substrate",
    "attach_nwell_capacitance",
]
