"""Device decoupling capacitance (paper Section 3).

"During normal chip operation, approximately 10-20% of the gates switch
while the remaining 80-90% remain static.  The parasitic device
capacitance of these non-switching gates results in a significant
decoupling capacitance effect, which reduces IR-drop and changes current
distribution by allowing current to jump from one grid to the other."

The paper estimates this statistically from representative circuit blocks
(ref [12]); block data being proprietary, we parameterize the same model
by total transistor width: decap scales linearly with the non-switching
width ("capacitance values of one block can be easily translated to other
circuit blocks based on the relative circuit sizes (total transistor
widths)").
"""

from __future__ import annotations

import numpy as np

from repro.peec.model import PEECModel

#: Gate + junction capacitance per meter of transistor width [F/m];
#: ~1.5 fF/um is representative of ~0.18 um CMOS.
CAP_PER_WIDTH = 1.5e-9

#: Effective series resistance of the decap path per farad [ohm*F]; models
#: channel resistance of the non-switching devices.
ESR_TIMES_C = 0.5e-12


def estimate_decoupling_capacitance(
    total_transistor_width: float,
    switching_fraction: float = 0.15,
    cap_per_width: float = CAP_PER_WIDTH,
) -> float:
    """Total decap [F] contributed by the non-switching devices.

    Args:
        total_transistor_width: Sum of transistor widths in the region [m].
        switching_fraction: Fraction of gates switching (paper: 10-20%).
        cap_per_width: Device capacitance per transistor width [F/m].
    """
    if not 0.0 <= switching_fraction <= 1.0:
        raise ValueError("switching_fraction must be in [0, 1]")
    if total_transistor_width < 0:
        raise ValueError("total_transistor_width must be non-negative")
    return cap_per_width * total_transistor_width * (1.0 - switching_fraction)


def attach_decaps(
    model: PEECModel,
    total_capacitance: float,
    count: int = 8,
    power_net: str = "VDD",
    ground_net: str = "GND",
    layer: str | None = None,
    esr_times_c: float = ESR_TIMES_C,
    rng: np.random.Generator | None = None,
) -> list[str]:
    """Distribute series-RC decaps between the power and ground grids.

    Decaps attach between power and ground nodes on the lowest grid layer
    (where "gates draw power"), at pseudo-random but reproducible
    locations.

    Args:
        model: Compiled PEEC model containing both grids.
        total_capacitance: Total decap to distribute [F].
        count: Number of lumped decap instances.
        power_net: Power net name.
        ground_net: Ground net name.
        layer: Attachment layer; ``None`` uses the lowest layer carrying
            both nets.
        esr_times_c: ESR * C product; per-instance ESR is derived from it.
        rng: Seeded generator for reproducible placement.

    Returns:
        Names of the capacitor elements added.
    """
    if total_capacitance <= 0:
        raise ValueError("total_capacitance must be positive")
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = rng or np.random.default_rng(2001)
    layer = layer or _lowest_common_layer(model, power_net, ground_net)
    p_nodes = model.nodes_of_net(power_net, layer)
    g_nodes = model.nodes_of_net(ground_net, layer)
    if not p_nodes or not g_nodes:
        raise ValueError(
            f"no nodes for {power_net!r}/{ground_net!r} on layer {layer!r}"
        )
    c_each = total_capacitance / count
    esr = esr_times_c / c_each
    names = []
    for k in range(count):
        np_node = p_nodes[int(rng.integers(len(p_nodes)))]
        ng_node = g_nodes[int(rng.integers(len(g_nodes)))]
        mid = model.circuit.node(f"decap{k}:m")
        model.circuit.add_resistor(f"Rdecap{k}", np_node, mid, max(esr, 1e-3))
        cap = model.circuit.add_capacitor(f"Cdecap{k}", mid, ng_node, c_each)
        names.append(cap.name)
    return names


def _lowest_common_layer(model: PEECModel, power_net: str, ground_net: str) -> str:
    layers_p = {
        model.layout.layer(lay).index: lay
        for _, (net, lay) in model.node_info.items()
        if net == power_net
    }
    layers_g = {
        model.layout.layer(lay).index: lay
        for _, (net, lay) in model.node_info.items()
        if net == ground_net
    }
    common = sorted(set(layers_p) & set(layers_g))
    if not common:
        raise ValueError(
            f"nets {power_net!r} and {ground_net!r} share no layer"
        )
    return layers_p[common[0]]
