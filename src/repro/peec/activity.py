"""Background switching-activity current sources (paper Section 3).

"In addition to the signal of interest, other signals switch
simultaneously.  Those gates draw current from the power grid and inject
it into the ground grid, causing voltage fluctuations and affecting
current distribution.  This effect is modeled by using time-varying
current sources connected at random locations on the lowest metal layer.
The current value changes with time during the simulation, to account for
different parts of the chip switching at different times."

Each source is a triangular current pulse (a gate's charge packet) between
a random power node and a random ground node on the lowest grid layer,
with randomized start times spread over the activity window.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.waveforms import PWL
from repro.peec.model import PEECModel

#: Default seed for background-activity placement/timing.  Named (rather
#: than an inline literal) so flow configs can reference the same value:
#: table1/flow runs with background activity must be reproducible, and a
#: silently unseeded generator here would make them differ run to run.
DEFAULT_ACTIVITY_SEED = 101


def triangular_pulse(
    start: float, peak_current: float, rise: float, fall: float
) -> PWL:
    """A single triangular current pulse starting at ``start``."""
    if rise <= 0 or fall <= 0:
        raise ValueError("rise and fall must be positive")
    return PWL(
        points=(
            (start, 0.0),
            (start + rise, peak_current),
            (start + rise + fall, 0.0),
        )
    )


def attach_switching_activity(
    model: PEECModel,
    num_sources: int = 8,
    peak_current: float = 1e-3,
    window: tuple[float, float] = (0.0, 0.5e-9),
    rise: float = 30e-12,
    fall: float = 70e-12,
    power_net: str = "VDD",
    ground_net: str = "GND",
    layer: str | None = None,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> list[str]:
    """Attach randomized background-activity current sources.

    Args:
        model: Compiled PEEC model with both supply grids.
        num_sources: Number of current sources.
        peak_current: Peak of each triangular pulse [A].
        window: (earliest, latest) pulse start times [s].
        rise: Pulse rise time [s].
        fall: Pulse fall time [s].
        power_net: Power net name (current drawn from here).
        ground_net: Ground net name (current injected here).
        layer: Attachment layer; ``None`` uses the lowest layer carrying
            both nets.
        seed: Seed for the default generator; ``None`` uses
            :data:`DEFAULT_ACTIVITY_SEED` (so repeated runs place and
            time the sources identically).
        rng: Explicit generator for reproducible placement/timing;
            overrides ``seed`` when given.

    Returns:
        Names of the current sources added.
    """
    if num_sources < 1:
        raise ValueError("num_sources must be >= 1")
    if peak_current <= 0:
        raise ValueError("peak_current must be positive")
    if rng is None:
        rng = np.random.default_rng(
            DEFAULT_ACTIVITY_SEED if seed is None else seed
        )
    from repro.peec.decap import _lowest_common_layer

    layer = layer or _lowest_common_layer(model, power_net, ground_net)
    p_nodes = model.nodes_of_net(power_net, layer)
    g_nodes = model.nodes_of_net(ground_net, layer)
    if not p_nodes or not g_nodes:
        raise ValueError(
            f"no nodes for {power_net!r}/{ground_net!r} on layer {layer!r}"
        )
    t_lo, t_hi = window
    if t_hi < t_lo:
        raise ValueError("activity window must have t_hi >= t_lo")
    names = []
    for k in range(num_sources):
        np_node = p_nodes[int(rng.integers(len(p_nodes)))]
        ng_node = g_nodes[int(rng.integers(len(g_nodes)))]
        start = float(rng.uniform(t_lo, t_hi))
        src = model.circuit.add_isource(
            f"Iact{k}",
            np_node,
            ng_node,
            triangular_pulse(start, peak_current, rise, fall),
        )
        names.append(src.name)
    return names
