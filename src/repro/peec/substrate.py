"""Substrate network and N-well capacitance extensions.

"This model can also easily be extended to include substrate models,
N-well capacitance and explicit decoupling capacitance."  (Paper,
Section 3.)  This module is that extension:

* :func:`attach_substrate` -- a resistive mesh under the die,
  capacitively coupled to the on-chip ground grid and tied to the
  package ground through substrate contacts.  At high frequency the
  low-impedance substrate becomes an additional return path (the effect
  the authors analyze in their companion work on substrate/power-grid
  interaction).
* :func:`attach_nwell_capacitance` -- the reverse-biased N-well-to-
  substrate junction capacitance, which acts as distributed decap
  between VDD and the substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import GROUND
from repro.peec.model import PEECModel

#: Junction capacitance of an N-well per area [F/m^2]; ~0.1 fF/um^2.
NWELL_CAP_PER_AREA = 1e-4

#: Substrate contact resistance per tap [ohm].
SUBSTRATE_TAP_RESISTANCE = 5.0


@dataclass(frozen=True)
class SubstrateSpec:
    """Substrate mesh parameters.

    Attributes:
        mesh: Substrate nodes per axis (mesh x mesh grid).
        sheet_resistance: Substrate sheet resistance [ohm/sq]; heavily
            doped (low-impedance) substrates are ~1-10, lightly doped
            hundreds.
        coupling_cap_per_node: Capacitance from each on-chip ground node
            to the nearest substrate node [F] (junction + well caps of
            the local devices).
        tap_fraction: Fraction of substrate nodes tied to the ground grid
            through substrate contacts.
    """

    mesh: int = 3
    sheet_resistance: float = 10.0
    coupling_cap_per_node: float = 5e-15
    tap_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.mesh < 2:
            raise ValueError("mesh must be >= 2")
        if self.sheet_resistance <= 0:
            raise ValueError("sheet_resistance must be positive")
        if not 0.0 < self.tap_fraction <= 1.0:
            raise ValueError("tap_fraction must be in (0, 1]")


def attach_substrate(
    model: PEECModel,
    spec: SubstrateSpec | None = None,
    ground_net: str = "GND",
    rng: np.random.Generator | None = None,
) -> list[str]:
    """Attach a resistive substrate mesh under the layout.

    The mesh spans the layout's bounding box; every on-chip ground node on
    the lowest ground-carrying layer couples capacitively to its nearest
    substrate node, and a ``tap_fraction`` of substrate nodes connect to
    the same ground nodes resistively (substrate contacts).

    Returns:
        Names of the substrate mesh nodes created (row-major).
    """
    spec = spec or SubstrateSpec()
    rng = rng or np.random.default_rng(7)
    circuit = model.circuit
    (x0, y0, _), (x1, y1, _) = model.layout.bounding_box()

    n = spec.mesh
    xs = np.linspace(x0, x1, n)
    ys = np.linspace(y0, y1, n)
    node_names: list[str] = []
    for j in range(n):
        for i in range(n):
            node_names.append(circuit.node(f"sub_{i}_{j}"))

    def name(i: int, j: int) -> str:
        return f"sub_{i}_{j}"

    # Mesh resistors: one square between neighbouring nodes.
    for j in range(n):
        for i in range(n):
            if i + 1 < n:
                circuit.add_resistor(
                    f"Rsub_h_{i}_{j}", name(i, j), name(i + 1, j),
                    spec.sheet_resistance,
                )
            if j + 1 < n:
                circuit.add_resistor(
                    f"Rsub_v_{i}_{j}", name(i, j), name(i, j + 1),
                    spec.sheet_resistance,
                )

    # Couple the on-chip ground grid to the substrate.
    gnd_layers = sorted(
        {model.layout.layer(lay).index
         for _, (net, lay) in model.node_info.items() if net == ground_net}
    )
    if not gnd_layers:
        raise ValueError(f"no {ground_net!r} nodes to couple the substrate to")
    lowest = next(
        lay.name for lay in model.layout.layers
        if lay.index == gnd_layers[0]
    )
    gnd_nodes = model.nodes_of_net(ground_net, lowest)

    # Geometric positions of ground nodes for nearest-substrate matching.
    positions = {}
    for key, node in model._node_by_point.items():
        if node in set(gnd_nodes):
            positions[node] = (key[0] * 1e-10, key[1] * 1e-10)

    tap_candidates = []
    for k, node in enumerate(gnd_nodes):
        px, py = positions[node]
        i = int(np.clip(np.searchsorted(xs, px), 0, n - 1))
        j = int(np.clip(np.searchsorted(ys, py), 0, n - 1))
        circuit.add_capacitor(
            f"Csub_{k}", node, name(i, j), spec.coupling_cap_per_node
        )
        tap_candidates.append((node, name(i, j)))

    # Substrate contacts: resistive ties for a fraction of the couplings.
    num_taps = max(1, int(round(spec.tap_fraction * len(tap_candidates))))
    pick = rng.choice(len(tap_candidates), size=num_taps, replace=False)
    for t, idx in enumerate(pick):
        gnd_node, sub_node = tap_candidates[int(idx)]
        circuit.add_resistor(
            f"Rtap_{t}", gnd_node, sub_node, SUBSTRATE_TAP_RESISTANCE
        )
    # Leak to the reference so the mesh has a DC level even without taps.
    circuit.add_resistor("Rsub_ref", name(0, 0), GROUND, 1e6)
    return node_names


def attach_nwell_capacitance(
    model: PEECModel,
    total_well_area: float,
    power_net: str = "VDD",
    count: int = 6,
    cap_per_area: float = NWELL_CAP_PER_AREA,
    series_resistance: float = 2.0,
    rng: np.random.Generator | None = None,
) -> list[str]:
    """Attach N-well junction capacitance between VDD and ground.

    The reverse-biased well-substrate junction of every N-well acts as
    free decap from the power net to the substrate/ground system; the
    paper lists it as a model extension next to explicit decap.

    Args:
        model: Compiled PEEC model.
        total_well_area: Total N-well area in the region [m^2].
        power_net: Net the wells tie to.
        count: Number of lumped well instances to distribute.
        cap_per_area: Junction capacitance density [F/m^2].
        series_resistance: Well resistance in series with each lump [ohm].
        rng: Seeded generator for placement.

    Returns:
        Names of the capacitors added.
    """
    if total_well_area <= 0:
        raise ValueError("total_well_area must be positive")
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = rng or np.random.default_rng(11)
    total_cap = total_well_area * cap_per_area
    vdd_nodes = model.nodes_of_net(power_net)
    if not vdd_nodes:
        raise ValueError(f"no nodes on net {power_net!r}")
    names = []
    for k in range(count):
        node = vdd_nodes[int(rng.integers(len(vdd_nodes)))]
        mid = model.circuit.node(f"nwell{k}:m")
        model.circuit.add_resistor(f"Rnwell{k}", node, mid,
                                   series_resistance)
        cap = model.circuit.add_capacitor(
            f"Cnwell{k}", mid, GROUND, total_cap / count
        )
        names.append(cap.name)
    return names
