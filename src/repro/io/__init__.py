"""Interchange: SPICE netlist export.

The paper's flow hands its models to a production SPICE ("the complete
circuit is simulated in SPICE").  This package writes any
:class:`~repro.circuit.netlist.Circuit` -- including PEEC models with
dense mutual-inductance blocks -- as a standard SPICE deck, so results
can be cross-checked against an external simulator.
"""

from repro.io.spice import write_spice
from repro.io.parser import ParsedDeck, SpiceParseError, read_spice

__all__ = ["write_spice", "read_spice", "ParsedDeck", "SpiceParseError"]
