"""SPICE netlist import.

Parses the deck subset :func:`repro.io.spice.write_spice` emits -- R, C,
L, K coupling lines, and V/I sources with DC / PULSE / PWL / SIN
specifications -- into a :class:`~repro.circuit.netlist.Circuit`.  This
closes the round trip: decks produced here (or by other tools within this
subset) simulate directly on the in-package MNA engine.

Supported syntax:

* one element per line; ``+`` continuation lines; ``*`` comments;
* SPICE engineering suffixes (``f p n u m k meg g t``) and plain
  exponents;
* ``.end`` terminates; other dot-cards are ignored (with a record in
  :attr:`ParsedDeck.ignored_cards`).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterable, TextIO

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import DC, PWL, Pulse, SineWave

_SUFFIXES = {
    "t": 1e12, "g": 1e9, "meg": 1e6, "k": 1e3, "m": 1e-3,
    "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15,
}

_NUMBER = re.compile(
    r"^([+-]?\d*\.?\d+(?:[eE][+-]?\d+)?)(t|g|meg|k|mil|m|u|n|p|f)?[a-z]*$",
    re.IGNORECASE,
)


class SpiceParseError(ValueError):
    """A deck line could not be interpreted."""


def parse_value(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix."""
    match = _NUMBER.match(token.strip())
    if not match:
        raise SpiceParseError(f"cannot parse number {token!r}")
    base = float(match.group(1))
    suffix = (match.group(2) or "").lower()
    if suffix == "mil":
        return base * 25.4e-6
    return base * _SUFFIXES.get(suffix, 1.0)


@dataclass
class ParsedDeck:
    """Result of parsing a SPICE deck.

    Attributes:
        circuit: The reconstructed netlist.
        title: The deck's title line.
        ignored_cards: Dot-cards that were skipped (``.tran`` etc.).
    """

    circuit: Circuit
    title: str
    ignored_cards: list[str] = field(default_factory=list)


def _logical_lines(stream: Iterable[str]) -> Iterable[str]:
    """Join ``+`` continuations, drop comments and blanks."""
    pending: str | None = None
    for raw in stream:
        line = raw.rstrip("\n")
        if line.startswith("+"):
            if pending is None:
                raise SpiceParseError("continuation line with no antecedent")
            pending += " " + line[1:]
            continue
        if pending is not None:
            yield pending
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            pending = None
            continue
        pending = stripped
    if pending is not None:
        yield pending


def _split_source_spec(tokens: list[str]) -> tuple[str, list[float]]:
    """('PULSE', [args...]) / ('DC', [v]) from the tail of a source line."""
    text = " ".join(tokens)
    match = re.match(r"^(dc)\s+(\S+)$", text, re.IGNORECASE)
    if match:
        return ("DC", [parse_value(match.group(2))])
    match = re.match(r"^(pulse|pwl|sin)\s*\((.*)\)$", text, re.IGNORECASE)
    if match:
        args = [parse_value(tok) for tok in match.group(2).split()]
        return (match.group(1).upper(), args)
    if len(tokens) == 1:
        return ("DC", [parse_value(tokens[0])])
    raise SpiceParseError(f"unsupported source specification {text!r}")


def _waveform(kind: str, args: list[float]):
    if kind == "DC":
        return DC(args[0])
    if kind == "PULSE":
        padded = args + [0.0] * (7 - len(args))
        v0, v1, delay, rise, fall, width, period = padded[:7]
        return Pulse(v0=v0, v1=v1, delay=delay,
                     rise_time=max(rise, 1e-15),
                     fall_time=max(fall, 1e-15),
                     width=width, period=period)
    if kind == "PWL":
        if len(args) % 2 != 0 or not args:
            raise SpiceParseError("PWL needs an even number of values")
        points = tuple(zip(args[0::2], args[1::2]))
        return PWL(points=points)
    if kind == "SIN":
        padded = args + [0.0] * (4 - len(args))
        offset, amplitude, freq, delay = padded[:4]
        return SineWave(offset=offset, amplitude=amplitude,
                        frequency=freq, delay=delay)
    raise SpiceParseError(f"unknown source kind {kind!r}")


def read_spice(stream: TextIO) -> ParsedDeck:
    """Parse a SPICE deck into a circuit.

    Args:
        stream: Text stream positioned at the title line.

    Returns:
        The parsed deck.

    Raises:
        SpiceParseError: Unsupported or malformed content.
    """
    lines = iter(stream)
    try:
        title = next(lines).strip().lstrip("* ")
    except StopIteration:
        raise SpiceParseError("empty deck") from None

    circuit = Circuit(title or "imported")
    ignored: list[str] = []
    couplings: list[tuple[str, str, str, float]] = []

    for line in _logical_lines(lines):
        lower = line.lower()
        if lower.startswith(".end"):
            break
        if lower.startswith("."):
            ignored.append(line)
            continue
        tokens = line.split()
        head = tokens[0]
        kind = head[0].upper()
        # Keep the full designator as the element name: SPICE names are
        # only unique per element class, Circuit names are global.
        name = head
        if kind == "R":
            circuit.add_resistor(name, tokens[1], tokens[2],
                                 parse_value(tokens[3]))
        elif kind == "C":
            circuit.add_capacitor(name, tokens[1], tokens[2],
                                  parse_value(tokens[3]))
        elif kind == "L":
            circuit.add_inductor(name, tokens[1], tokens[2],
                                 parse_value(tokens[3]))
        elif kind == "K":
            couplings.append((name, tokens[1], tokens[2],
                              parse_value(tokens[3])))
        elif kind in ("V", "I"):
            source_kind, args = _split_source_spec(tokens[3:])
            waveform = _waveform(source_kind, args)
            if kind == "V":
                circuit.add_vsource(name, tokens[1], tokens[2], waveform)
            else:
                circuit.add_isource(name, tokens[1], tokens[2], waveform)
        else:
            raise SpiceParseError(f"unsupported element line {line!r}")

    by_token = {l.name.lower(): l.name for l in circuit.inductors}
    for name, ref1, ref2, k in couplings:
        l1 = by_token.get(ref1.lower())
        l2 = by_token.get(ref2.lower())
        if l1 is None or l2 is None:
            raise SpiceParseError(
                f"coupling K{name} references unknown inductors "
                f"{ref1!r}/{ref2!r}"
            )
        la = next(l for l in circuit.inductors if l.name == l1)
        lb = next(l for l in circuit.inductors if l.name == l2)
        mutual = k * math.sqrt(la.inductance * lb.inductance)
        circuit.add_mutual(name, l1, l2, mutual)

    return ParsedDeck(circuit=circuit, title=title, ignored_cards=ignored)
