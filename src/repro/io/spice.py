"""SPICE netlist export.

Writes a :class:`~repro.circuit.netlist.Circuit` as a SPICE deck:

* R/C/L elements map directly;
* :class:`InductorSet` blocks expand into per-branch inductors plus
  pairwise ``K`` coupling-coefficient lines (the standard SPICE idiom for
  a partial-inductance matrix);
* sources map to DC / PULSE / PWL / SIN where the waveform type is known,
  and are sampled into PWL otherwise;
* K-matrix sets and state-space macromodels have no SPICE primitive and
  are rejected with a pointer to the conversion path (re-extract as L, or
  realize the macromodel before export).

Node names are sanitized to SPICE-safe tokens; ``"0"`` stays ground.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, TextIO

import numpy as np

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.waveforms import DC, PWL, Pulse, Ramp, SineWave

_SAFE = re.compile(r"[^A-Za-z0-9_]")


def _node(name: str) -> str:
    if name == GROUND:
        return "0"
    return _SAFE.sub("_", name)


def _fmt(value: float) -> str:
    """SPICE-friendly number formatting."""
    return f"{value:.9g}"


def _source_spec(waveform, t_stop: float | None) -> str:
    """Render a waveform as a SPICE source specification."""
    if isinstance(waveform, DC):
        return f"DC {_fmt(waveform.value)}"
    if isinstance(waveform, Ramp):
        return (
            f"PWL(0 {_fmt(waveform.v0)} {_fmt(waveform.delay)} "
            f"{_fmt(waveform.v0)} {_fmt(waveform.delay + waveform.rise_time)} "
            f"{_fmt(waveform.v1)})"
        )
    if isinstance(waveform, Pulse):
        return (
            f"PULSE({_fmt(waveform.v0)} {_fmt(waveform.v1)} "
            f"{_fmt(waveform.delay)} {_fmt(waveform.rise_time)} "
            f"{_fmt(waveform.fall_time)} {_fmt(waveform.width)} "
            f"{_fmt(waveform.period if waveform.period > 0 else 1.0)})"
        )
    if isinstance(waveform, PWL):
        points = " ".join(
            f"{_fmt(t)} {_fmt(v)}" for t, v in waveform.points
        )
        return f"PWL({points})"
    if isinstance(waveform, SineWave):
        return (
            f"SIN({_fmt(waveform.offset)} {_fmt(waveform.amplitude)} "
            f"{_fmt(waveform.frequency)} {_fmt(waveform.delay)})"
        )
    # Unknown callable: sample into PWL over [0, t_stop].
    if t_stop is None:
        raise ValueError(
            f"cannot export waveform {waveform!r}: unknown type and no "
            "t_stop given for PWL sampling"
        )
    times = np.linspace(0.0, t_stop, 101)
    points = " ".join(f"{_fmt(t)} {_fmt(waveform(t))}" for t in times)
    return f"PWL({points})"


def write_spice(
    circuit: Circuit,
    out: TextIO,
    title: str | None = None,
    t_stop: float | None = None,
    analysis: str | None = None,
) -> None:
    """Write ``circuit`` as a SPICE deck to ``out``.

    Args:
        circuit: The netlist to export.
        out: Destination stream.
        title: First (title) line; defaults to the circuit name.
        t_stop: Sampling horizon for waveforms with no native SPICE shape.
        analysis: Optional analysis card to append, e.g.
            ``".tran 1p 1n"``.

    Raises:
        ValueError: The circuit contains elements with no SPICE primitive
            (K-matrix sets, operator-backed inductor sets, macromodels,
            Python device objects).
    """
    if circuit.k_sets:
        raise ValueError(
            "K-matrix sets have no SPICE primitive; invert back to an "
            "InductorSet (numpy.linalg.inv of the K block) before export"
        )
    if circuit.macromodels:
        raise ValueError(
            "state-space macromodels have no SPICE primitive; export the "
            "unreduced circuit instead"
        )
    if circuit.operator_sets:
        raise ValueError(
            "operator-backed inductor sets (hierarchical partial-L) have "
            "no SPICE primitive; re-extract with assembly='exact' or "
            "densify the operator into an InductorSet before export"
        )
    if circuit.devices:
        raise ValueError(
            "Python device models cannot be exported; replace them with "
            "Thevenin drivers or add a .model yourself after export"
        )

    out.write(f"* {title or circuit.name}\n")
    out.write(f"* exported by repro (Inductance 101 reproduction)\n")

    for r in circuit.resistors:
        out.write(f"R{_node(r.name)} {_node(r.n1)} {_node(r.n2)} "
                  f"{_fmt(r.resistance)}\n")
    for c in circuit.capacitors:
        out.write(f"C{_node(c.name)} {_node(c.n1)} {_node(c.n2)} "
                  f"{_fmt(c.capacitance)}\n")

    inductor_names: dict[str, float] = {}
    for l in circuit.inductors:
        name = f"L{_node(l.name)}"
        inductor_names[l.name] = l.inductance
        out.write(f"{name} {_node(l.n1)} {_node(l.n2)} "
                  f"{_fmt(l.inductance)}\n")
    for m in circuit.mutuals:
        k = m.mutual / math.sqrt(
            inductor_names[m.inductor1] * inductor_names[m.inductor2]
        )
        out.write(f"K{_node(m.name)} L{_node(m.inductor1)} "
                  f"L{_node(m.inductor2)} {_fmt(k)}\n")

    for lset in circuit.inductor_sets:
        matrix = lset.matrix
        base = _node(lset.name)
        for j, (a, b) in enumerate(lset.branches):
            out.write(f"L{base}_{j} {_node(a)} {_node(b)} "
                      f"{_fmt(matrix[j, j])}\n")
        for i in range(lset.size):
            for j in range(i + 1, lset.size):
                if matrix[i, j] == 0.0:
                    continue
                k = matrix[i, j] / math.sqrt(matrix[i, i] * matrix[j, j])
                out.write(f"K{base}_{i}_{j} L{base}_{i} L{base}_{j} "
                          f"{_fmt(k)}\n")

    for src in circuit.vsources:
        out.write(f"V{_node(src.name)} {_node(src.n_plus)} "
                  f"{_node(src.n_minus)} "
                  f"{_source_spec(src.waveform, t_stop)}\n")
    for src in circuit.isources:
        out.write(f"I{_node(src.name)} {_node(src.n_plus)} "
                  f"{_node(src.n_minus)} "
                  f"{_source_spec(src.waveform, t_stop)}\n")

    if analysis:
        out.write(analysis.rstrip() + "\n")
    out.write(".end\n")
