"""Opt-in numerics sanitizer: instrument MNA, transient, and sparsifiers.

The ERC catches structural problems; this context manager catches the
*numerical* ones while code actually runs::

    from repro import qa

    with qa.sanitize() as guard:
        blocks = sparsifier.apply(extraction)      # SPD-checked on return
        result = transient_analysis(circuit, ...)  # NaN/energy-checked

Inside the ``with`` block three layers are instrumented (by patching the
classes, so it works no matter where they were imported from):

* :meth:`repro.circuit.mna.MNASystem.build_matrices` -- every dense
  inductance / K block of the circuit is checked for symmetry and
  positive definiteness (via :func:`repro.sparsify.stability.spd_margin`)
  before the matrices are handed to any solver.
* every concrete :class:`repro.sparsify.base.Sparsifier` strategy --
  returned blocks must be SPD, i.e. the sparsified system stays passive.
* :class:`repro.circuit.transient.TransientResult` -- state trajectories
  are checked for NaN/Inf, and (when the full state was recorded) for
  energy growth across source-free intervals: a passive circuit must not
  generate energy, the paper's definition of the truncation failure mode.

Violations are handled per :class:`SanitizePolicy`: ``"raise"`` (default)
raises :class:`PassivityError`, ``"warn"`` emits a :class:`RuntimeWarning`,
``"collect"`` only records -- in every mode the findings accumulate in
``guard.diagnostics``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.circuit.mna import MNASystem
from repro.circuit.transient import TransientResult
from repro.qa.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.sparsify.base import Sparsifier
from repro.sparsify.stability import DEFAULT_SYM_TOL, spd_margin


class PassivityError(RuntimeError):
    """A sanitizer check failed under the ``"raise"`` policy."""


@dataclass(frozen=True)
class SanitizePolicy:
    """What the sanitizer checks and what it does on a violation.

    Attributes:
        on_violation: ``"raise"`` | ``"warn"`` | ``"collect"``.
        check_spd: Verify symmetry/SPD of every L and K block at MNA
            compile time and on every sparsifier's output.
        check_finite: Reject NaN/Inf anywhere in recorded transient state.
        check_energy: Verify stored energy is non-increasing across
            source-free intervals (needs the full state recorded; skipped
            otherwise).
        spd_tol: Relative SPD margin (vs. largest diagonal entry) below
            which a block counts as non-passive.
        sym_tol: Relative asymmetry treated as round-off when
            symmetrizing (see :data:`repro.sparsify.stability.DEFAULT_SYM_TOL`).
        energy_rtol: Allowed relative energy growth across a source-free
            interval (integration round-off headroom).
        min_source_free_steps: Shortest source-free run of time steps the
            energy check considers.
    """

    on_violation: str = "raise"
    check_spd: bool = True
    check_finite: bool = True
    check_energy: bool = True
    spd_tol: float = 1e-12
    sym_tol: float = DEFAULT_SYM_TOL
    energy_rtol: float = 1e-6
    min_source_free_steps: int = 5

    def __post_init__(self) -> None:
        if self.on_violation not in ("raise", "warn", "collect"):
            raise ValueError(
                f"on_violation must be 'raise', 'warn', or 'collect', "
                f"got {self.on_violation!r}"
            )


class Sanitizer:
    """The active instrumentation; created by :func:`sanitize`."""

    def __init__(self, policy: SanitizePolicy) -> None:
        self.policy = policy
        self.diagnostics = DiagnosticReport()
        self._saved: list[tuple[type, str, object]] = []
        self._checked_systems: set[int] = set()

    # -- violation funnel --------------------------------------------------

    def _violation(self, rule: str, message: str, location: str,
                   hint: str) -> None:
        diag = Diagnostic(
            rule=rule,
            severity=Severity.ERROR,
            message=message,
            location=location,
            hint=hint,
        )
        self.diagnostics.add(diag)
        if self.policy.on_violation == "raise":
            raise PassivityError(diag.format())
        if self.policy.on_violation == "warn":
            warnings.warn(diag.format(), RuntimeWarning, stacklevel=3)

    # -- block checks ------------------------------------------------------

    def _check_block(self, label: str, matrix: np.ndarray, origin: str) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if not np.all(np.isfinite(matrix)):
            self._violation(
                "qa.nonfinite-matrix",
                f"{label} contains NaN/Inf entries",
                origin,
                "fix the extraction or sparsification producing the block",
            )
            return
        margin = spd_margin(matrix, sym_tol=self.policy.sym_tol)
        scale = float(np.abs(np.diagonal(matrix)).max()) if matrix.size else 1.0
        if margin <= self.policy.spd_tol * scale:
            kind = ("asymmetric" if margin == -np.inf
                    else "not positive definite")
            self._violation(
                "qa.non-spd",
                f"{label} is {kind} (SPD margin {margin:.3e}); the modeled "
                "system is active and can generate energy",
                origin,
                "use a passivity-preserving sparsifier or lower its "
                "threshold",
            )

    def _check_circuit_blocks(self, system: MNASystem) -> None:
        if id(system) in self._checked_systems:
            return
        self._checked_systems.add(id(system))
        circuit = system.circuit
        for lset in circuit.inductor_sets:
            self._check_block(
                f"inductance matrix of set {lset.name!r}", lset.matrix,
                f"mna({circuit.name})",
            )
        for kset in circuit.k_sets:
            self._check_block(
                f"K matrix of set {kset.name!r}", kset.kmatrix,
                f"mna({circuit.name})",
            )
        # Operator-backed sets stay compressed: densifying them here would
        # defeat the matrix-free tier, so only the exact self terms are
        # checked (the hierarchical assembler guarantees symmetry by
        # construction).
        for oset in circuit.operator_sets:
            diag = np.asarray(oset.operator.diag, dtype=float)
            if not np.all(np.isfinite(diag)) or np.any(diag <= 0.0):
                self._violation(
                    "qa.nonfinite-matrix",
                    f"operator inductor set {oset.name!r} has non-finite or "
                    "non-positive self inductances",
                    f"mna({circuit.name})",
                    "fix the extraction producing the operator",
                )

    # -- transient checks --------------------------------------------------

    def _check_transient(self, result: TransientResult) -> None:
        if self.policy.check_finite and not np.all(np.isfinite(result.data)):
            bad_step = int(np.argmax(~np.all(np.isfinite(result.data), axis=1)))
            self._violation(
                "qa.nonfinite-state",
                f"transient state contains NaN/Inf from t = "
                f"{result.times[bad_step]:.3e} s",
                f"transient({result.system.circuit.name})",
                "the system is unstable or the matrix is near-singular; "
                "run `repro check` on the circuit",
            )
            return
        if self.policy.check_energy:
            self._check_energy(result)

    def _full_state(self, result: TransientResult) -> bool:
        return len(result.columns) == result.system.size

    def _check_energy(self, result: TransientResult) -> None:
        system = result.system
        circuit = system.circuit
        # The quadratic form 0.5 x^T C x is the stored energy only for the
        # plain RLC portion; skip when other dynamics are present or the
        # state was partially recorded.
        if (circuit.k_sets or circuit.macromodels or circuit.devices
                or not self._full_state(result)):
            return
        g_matrix, c_matrix = system.build_matrices()
        cx = c_matrix @ result.data.T
        energy = 0.5 * np.einsum("ts,st->t", result.data, cx)
        source_free = np.array(
            [not np.any(system.rhs(t)) for t in result.times]
        )
        floor = self.policy.energy_rtol * max(float(energy.max(initial=0.0)),
                                              1e-300)
        run_start = None
        for k in range(len(result.times) + 1):
            inside = k < len(result.times) and source_free[k]
            if inside and run_start is None:
                run_start = k
                continue
            if not inside and run_start is not None:
                if k - run_start > self.policy.min_source_free_steps:
                    seg = energy[run_start:k]
                    growth = float(np.max(seg - np.minimum.accumulate(seg)))
                    if growth > floor:
                        t0 = result.times[run_start]
                        self._violation(
                            "qa.energy-growth",
                            f"stored energy grew by {growth:.3e} J during "
                            f"the source-free interval starting at "
                            f"t = {t0:.3e} s; the circuit is active",
                            f"transient({circuit.name})",
                            "a non-SPD inductance block is the usual cause; "
                            "run `repro check` on the circuit",
                        )
                        return
                run_start = None

    # -- patching ----------------------------------------------------------

    def _patch(self, cls: type, attr: str, replacement) -> None:
        self._saved.append((cls, attr, cls.__dict__[attr]))
        setattr(cls, attr, replacement)

    def __enter__(self) -> "Sanitizer":
        guard = self

        if self.policy.check_spd:
            original_build = MNASystem.build_matrices

            def build_matrices(self, fmt: str = "auto"):
                guard._check_circuit_blocks(self)
                return original_build(self, fmt)

            self._patch(MNASystem, "build_matrices", build_matrices)

            def _concrete_sparsifiers(base: type) -> Iterator[type]:
                for sub in base.__subclasses__():
                    if "apply" in sub.__dict__:
                        yield sub
                    yield from _concrete_sparsifiers(sub)

            for cls in set(_concrete_sparsifiers(Sparsifier)):
                original_apply = cls.__dict__["apply"]

                def apply(self, result, _original=original_apply,
                          _name=cls.__name__):
                    blocks = _original(self, result)
                    for j, (indices, matrix) in enumerate(blocks.blocks):
                        if len(indices) < 2:
                            continue
                        guard._check_block(
                            f"{blocks.kind} block {j} ({len(indices)} "
                            "branches)",
                            matrix,
                            f"sparsify({_name})",
                        )
                    return blocks

                self._patch(cls, "apply", apply)

        if self.policy.check_finite or self.policy.check_energy:
            original_post = TransientResult.__post_init__

            def __post_init__(self):
                original_post(self)
                guard._check_transient(self)

            self._patch(TransientResult, "__post_init__", __post_init__)

        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        while self._saved:
            cls, attr, original = self._saved.pop()
            setattr(cls, attr, original)


def sanitize(policy: SanitizePolicy | None = None, **kwargs) -> Sanitizer:
    """Create the sanitizer context manager.

    Args:
        policy: A full policy, or None to build one from ``kwargs``
            (e.g. ``sanitize(on_violation="collect", check_energy=False)``).

    Returns:
        The (not yet entered) :class:`Sanitizer`.
    """
    if policy is not None and kwargs:
        raise ValueError("pass either a policy object or keyword overrides")
    if policy is None:
        policy = SanitizePolicy(**kwargs)
    return Sanitizer(policy)


__all__ = ["PassivityError", "SanitizePolicy", "Sanitizer", "sanitize"]
