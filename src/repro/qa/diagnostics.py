"""Structured diagnostics shared by the ERC, sanitizer, and AST lint.

Every static-analysis layer in :mod:`repro.qa` reports findings as
:class:`Diagnostic` records -- a rule id, a severity, a human-readable
message, a location (element/node name for circuit checks, ``file:line``
for lint), and a fix hint.  :class:`DiagnosticReport` aggregates them and
knows how rule suppression and exit codes work, so the CLI, CI script,
and test suite all consume one representation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is by badness."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a QA pass.

    Attributes:
        rule: Stable rule identifier (e.g. ``"erc.vsource-loop"``,
            ``"QA101"``); the unit of suppression.
        severity: How bad it is; only :attr:`Severity.ERROR` findings make
            ``repro check`` exit non-zero (without ``--strict``).
        message: What was found, with the offending values inlined.
        location: Where -- an element/node name, or ``file:line:col``.
        hint: How to fix or silence it.
    """

    rule: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""

    def format(self) -> str:
        """One-line rendering: ``location: severity [rule] message``."""
        prefix = f"{self.location}: " if self.location else ""
        text = f"{prefix}{self.severity} [{self.rule}] {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


class DiagnosticReport:
    """An ordered collection of diagnostics with suppression bookkeeping."""

    def __init__(
        self,
        diagnostics: Iterable[Diagnostic] = (),
        suppress: Iterable[str] = (),
    ) -> None:
        self.suppressed_rules = frozenset(suppress)
        self.diagnostics: list[Diagnostic] = []
        self.num_suppressed = 0
        for diag in diagnostics:
            self.add(diag)

    def add(self, diagnostic: Diagnostic) -> None:
        """Record a finding (dropped and counted if its rule is suppressed)."""
        if diagnostic.rule in self.suppressed_rules:
            self.num_suppressed += 1
            return
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        for diag in diagnostics:
            self.add(diag)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when nothing error-severity was found."""
        return not self.errors

    def exit_code(self, strict: bool = False) -> int:
        """Process exit code: 1 on errors (or any finding when strict)."""
        if self.errors:
            return 1
        if strict and self.diagnostics:
            return 1
        return 0

    def format(self) -> str:
        """Multi-line rendering: one line per diagnostic plus a summary."""
        lines = [d.format() for d in self.diagnostics]
        summary = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        if self.num_suppressed:
            summary += f", {self.num_suppressed} suppressed"
        lines.append(summary)
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"DiagnosticReport({len(self.errors)} errors, "
            f"{len(self.warnings)} warnings, {len(self)} total)"
        )


__all__ = ["Severity", "Diagnostic", "DiagnosticReport"]
