"""Electrical rule check (ERC): structural sanity before simulation.

The paper's central warning is that a sparsified inductance matrix "can
become non-positive definite, and the sparsified system becomes active
and can generate energy".  Waiting for the transient to blow up is the
expensive way to find that out; this module is the cheap way.  It walks a
:class:`~repro.circuit.netlist.Circuit` *before* any matrix is factored
and emits structured :class:`~repro.qa.diagnostics.Diagnostic` records
for the classic netlist pathologies:

========================== ======== =============================================
rule id                    severity what it catches
========================== ======== =============================================
erc.dangling-node          warning  node touched by fewer than two terminals
erc.unreachable            error    subgraph with no path to ground
erc.floating-reference     info     nothing touches ground (port-driven circuit)
erc.nonpositive-value      error    R/L/C <= 0 or non-finite element values
erc.vsource-loop           error    loop of ideal voltage sources (singular MNA)
erc.inductor-loop          error    loop/cutset of ideal inductive branches
erc.unknown-inductor       error    mutual referencing a missing self inductor
erc.coupling-unphysical    error    mutual coupling coefficient \\|k\\| >= 1
erc.non-passive-inductance error    inductance / K block not SPD (active model)
========================== ======== =============================================

All rules are pure graph/matrix inspections -- no solves -- so the pass is
linear-ish in circuit size (plus one ``eigvalsh`` per dense inductance
block) and safe to run on every input in a serving path.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

import numpy as np

from repro.circuit.netlist import GROUND, Circuit
from repro.qa.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.sparsify.stability import spd_margin

#: rule id -> one-line description (the documentation `repro check` prints).
ERC_RULES: dict[str, str] = {
    "erc.dangling-node": "node is touched by fewer than two element terminals",
    "erc.unreachable": "subcircuit has no connection to ground",
    "erc.floating-reference": "no element touches ground at all (circuit is "
                              "driven through external ports)",
    "erc.nonpositive-value": "element value is zero, negative, or non-finite",
    "erc.vsource-loop": "ideal voltage sources form a loop (singular MNA)",
    "erc.inductor-loop": "ideal inductive branches form a loop/cutset "
                         "(singular at DC)",
    "erc.unknown-inductor": "mutual inductor references a missing self "
                            "inductor",
    "erc.coupling-unphysical": "mutual coupling coefficient |k| >= 1",
    "erc.non-passive-inductance": "inductance or K block is not symmetric "
                                  "positive definite",
}


class _UnionFind:
    """Minimal union-find over node names."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, item: str) -> str:
        root = item
        while self._parent.setdefault(root, root) != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> bool:
        """Merge the sets of ``a`` and ``b``; False when already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[ra] = rb
        return True


def _terminal_edges(circuit: Circuit) -> Iterator[tuple[str, str, str, str]]:
    """Yield (n1, n2, kind, name) for every two-terminal connection."""
    for r in circuit.resistors:
        yield r.n1, r.n2, "R", r.name
    for c in circuit.capacitors:
        yield c.n1, c.n2, "C", c.name
    for ind in circuit.inductors:
        yield ind.n1, ind.n2, "L", ind.name
    for lset in circuit.inductor_sets:
        for j, (a, b) in enumerate(lset.branches):
            yield a, b, "Lset", f"{lset.name}[{j}]"
    for oset in circuit.operator_sets:
        for j, (a, b) in enumerate(oset.branches):
            yield a, b, "Lset", f"{oset.name}[{j}]"
    for kset in circuit.k_sets:
        for j, (a, b) in enumerate(kset.branches):
            yield a, b, "Kset", f"{kset.name}[{j}]"
    for src in circuit.vsources:
        yield src.n_plus, src.n_minus, "V", src.name
    for src in circuit.isources:
        yield src.n_plus, src.n_minus, "I", src.name
    for mm in circuit.macromodels:
        for j, (a, b) in enumerate(mm.ports):
            yield a, b, "port", f"{mm.name}.p{j}"
    for dev in circuit.devices:
        nodes = list(dev.nodes)
        for other in nodes[1:]:
            yield nodes[0], other, "device", dev.name


def _check_connectivity(circuit: Circuit, report: DiagnosticReport) -> None:
    """erc.dangling-node and erc.unreachable."""
    degree: dict[str, int] = {name: 0 for name in circuit.node_names}
    uf = _UnionFind()
    uf.find(GROUND)
    ground_connected = False
    for n1, n2, _, _ in _terminal_edges(circuit):
        for node in (n1, n2):
            if node != GROUND:
                degree[node] = degree.get(node, 0) + 1
            else:
                ground_connected = True
        uf.union(n1, n2)
    for node, count in sorted(degree.items()):
        if count == 0:
            report.add(Diagnostic(
                rule="erc.dangling-node",
                severity=Severity.WARNING,
                message="node is registered but no element connects to it",
                location=f"node {node}",
                hint="remove the node or wire an element to it",
            ))
        elif count == 1:
            report.add(Diagnostic(
                rule="erc.dangling-node",
                severity=Severity.WARNING,
                message="node has exactly one terminal attached "
                        "(open-circuited element)",
                location=f"node {node}",
                hint="terminate the node or drop the element",
            ))
    ground_root = uf.find(GROUND)
    islands: dict[str, list[str]] = {}
    for node in degree:
        root = uf.find(node)
        if root != ground_root:
            islands.setdefault(root, []).append(node)
    if not ground_connected and islands:
        # A circuit where *nothing* touches ground is a deliberately
        # floating analysis circuit (loop extraction, differential port
        # studies): the reference is supplied externally by the analysis
        # (e.g. a gmin-regularized port solve), so per-island errors would
        # be noise.  Components coupled only through mutual inductance are
        # conductively disjoint by construction.
        report.add(Diagnostic(
            rule="erc.floating-reference",
            severity=Severity.INFO,
            message=f"no element touches ground; {len(islands)} conductive "
                    "component(s) float (reference must come from the "
                    "analysis, e.g. a port solve)",
            location=f"circuit {circuit.name}",
            hint="fine for port-driven AC analysis; DC/transient need a "
                 "ground reference",
        ))
        return
    for members in islands.values():
        sample = ", ".join(sorted(members)[:4])
        if len(members) > 4:
            sample += ", ..."
        report.add(Diagnostic(
            rule="erc.unreachable",
            severity=Severity.ERROR,
            message=f"{len(members)} node(s) have no path to ground "
                    f"({sample})",
            location=f"node {sorted(members)[0]}",
            hint="connect the island to the reference net (node '0') or "
                 "simulate it as a separate circuit",
        ))


def _bad_value(value: float) -> bool:
    return not math.isfinite(value) or value <= 0.0


def _check_values(circuit: Circuit, report: DiagnosticReport) -> None:
    """erc.nonpositive-value over scalars and dense block diagonals."""
    scalar_elements = [
        ("resistor", "R", [(r.name, r.resistance) for r in circuit.resistors]),
        ("capacitor", "C", [(c.name, c.capacitance) for c in circuit.capacitors]),
        ("inductor", "L", [(l.name, l.inductance) for l in circuit.inductors]),
    ]
    for label, symbol, values in scalar_elements:
        for name, value in values:
            if _bad_value(value):
                report.add(Diagnostic(
                    rule="erc.nonpositive-value",
                    severity=Severity.ERROR,
                    message=f"{label} value {symbol} = {value!r} must be a "
                            "positive finite number",
                    location=name,
                    hint="fix the extraction or netlist value",
                ))
    for mut in circuit.mutuals:
        if not math.isfinite(mut.mutual):
            report.add(Diagnostic(
                rule="erc.nonpositive-value",
                severity=Severity.ERROR,
                message=f"mutual inductance M = {mut.mutual!r} is not finite",
                location=mut.name,
                hint="fix the extraction or netlist value",
            ))
    for kind, sets in (("inductor set", circuit.inductor_sets),
                       ("K set", circuit.k_sets)):
        for block in sets:
            matrix = block.matrix if kind == "inductor set" else block.kmatrix
            if not np.all(np.isfinite(matrix)):
                report.add(Diagnostic(
                    rule="erc.nonpositive-value",
                    severity=Severity.ERROR,
                    message=f"{kind} matrix contains NaN/Inf entries",
                    location=block.name,
                    hint="fix the extraction producing the block",
                ))
                continue
            bad = np.flatnonzero(np.diagonal(matrix) <= 0.0)
            if bad.size:
                report.add(Diagnostic(
                    rule="erc.nonpositive-value",
                    severity=Severity.ERROR,
                    message=f"{kind} has {bad.size} non-positive diagonal "
                            f"entries (first at branch {int(bad[0])})",
                    location=block.name,
                    hint="self terms must be positive; check the extraction",
                ))
    # Operator-backed sets: the dense matrix is deliberately never
    # materialized, so only the (exact) self terms are checkable.
    for oset in circuit.operator_sets:
        diag = np.asarray(oset.operator.diag, dtype=float)
        if not np.all(np.isfinite(diag)):
            report.add(Diagnostic(
                rule="erc.nonpositive-value",
                severity=Severity.ERROR,
                message="operator inductor set diagonal contains NaN/Inf "
                        "entries",
                location=oset.name,
                hint="fix the extraction producing the operator",
            ))
            continue
        bad = np.flatnonzero(diag <= 0.0)
        if bad.size:
            report.add(Diagnostic(
                rule="erc.nonpositive-value",
                severity=Severity.ERROR,
                message=f"operator inductor set has {bad.size} non-positive "
                        f"diagonal entries (first at branch {int(bad[0])})",
                location=oset.name,
                hint="self terms must be positive; check the extraction",
            ))


def _check_source_loops(circuit: Circuit, report: DiagnosticReport) -> None:
    """erc.vsource-loop: a cycle of ideal V sources over-determines KVL."""
    uf = _UnionFind()
    for src in circuit.vsources:
        if not uf.union(src.n_plus, src.n_minus):
            report.add(Diagnostic(
                rule="erc.vsource-loop",
                severity=Severity.ERROR,
                message="voltage source closes a loop of ideal voltage "
                        "sources; the MNA matrix is singular",
                location=src.name,
                hint="insert a series resistance or remove the redundant "
                     "source",
            ))


def _check_inductor_loops(circuit: Circuit, report: DiagnosticReport) -> None:
    """erc.inductor-loop: loops of ideal inductive branches.

    A loop made purely of inductor branches (parallel ideal inductors
    being the smallest case) makes the branch-voltage constraint rows of
    the MNA G matrix linearly dependent -- singular at DC.  In the mesh
    dual this is exactly an inductor cutset.
    """
    uf = _UnionFind()
    inductive: Iterable[tuple[str, str, str]] = [
        (ind.n1, ind.n2, ind.name) for ind in circuit.inductors
    ] + [
        (a, b, f"{lset.name}[{j}]")
        for lset in circuit.inductor_sets
        for j, (a, b) in enumerate(lset.branches)
    ] + [
        (a, b, f"{oset.name}[{j}]")
        for oset in circuit.operator_sets
        for j, (a, b) in enumerate(oset.branches)
    ]
    for n1, n2, name in inductive:
        if not uf.union(n1, n2):
            report.add(Diagnostic(
                rule="erc.inductor-loop",
                severity=Severity.ERROR,
                message="inductive branch closes a loop of ideal inductors; "
                        "the DC operating point is singular",
                location=name,
                hint="add the physical series resistance (every real "
                     "segment has one; see Circuit.add_series_rl)",
            ))


def _check_mutuals(circuit: Circuit, report: DiagnosticReport) -> None:
    """erc.unknown-inductor and erc.coupling-unphysical (scalar mutuals)."""
    inductance = {ind.name: ind.inductance for ind in circuit.inductors}
    for mut in circuit.mutuals:
        missing = [ref for ref in (mut.inductor1, mut.inductor2)
                   if ref not in inductance]
        if missing:
            report.add(Diagnostic(
                rule="erc.unknown-inductor",
                severity=Severity.ERROR,
                message=f"mutual references unknown inductor(s) "
                        f"{', '.join(sorted(missing))}",
                location=mut.name,
                hint="declare the self inductors before the coupling",
            ))
            continue
        l1 = inductance[mut.inductor1]
        l2 = inductance[mut.inductor2]
        if l1 <= 0.0 or l2 <= 0.0:
            continue  # already reported by erc.nonpositive-value
        k = abs(mut.mutual) / math.sqrt(l1 * l2)
        if k >= 1.0:
            report.add(Diagnostic(
                rule="erc.coupling-unphysical",
                severity=Severity.ERROR,
                message=f"coupling coefficient |k| = {k:.4f} >= 1 between "
                        f"{mut.inductor1} and {mut.inductor2}",
                location=mut.name,
                hint="physical couplings satisfy |M| < sqrt(L1*L2); check "
                     "the mutual-inductance formula or units",
            ))


def _scalar_inductor_matrix(circuit: Circuit) -> np.ndarray | None:
    """Dense L matrix of the scalar inductors + their mutual couplings."""
    if not circuit.inductors:
        return None
    index = {ind.name: i for i, ind in enumerate(circuit.inductors)}
    matrix = np.diag([ind.inductance for ind in circuit.inductors])
    for mut in circuit.mutuals:
        i = index.get(mut.inductor1)
        j = index.get(mut.inductor2)
        if i is None or j is None:
            continue  # reported by erc.unknown-inductor
        matrix[i, j] = matrix[j, i] = mut.mutual
    return matrix


def _check_passivity(
    circuit: Circuit, report: DiagnosticReport, spd_tol: float
) -> None:
    """erc.non-passive-inductance over every dense inductance / K block."""
    blocks: list[tuple[str, np.ndarray, str]] = []
    scalar = _scalar_inductor_matrix(circuit)
    if scalar is not None and len(circuit.mutuals) > 0:
        blocks.append(("scalar inductors + mutuals", scalar, "L"))
    for lset in circuit.inductor_sets:
        blocks.append((f"inductor set {lset.name}", lset.matrix, "L"))
    for kset in circuit.k_sets:
        blocks.append((f"K set {kset.name}", kset.kmatrix, "K"))
    for label, matrix, kind in blocks:
        if not np.all(np.isfinite(matrix)):
            continue  # reported by erc.nonpositive-value
        margin = spd_margin(matrix)
        scale = float(np.abs(np.diagonal(matrix)).max()) if matrix.size else 1.0
        if margin <= spd_tol * scale:
            report.add(Diagnostic(
                rule="erc.non-passive-inductance",
                severity=Severity.ERROR,
                message=f"{label} is not positive definite "
                        f"(margin {margin:.3e}; the circuit can generate "
                        "energy)",
                location=label,
                hint="use a passivity-preserving sparsifier (block-diagonal"
                     ", shell, halo, or K-matrix) instead of truncation",
            ))


def check_circuit(
    circuit: Circuit,
    suppress: Iterable[str] = (),
    spd_tol: float = 1e-12,
) -> DiagnosticReport:
    """Run every electrical rule over a circuit.

    Args:
        circuit: The netlist to inspect (not modified).
        suppress: Rule ids to drop from the report (they are still
            counted in :attr:`DiagnosticReport.num_suppressed`).
        spd_tol: Relative eigenvalue margin (vs. the largest diagonal
            entry) below which an inductance block is reported as
            non-passive.

    Returns:
        The aggregated findings; ``report.ok`` is False when any
        error-severity rule fired.
    """
    report = DiagnosticReport(suppress=suppress)
    _check_connectivity(circuit, report)
    _check_values(circuit, report)
    _check_source_loops(circuit, report)
    _check_inductor_loops(circuit, report)
    _check_mutuals(circuit, report)
    _check_passivity(circuit, report, spd_tol)
    return report


__all__ = ["ERC_RULES", "check_circuit"]
