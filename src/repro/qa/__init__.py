"""Static analysis and runtime sanity checks (``repro.qa``).

Three layers of defense against the paper's failure mode (sparsified
inductance going non-passive) and against malformed inputs generally:

* :mod:`~repro.qa.erc` -- electrical rule check over a
  :class:`~repro.circuit.netlist.Circuit` before any simulation
  (``repro check`` on the command line).
* :mod:`~repro.qa.sanitize` -- opt-in runtime instrumentation of the MNA
  compiler, the transient engine, and every sparsifier strategy.
* :mod:`~repro.qa.astlint` -- repo-specific source lint
  (``python -m repro.qa.astlint src``).

All layers report :class:`~repro.qa.diagnostics.Diagnostic` records.
"""

from repro.qa.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.qa.erc import ERC_RULES, check_circuit
from repro.qa.sanitize import (
    PassivityError,
    SanitizePolicy,
    Sanitizer,
    sanitize,
)
from repro.qa.collect import capture_circuits, collect_circuits_from_script

_ASTLINT_EXPORTS = ("LINT_RULES", "lint_file", "lint_paths")


def __getattr__(name: str):
    # Lazy so `python -m repro.qa.astlint` doesn't import the module twice
    # (runpy warns when the target is already in sys.modules).
    if name in _ASTLINT_EXPORTS:
        from repro.qa import astlint

        return getattr(astlint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "ERC_RULES",
    "check_circuit",
    "PassivityError",
    "SanitizePolicy",
    "Sanitizer",
    "sanitize",
    "LINT_RULES",
    "lint_file",
    "lint_paths",
    "capture_circuits",
    "collect_circuits_from_script",
]
