"""Repo-specific AST lint: ``python -m repro.qa.astlint src``.

This is now a thin compatibility shim: the QA101-QA107 rules live in
:mod:`repro.qa.analyze.rules_syntax` and run inside the project-wide
analyzer engine (``repro analyze``), which also adds the semantic
QA201-QA206 rules.  This module keeps the original per-file API
(:func:`lint_file`, :func:`lint_paths`, :data:`LINT_RULES`) and the
``python -m repro.qa.astlint`` CLI with identical exit codes, so
existing tooling keeps working.

====== ========================================================================
rule   what it flags
====== ========================================================================
QA101  ``np.linalg.inv`` / ``scipy.linalg.inv`` calls -- explicitly forming an
       inverse of a potentially dense matrix; prefer a cached factor-and-solve
       (``scipy.linalg.lu_factor`` + ``lu_solve``, or ``cho_factor`` for SPD).
QA102  mutable default arguments (list/dict/set literals or constructors).
QA103  a package ``__init__.py`` that re-exports names but defines no
       ``__all__`` (the public surface must be explicit).
QA104  ``float(...)`` applied to a complex-valued AC result (attribute named
       ``impedance``/``admittance``/``transfer``): silently meaningless --
       take ``.real``, ``abs()``, or ``.imag`` deliberately.
QA105  a bare ``except``/``except Exception`` whose body is only ``pass`` --
       silently swallowing failures defeats the resilience layer's logging;
       catch the narrow type, or record the downgrade in a RunReport.
QA106  ad-hoc wall-clock timing (``time.time()`` / ``time.perf_counter()`` /
       ``time.monotonic()`` / ``time.process_time()``) outside
       :mod:`repro.obs` and ``perf/bench.py`` -- wrap the stage in a
       ``repro.obs.trace.span`` instead so the measurement lands in the
       trace tree.
QA107  unseeded ``numpy.random.default_rng()`` outside tests -- OS-entropy
       seeding makes runs irreproducible (randomized source placement,
       Monte-Carlo sweeps); pass an explicit seed, or a generator plumbed
       from the caller's config.
====== ========================================================================

Suppress a single line with a trailing ``# qa: ignore`` (all rules),
``# qa: ignore[QA101]`` (one rule), or ``# qa: ignore[QA101,QA106]``
(a comma-separated list) comment.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable

from repro.qa.analyze.engine import RULES, ModuleContext
from repro.qa.analyze.ignores import suppressed_rules as _suppressed_rules  # noqa: F401  (compat re-export)
from repro.qa.analyze.project import Module, iter_python_files
from repro.qa.analyze.rules_syntax import SYNTAX_RULE_IDS
from repro.qa.diagnostics import Diagnostic, DiagnosticReport, Severity

#: rule id -> one-line description (printed by ``--list-rules``).
LINT_RULES: dict[str, str] = {
    rule_id: RULES[rule_id].title for rule_id in SYNTAX_RULE_IDS
}


def lint_file(path: str | Path) -> list[Diagnostic]:
    """Lint one Python source file; returns its findings."""
    mod = Module.parse(path)
    if mod.tree is None:
        exc = mod.syntax_error
        return [Diagnostic(
            rule="QA000",
            severity=Severity.ERROR,
            message=f"file does not parse: "
                    f"{exc.msg if exc else 'unknown syntax error'}",
            location=f"{mod.path}:{(exc.lineno if exc else 1) or 1}:"
                     f"{(exc.offset if exc else 0) or 0}",
            hint="fix the syntax error",
        )]
    ctx = ModuleContext(mod)
    findings: list[Diagnostic] = []
    for rule_id in SYNTAX_RULE_IDS:
        findings.extend(RULES[rule_id].check(ctx))
    findings.sort(key=lambda d: d.location)
    return findings


def lint_paths(
    paths: Iterable[str | Path], suppress: Iterable[str] = ()
) -> DiagnosticReport:
    """Lint every ``*.py`` under the given files/directories."""
    report = DiagnosticReport(suppress=suppress)
    for path in iter_python_files(paths):
        report.extend(lint_file(path))
    return report


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.qa.astlint``."""
    parser = argparse.ArgumentParser(
        prog="repro.qa.astlint",
        description="repo-specific AST lint (QA101-QA107); see "
                    "'repro analyze' for the project-wide semantic rules",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--suppress", action="append", default=[],
                        metavar="RULE", help="drop findings of this rule id")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, text in sorted(LINT_RULES.items()):
            print(f"{rule}  {text}")
        return 0
    try:
        report = lint_paths(args.paths, suppress=args.suppress)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format())
    return 1 if report.diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["LINT_RULES", "lint_file", "lint_paths", "iter_python_files", "main"]
