"""Repo-specific AST lint: ``python -m repro.qa.astlint src``.

Generic linters don't know this codebase's numerics discipline; these
rules encode it:

====== ========================================================================
rule   what it flags
====== ========================================================================
QA101  ``np.linalg.inv`` / ``scipy.linalg.inv`` calls -- explicitly forming an
       inverse of a potentially dense matrix; prefer a cached factor-and-solve
       (``scipy.linalg.lu_factor`` + ``lu_solve``, or ``cho_factor`` for SPD).
QA102  mutable default arguments (list/dict/set literals or constructors).
QA103  a package ``__init__.py`` that re-exports names but defines no
       ``__all__`` (the public surface must be explicit).
QA104  ``float(...)`` applied to a complex-valued AC result (attribute named
       ``impedance``/``admittance``/``transfer``): silently meaningless --
       take ``.real``, ``abs()``, or ``.imag`` deliberately.
QA105  a bare ``except``/``except Exception`` whose body is only ``pass`` --
       silently swallowing failures defeats the resilience layer's logging;
       catch the narrow type, or record the downgrade in a RunReport.
QA106  ad-hoc wall-clock timing (``time.time()`` / ``time.perf_counter()`` /
       ``time.monotonic()`` / ``time.process_time()``) outside
       :mod:`repro.obs` and ``perf/bench.py`` -- wrap the stage in a
       ``repro.obs.trace.span`` instead so the measurement lands in the
       trace tree.
QA107  unseeded ``numpy.random.default_rng()`` outside tests -- OS-entropy
       seeding makes runs irreproducible (randomized source placement,
       Monte-Carlo sweeps); pass an explicit seed, or a generator plumbed
       from the caller's config.
====== ========================================================================

Suppress a single line with a trailing ``# qa: ignore`` (all rules) or
``# qa: ignore[QA101]`` (one rule) comment.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.qa.diagnostics import Diagnostic, DiagnosticReport, Severity

#: rule id -> one-line description (printed by ``--list-rules``).
LINT_RULES: dict[str, str] = {
    "QA101": "explicit dense-matrix inverse; prefer factor-and-solve",
    "QA102": "mutable default argument",
    "QA103": "package __init__.py re-exports names without __all__",
    "QA104": "float() of a complex AC result (impedance/admittance/transfer)",
    "QA105": "broad except clause that silently passes",
    "QA106": "ad-hoc timing call outside repro.obs (use a span)",
    "QA107": "unseeded default_rng() outside tests (pass a seed)",
}

#: ``time``-module functions QA106 treats as ad-hoc timers.
_TIMING_FUNCS = frozenset({"time", "perf_counter", "monotonic", "process_time"})

#: Attribute names that carry complex AC results in this codebase.
_COMPLEX_ATTRS = frozenset({"impedance", "admittance", "transfer"})

#: Modules whose ``inv`` is an explicit dense inverse.
_LINALG_MODULES = frozenset({"numpy.linalg", "scipy.linalg"})

_IGNORE_RE = re.compile(r"#\s*qa:\s*ignore(?:\[([A-Za-z0-9, ]+)\])?")

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


def _suppressed_rules(line: str) -> frozenset[str] | None:
    """Rules silenced on this source line; None = no suppression comment.

    An empty frozenset means a blanket ``# qa: ignore`` (all rules).
    """
    match = _IGNORE_RE.search(line)
    if match is None:
        return None
    if match.group(1) is None:
        return frozenset()
    return frozenset(r.strip() for r in match.group(1).split(","))


class _Visitor(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        lines: Sequence[str],
        check_timing: bool = True,
        check_rng: bool = True,
    ) -> None:
        self.path = path
        self.lines = lines
        self.check_timing = check_timing
        self.check_rng = check_rng
        self.findings: list[Diagnostic] = []
        # Names bound to numpy.linalg / scipy.linalg modules, and names
        # bound directly to their `inv` function.
        self._linalg_aliases: set[str] = set()
        self._inv_aliases: set[str] = set()
        # Names bound to the `time` module / its timing functions (QA106).
        self._time_aliases: set[str] = set()
        self._timing_func_aliases: set[str] = set()
        # Names bound directly to numpy.random.default_rng (QA107).
        self._rng_aliases: set[str] = set()

    # -- reporting ---------------------------------------------------------

    def _report(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        line_no = getattr(node, "lineno", 1)
        line = self.lines[line_no - 1] if line_no - 1 < len(self.lines) else ""
        suppressed = _suppressed_rules(line)
        if suppressed is not None and (not suppressed or rule in suppressed):
            return
        self.findings.append(Diagnostic(
            rule=rule,
            severity=Severity.ERROR,
            message=message,
            location=f"{self.path}:{line_no}:{getattr(node, 'col_offset', 0)}",
            hint=hint,
        ))

    # -- import tracking ---------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in _LINALG_MODULES:
                self._linalg_aliases.add(alias.asname or alias.name)
            elif alias.name == "time":
                self._time_aliases.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in _LINALG_MODULES:
            for alias in node.names:
                if alias.name == "inv":
                    self._inv_aliases.add(alias.asname or "inv")
        elif node.module in ("numpy", "scipy"):
            for alias in node.names:
                if alias.name == "linalg":
                    self._linalg_aliases.add(alias.asname or "linalg")
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _TIMING_FUNCS:
                    self._timing_func_aliases.add(alias.asname or alias.name)
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name == "default_rng":
                    self._rng_aliases.add(alias.asname or "default_rng")
        self.generic_visit(node)

    # -- QA101 / QA104 -----------------------------------------------------

    def _is_linalg_inv(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            return func.id in self._inv_aliases
        if not (isinstance(func, ast.Attribute) and func.attr == "inv"):
            return False
        value = func.value
        # np.linalg.inv / numpy.linalg.inv / <anything>.linalg.inv
        if isinstance(value, ast.Attribute) and value.attr == "linalg":
            return True
        # sla.inv where sla = scipy.linalg (or `from numpy import linalg`)
        if isinstance(value, ast.Name):
            return value.id in self._linalg_aliases or value.id == "linalg"
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_linalg_inv(node.func):
            self._report(
                "QA101", node,
                "explicit matrix inverse on a potentially dense matrix",
                "factor once and solve (scipy.linalg.lu_factor/lu_solve, or "
                "cho_factor for SPD); silence a deliberate full inverse with "
                "'# qa: ignore[QA101]'",
            )
        if (isinstance(node.func, ast.Name) and node.func.id == "float"
                and node.args):
            for sub in ast.walk(node.args[0]):
                if (isinstance(sub, ast.Attribute)
                        and sub.attr in _COMPLEX_ATTRS):
                    self._report(
                        "QA104", node,
                        f"float() of complex-valued '.{sub.attr}' discards "
                        "the imaginary part (or raises on numpy complex)",
                        "use .real, .imag, or abs() explicitly",
                    )
                    break
        if self.check_timing and self._is_timing_call(node.func):
            self._report(
                "QA106", node,
                "ad-hoc wall-clock timing outside repro.obs",
                "wrap the stage in repro.obs.trace.span(...) and read "
                "sp.duration, so the measurement lands in the trace tree; "
                "silence a deliberate raw timer with '# qa: ignore[QA106]'",
            )
        if (self.check_rng and not node.args and not node.keywords
                and self._is_default_rng(node.func)):
            self._report(
                "QA107", node,
                "unseeded default_rng() draws from OS entropy, making the "
                "run irreproducible",
                "pass an explicit seed (or a generator plumbed from the "
                "caller's config); silence deliberate entropy with "
                "'# qa: ignore[QA107]'",
            )
        self.generic_visit(node)

    def _is_default_rng(self, func: ast.expr) -> bool:
        """QA107: ``np.random.default_rng`` / bare imported ``default_rng``."""
        if isinstance(func, ast.Name):
            return func.id in self._rng_aliases
        return isinstance(func, ast.Attribute) and func.attr == "default_rng"

    def _is_timing_call(self, func: ast.expr) -> bool:
        """QA106: ``time.perf_counter()`` / bare imported ``perf_counter()``."""
        if isinstance(func, ast.Name):
            return func.id in self._timing_func_aliases
        return (
            isinstance(func, ast.Attribute)
            and func.attr in _TIMING_FUNCS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_aliases
        )

    # -- QA102 -------------------------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set,
                 ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                self._report(
                    "QA102", default,
                    f"mutable default argument in {node.name}() is shared "
                    "across calls",
                    "default to None and create the object in the body "
                    "(or use dataclasses.field(default_factory=...))",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- QA105 -------------------------------------------------------------

    def _is_broad_handler(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = []
        if isinstance(handler.type, ast.Name):
            names = [handler.type.id]
        elif isinstance(handler.type, ast.Tuple):
            names = [e.id for e in handler.type.elts if isinstance(e, ast.Name)]
        return any(n in ("Exception", "BaseException") for n in names)

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            body_is_silent = all(
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is ...)
                for stmt in handler.body
            )
            if body_is_silent and self._is_broad_handler(handler):
                self._report(
                    "QA105", handler,
                    "broad except clause silently swallows every failure",
                    "catch the narrow exception type, re-raise, or at least "
                    "record what was ignored (e.g. in a RunReport)",
                )
        self.generic_visit(node)


def _check_init_all(path: Path, tree: ast.Module, lines: Sequence[str],
                    findings: list[Diagnostic]) -> None:
    """QA103: __init__.py with imports at module level needs __all__."""
    has_imports = any(
        isinstance(stmt, (ast.Import, ast.ImportFrom)) for stmt in tree.body
    )
    if not has_imports:
        return
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return
    first = lines[0] if lines else ""
    if _suppressed_rules(first) is not None:
        return
    findings.append(Diagnostic(
        rule="QA103",
        severity=Severity.ERROR,
        message="package __init__.py re-exports names but defines no "
                "__all__",
        location=f"{path}:1:0",
        hint="list the public surface explicitly in __all__",
    ))


def _qa106_exempt(path: Path) -> bool:
    """Files allowed to call raw timers: the obs layer itself (it *is* the
    timing machinery) and the benchmark harness (whose product is raw
    wall-clock numbers)."""
    posix = path.as_posix()
    return (
        "/obs/" in posix
        or posix.endswith("perf/bench.py")
        or path.parent.name == "obs"
    )


def _qa107_exempt(path: Path) -> bool:
    """Files allowed to call ``default_rng()`` unseeded: tests, where
    fresh entropy is sometimes the point (fuzzing, property-based data)."""
    posix = path.as_posix()
    return (
        "/tests/" in posix
        or posix.startswith("tests/")
        or path.name.startswith("test_")
        or path.name.startswith("conftest")
    )


def lint_file(path: str | Path) -> list[Diagnostic]:
    """Lint one Python source file; returns its findings."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Diagnostic(
            rule="QA000",
            severity=Severity.ERROR,
            message=f"file does not parse: {exc.msg}",
            location=f"{path}:{exc.lineno or 1}:{exc.offset or 0}",
            hint="fix the syntax error",
        )]
    visitor = _Visitor(
        str(path), lines,
        check_timing=not _qa106_exempt(path),
        check_rng=not _qa107_exempt(path),
    )
    visitor.visit(tree)
    findings = visitor.findings
    if path.name == "__init__.py":
        _check_init_all(path, tree, lines, findings)
    findings.sort(key=lambda d: d.location)
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: set[Path] = set()
    for item in paths:
        p = Path(item)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {p}")
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path], suppress: Iterable[str] = ()
) -> DiagnosticReport:
    """Lint every ``*.py`` under the given files/directories."""
    report = DiagnosticReport(suppress=suppress)
    for path in iter_python_files(paths):
        report.extend(lint_file(path))
    return report


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.qa.astlint``."""
    parser = argparse.ArgumentParser(
        prog="repro.qa.astlint",
        description="repo-specific AST lint (QA101-QA107)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--suppress", action="append", default=[],
                        metavar="RULE", help="drop findings of this rule id")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, text in sorted(LINT_RULES.items()):
            print(f"{rule}  {text}")
        return 0
    try:
        report = lint_paths(args.paths, suppress=args.suppress)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format())
    return 1 if report.diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["LINT_RULES", "lint_file", "lint_paths", "iter_python_files", "main"]
