"""Baseline suppression: existing debt is ratcheted, not re-litigated.

A baseline file is a JSON list of *triaged* findings -- each entry
carries the rule id, the file, the message, a stable fingerprint, and a
human justification for why it is accepted (or deliberate).  ``repro
analyze --baseline qa/baseline.json`` subtracts baselined findings from
the gate: the build stays green on day one and fails the moment a *new*
finding of any baselined class appears -- the ratchet.

Fingerprints hash ``rule | normalized path | message`` and deliberately
exclude line numbers, so unrelated edits that shift a finding a few
lines do not invalidate the baseline, while any change to what the
finding *says* (a different variable, a different global) does.

Stale entries (baselined findings that no longer occur) are reported so
the file shrinks as debt is paid down; they never fail the gate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

from repro.qa.diagnostics import Diagnostic, DiagnosticReport

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted pre-existing finding."""

    fingerprint: str
    rule: str
    path: str
    message: str
    justification: str = ""


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a report."""

    new: list[Diagnostic] = field(default_factory=list)
    baselined: list[Diagnostic] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)


def _normalized_path(location: str) -> str:
    """File part of a ``path:line:col`` location, posix separators.

    Absolute paths are made relative to the working directory when
    possible, so an analyzer run over ``/repo/src/repro`` and one over
    ``src/repro`` fingerprint identically.
    """
    path = Path(location.split(":", 1)[0])
    if path.is_absolute():
        try:
            path = path.relative_to(Path.cwd())
        except ValueError:
            pass
    return path.as_posix()


def finding_fingerprint(diag: Diagnostic) -> str:
    """Stable id of a finding: rule + file + message (no line numbers)."""
    payload = f"{diag.rule}|{_normalized_path(diag.location)}|{diag.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path}: not a baseline file (no 'entries' key)")
    entries = []
    for raw in data["entries"]:
        entries.append(BaselineEntry(
            fingerprint=raw["fingerprint"],
            rule=raw.get("rule", ""),
            path=raw.get("path", ""),
            message=raw.get("message", ""),
            justification=raw.get("justification", ""),
        ))
    return entries


def apply_baseline(
    report: DiagnosticReport, entries: Iterable[BaselineEntry]
) -> BaselineResult:
    """Split a report into new findings, baselined ones, and stale entries."""
    by_fingerprint = {e.fingerprint: e for e in entries}
    result = BaselineResult()
    matched: set[str] = set()
    for diag in report:
        fp = finding_fingerprint(diag)
        if fp in by_fingerprint:
            matched.add(fp)
            result.baselined.append(diag)
        else:
            result.new.append(diag)
    result.stale = [
        e for fp, e in sorted(by_fingerprint.items()) if fp not in matched
    ]
    return result


def write_baseline(
    report: DiagnosticReport,
    path: str | Path,
    previous: Iterable[BaselineEntry] = (),
    default_justification: str = "TODO: triage (auto-added by "
                                 "--update-baseline)",
) -> list[BaselineEntry]:
    """Write the current findings as the new baseline.

    Justifications from ``previous`` entries are preserved by
    fingerprint; genuinely new entries get ``default_justification`` so
    a human has to come back and own them.
    """
    keep = {e.fingerprint: e.justification for e in previous}
    entries: dict[str, BaselineEntry] = {}
    for diag in report:
        fp = finding_fingerprint(diag)
        entries[fp] = BaselineEntry(
            fingerprint=fp,
            rule=diag.rule,
            path=_normalized_path(diag.location),
            message=diag.message,
            justification=keep.get(fp, default_justification),
        )
    ordered = sorted(
        entries.values(), key=lambda e: (e.path, e.rule, e.fingerprint)
    )
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro analyze",
        "entries": [asdict(e) for e in ordered],
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                   encoding="utf-8")
    return ordered


__all__ = [
    "BASELINE_VERSION",
    "BaselineEntry",
    "BaselineResult",
    "finding_fingerprint",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]
