"""Intraprocedural dataflow: reaching definitions + a small value lattice.

Every QA200-series rule asks a question of the form "what kind of value
reaches this expression?" -- is the array handed to ``np.interp`` known
to be ascending, is this cache key a raw float, is a span still open on
this ``return`` path.  :class:`FunctionDataflow` answers them by walking
one function body in order, maintaining an environment mapping local
names to *abstract values* -- frozensets of tags from the lattice:

=============== =========================================================
tag             meaning
=============== =========================================================
``sorted``      provably ascending (``np.sort``/``sorted``/``linspace``/
                ``argsort``-reorder/ascending literal/diff guard)
``argsort``     result of ``np.argsort`` (indexing with it sorts)
``float``       computed float scalar (``float()``, division, ``.real``)
``quantized``   passed through ``round``/``int``/floor -- safe cache key
``complex``     complex scalar (``complex()``, ``1j`` arithmetic)
``rng-seeded``  ``default_rng(seed)``; ``rng-unseeded`` without a seed
``cm``          un-entered context manager from ``repro.obs.trace``
``span-open``   manually ``__enter__``-ed span, not yet exited
``param``       function parameter -- unknown provenance
=============== =========================================================

Joins at control-flow merges are tag-wise: *must* properties (``sorted``,
``quantized``, ``rng-seeded``) survive only when both branches agree;
*may* properties (``complex``, ``float``, ``span-open``, ...) union, so a
hazard on either path is kept.  Loop bodies are walked once against an
entry environment where loop-assigned names lose their must tags, which
is the classic one-pass widening.  ``if``/``assert`` guards of the shape
``np.all(np.diff(x) > 0)`` (or the negated ``np.any(np.diff(x) < 0)``)
refine ``x`` to ``sorted`` on the passing branch.

The walker also records reaching definitions (name -> line numbers of
the assignments that may reach each use), the environment snapshot at
every call site, manual ``__enter__`` sites, and every exit point
(``return``/``raise``/fall-through) with its environment -- the raw
material for QA201/QA202/QA204/QA205.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.qa.analyze.symbols import SymbolTable

Value = frozenset[str]

EMPTY: Value = frozenset()
SORTED: Value = frozenset({"sorted"})
PARAM: Value = frozenset({"param"})

#: Tags that must hold on *both* sides of a join to survive.
_MUST_TAGS = frozenset({"sorted", "argsort", "quantized", "rng-seeded"})

#: Tags that describe array shape/order and die under arithmetic.
_ORDER_TAGS = frozenset({"sorted", "argsort", "cm", "span-open"})

#: Canonical callables whose result is an ascending array.
_SORTED_PRODUCERS = frozenset({
    "sorted",
    "numpy.sort",
    "numpy.unique",
    "numpy.linspace",
    "numpy.logspace",
    "numpy.geomspace",
    "numpy.arange",
    "numpy.sort_complex",
    "numpy.msort",
})

#: Canonical callables that pass their first argument through unchanged
#: (for the tags we track).
_PASSTHROUGH = frozenset({
    "numpy.asarray",
    "numpy.array",
    "numpy.asanyarray",
    "numpy.ascontiguousarray",
    "numpy.asfortranarray",
    "numpy.atleast_1d",
    "numpy.copy",
})

#: Canonical callables that quantize a float into a safe key component.
_QUANTIZERS = frozenset({
    "int",
    "round",
    "math.floor",
    "math.ceil",
    "math.trunc",
    "numpy.round",
    "numpy.rint",
    "numpy.floor",
    "numpy.ceil",
})

#: Canonical callables yielding a computed float.
_FLOAT_PRODUCERS = frozenset({"float", "numpy.float64", "numpy.float32"})

#: Context managers from the obs layer (QA204's subjects).
SPAN_CONTEXTS = frozenset({
    "repro.obs.trace.span",
    "repro.obs.trace.tracing",
    "repro.obs.trace.detached_stack",
})


def join_values(a: Value, b: Value) -> Value:
    """Tag-wise join: may-tags union, must-tags intersect."""
    return ((a | b) - _MUST_TAGS) | (a & b & _MUST_TAGS)


def join_envs(a: dict[str, Value], b: dict[str, Value]) -> dict[str, Value]:
    out: dict[str, Value] = {}
    for name in set(a) | set(b):
        out[name] = join_values(a.get(name, EMPTY), b.get(name, EMPTY))
    return out


@dataclass
class ExitPoint:
    """One way out of the function, with the environment at that point."""

    node: ast.stmt | None  # Return/Raise; None = fall-through end
    env: dict[str, Value] = field(default_factory=dict)

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0) if self.node else 0


class FunctionDataflow:
    """One-pass abstract interpretation of a single function body."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
        symbols: SymbolTable,
    ) -> None:
        self.func = func
        self.symbols = symbols
        #: env snapshot live at each Call node encountered.
        self.env_at_call: dict[ast.Call, dict[str, Value]] = {}
        #: reaching definitions live at each Call node (name -> linenos).
        self.defs_at_call: dict[ast.Call, dict[str, frozenset[int]]] = {}
        #: manual ``cm.__enter__()`` sites: (call node, variable name).
        self.enter_sites: list[tuple[ast.Call, str | None]] = []
        #: span-context creations -> consumed by with/enter_context/enter.
        self.cm_sites: dict[ast.Call, bool] = {}
        self.exit_points: list[ExitPoint] = []
        #: names whose ``__exit__``/``close`` runs in a ``finally``.
        self.finally_managed: set[str] = self._scan_finally(func)
        self._defs: dict[str, frozenset[int]] = {}
        self._cm_origin: dict[str, ast.Call] = {}

        env: dict[str, Value] = {}
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = func.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                env[arg.arg] = PARAM
            if args.vararg:
                env[args.vararg.arg] = PARAM
            if args.kwarg:
                env[args.kwarg.arg] = PARAM
        out = self._walk(func.body, env)
        self.exit_points.append(ExitPoint(None, out))

    # -- statement walk ----------------------------------------------------

    def _walk(
        self, body: list[ast.stmt], env: dict[str, Value]
    ) -> dict[str, Value]:
        for stmt in body:
            env = self._stmt(stmt, env)
        return env

    def _stmt(self, stmt: ast.stmt, env: dict[str, Value]) -> dict[str, Value]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env  # nested scopes are analyzed separately
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                env = self._bind(target, stmt.value, value, env,
                                 stmt.lineno)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                env = self._bind(stmt.target, stmt.value, value, env,
                                 stmt.lineno)
            return env
        if isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                old = env.get(stmt.target.id, EMPTY)
                env = dict(env)
                env[stmt.target.id] = (old | value) - _ORDER_TAGS
                self._defs[stmt.target.id] = frozenset({stmt.lineno})
            return env
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
            return self._effect_of_call(stmt.value, env)
        if isinstance(stmt, ast.If):
            then_env = self._refine(stmt.test, dict(env), True)
            else_env = self._refine(stmt.test, dict(env), False)
            then_out = self._walk(stmt.body, then_env)
            else_out = self._walk(stmt.orelse, else_env)
            if self._always_exits(stmt.body):
                return else_out
            if stmt.orelse and self._always_exits(stmt.orelse):
                return then_out
            return join_envs(then_out, else_out)
        if isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
            return self._refine(stmt.test, dict(env), True)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self.eval(stmt.iter, env)
            widened = self._widen_for_loop(stmt, env)
            if isinstance(stmt.target, ast.Name):
                widened[stmt.target.id] = iter_value & frozenset({"complex"})
            after = self._walk(stmt.body, widened)
            after = self._walk(stmt.orelse, after)
            return join_envs(env, after)
        if isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            widened = self._widen_for_loop(stmt, env)
            after = self._walk(stmt.body, widened)
            after = self._walk(stmt.orelse, after)
            return join_envs(env, after)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            env = dict(env)
            for item in stmt.items:
                value = self.eval(item.context_expr, env)
                self._mark_cm_used(item.context_expr, env)
                if item.optional_vars is not None and isinstance(
                        item.optional_vars, ast.Name):
                    # with-managed: closes on every exit, so no span-open.
                    env[item.optional_vars.id] = value - frozenset(
                        {"cm", "span-open"}
                    )
            return self._walk(stmt.body, env)
        if isinstance(stmt, ast.Try):
            body_out = self._walk(stmt.body, dict(env))
            out = body_out
            for handler in stmt.handlers:
                handler_env = join_envs(env, body_out)
                if handler.name:
                    handler_env[handler.name] = EMPTY
                out = join_envs(out, self._walk(handler.body, handler_env))
            out = self._walk(stmt.orelse, out)
            return self._walk(stmt.finalbody, out)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if "cm" in self.eval(stmt.value, env):
                    # Returned to the caller: a factory, not a leak.
                    self._mark_cm_used(stmt.value, env)
            self.exit_points.append(ExitPoint(stmt, dict(env)))
            return env
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
            self.exit_points.append(ExitPoint(stmt, dict(env)))
            return env
        if isinstance(stmt, ast.Delete):
            env = dict(env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        # Import/Global/Nonlocal/Pass/Break/Continue/Match: evaluate any
        # embedded expressions conservatively and move on.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return env

    def _bind(
        self,
        target: ast.expr,
        value_expr: ast.expr,
        value: Value,
        env: dict[str, Value],
        lineno: int,
    ) -> dict[str, Value]:
        env = dict(env)
        if isinstance(target, ast.Name):
            env[target.id] = value
            self._defs[target.id] = frozenset({lineno})
            if "cm" in value and isinstance(value_expr, ast.Call):
                self._cm_origin[target.id] = value_expr
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = (
                value_expr.elts
                if isinstance(value_expr, (ast.Tuple, ast.List))
                and len(value_expr.elts) == len(target.elts)
                else None
            )
            for i, sub in enumerate(target.elts):
                sub_value = self.eval(elts[i], env) if elts else EMPTY
                env = self._bind(
                    sub, elts[i] if elts else value_expr, sub_value, env,
                    lineno,
                )
        # Subscript/Attribute stores don't change what we track.
        return env

    def _always_exits(self, body: list[ast.stmt]) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    def _widen_for_loop(
        self, loop: ast.stmt, env: dict[str, Value]
    ) -> dict[str, Value]:
        """Drop must-tags from names the loop body may reassign."""
        assigned: set[str] = set()
        for node in ast.walk(loop):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            assigned.add(sub.id)
        widened = dict(env)
        for name in assigned:
            if name in widened:
                widened[name] = widened[name] - _MUST_TAGS
        return widened

    # -- guard refinement --------------------------------------------------

    def _refine(
        self, test: ast.expr, env: dict[str, Value], branch: bool
    ) -> dict[str, Value]:
        """Apply ascending-order guards to the given branch's env."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._refine(test.operand, env, not branch)
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And) \
                and branch:
            for sub in test.values:
                env = self._refine(sub, env, True)
            return env
        name = self._ascending_guard(test, positive=True)
        if name is not None and branch:
            env[name] = env.get(name, EMPTY) | SORTED
            return env
        name = self._ascending_guard(test, positive=False)
        if name is not None and not branch:
            env[name] = env.get(name, EMPTY) | SORTED
        return env

    def _ascending_guard(
        self, test: ast.expr, positive: bool
    ) -> str | None:
        """Name asserted ascending by ``np.all(np.diff(x) > 0)`` guards.

        ``positive=True`` matches the affirmative form (``np.all(diff >
        0)`` true => sorted); ``positive=False`` the negated form
        (``np.any(diff < 0)`` false => sorted).
        """
        if not (isinstance(test, ast.Call) and test.args):
            return None
        outer = self.symbols.canonical(test.func)
        wanted = "numpy.all" if positive else "numpy.any"
        if outer != wanted:
            return None
        cmp = test.args[0]
        if not (isinstance(cmp, ast.Compare) and len(cmp.ops) == 1):
            return None
        ok_ops = (ast.Gt, ast.GtE) if positive else (ast.Lt, ast.LtE)
        if not isinstance(cmp.ops[0], ok_ops):
            return None
        inner = cmp.left
        if not (isinstance(inner, ast.Call)
                and self.symbols.canonical(inner.func) == "numpy.diff"
                and inner.args
                and isinstance(inner.args[0], ast.Name)):
            return None
        comparator = cmp.comparators[0]
        if not (isinstance(comparator, ast.Constant)
                and comparator.value == 0):
            return None
        return inner.args[0].id

    # -- expression evaluation ---------------------------------------------

    def eval(self, node: ast.expr, env: dict[str, Value]) -> Value:
        """Abstract value of an expression in the given environment."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, complex):
                return frozenset({"complex"})
            return EMPTY
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY)
        if isinstance(node, (ast.Tuple, ast.List)):
            tags = EMPTY
            for elt in node.elts:
                tags = tags | self.eval(elt, env)
            if self._is_ascending_literal(node):
                tags = tags | SORTED
            return tags
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            tags = (self.eval(node.left, env)
                    | self.eval(node.right, env)) - _ORDER_TAGS
            if isinstance(node.op, ast.Div):
                tags = tags | frozenset({"float"})
            return tags
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env) - _ORDER_TAGS
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value, env)
            if node.attr in ("real", "imag") and "complex" in base:
                return frozenset({"float"})
            dotted = self.symbols.canonical(node)
            if dotted in _SORTED_PRODUCERS:  # e.g. bound alias use
                return EMPTY
            return EMPTY
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return join_values(self.eval(node.body, env),
                               self.eval(node.orelse, env))
        if isinstance(node, ast.BoolOp):
            for sub in node.values:
                self.eval(sub, env)
            return EMPTY
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for sub in node.comparators:
                self.eval(sub, env)
            return EMPTY
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return EMPTY
        if isinstance(node, ast.JoinedStr):
            return EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return EMPTY

    def _eval_call(self, node: ast.Call, env: dict[str, Value]) -> Value:
        self.env_at_call[node] = dict(env)
        self.defs_at_call[node] = dict(self._defs)
        for arg in node.args:
            if "cm" in self.eval(arg, env):
                # Handed to another function: that callee owns closing it.
                self._mark_cm_used(arg, env)
        for kw in node.keywords:
            if "cm" in self.eval(kw.value, env):
                self._mark_cm_used(kw.value, env)

        dotted = self.symbols.canonical(node.func)
        if dotted is None and isinstance(node.func, ast.Name):
            # Untracked bare name: assume the builtin (sorted, round,
            # complex, ...); a local shadowing one of these is on its own.
            dotted = node.func.id
        if dotted in _SORTED_PRODUCERS:
            return SORTED
        if dotted == "numpy.argsort":
            return frozenset({"argsort"})
        if dotted in _PASSTHROUGH and node.args:
            return self.eval(node.args[0], env) & frozenset(
                {"sorted", "argsort", "complex", "float", "param"}
            )
        if dotted in _QUANTIZERS:
            return frozenset({"quantized"})
        if dotted in _FLOAT_PRODUCERS:
            return frozenset({"float"})
        if dotted == "complex":
            return frozenset({"complex"})
        if dotted == "numpy.random.default_rng":
            seeded = bool(node.args) or bool(node.keywords)
            return frozenset({"rng-seeded" if seeded else "rng-unseeded"})
        if dotted in SPAN_CONTEXTS:
            self.cm_sites.setdefault(node, False)
            return frozenset({"cm"})
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if node.func.attr == "__enter__":
                base_value = self.eval(base, env)
                if "cm" in base_value:
                    name = base.id if isinstance(base, ast.Name) else None
                    self.enter_sites.append((node, name))
                    self._mark_cm_used(base, env)
                    return frozenset({"span-open"})
            if node.func.attr == "enter_context" and node.args:
                # ExitStack-managed: closed by the stack on every exit.
                self._mark_cm_used(node.args[0], env)
                return self.eval(node.args[0], env) - frozenset(
                    {"cm", "span-open"}
                )
        return EMPTY

    def _eval_subscript(
        self, node: ast.Subscript, env: dict[str, Value]
    ) -> Value:
        base = self.eval(node.value, env)
        index = self.eval(node.slice, env)
        scalar_tags = base & frozenset({"complex"})
        if "argsort" in index:
            # x[np.argsort(...)] reorders ascending (by the sort key).
            return SORTED | scalar_tags
        if isinstance(node.slice, ast.Slice):
            step = node.slice.step
            forward = step is None or (
                isinstance(step, ast.Constant)
                and isinstance(step.value, int) and step.value > 0
            )
            if forward:
                return base & frozenset({"sorted", "complex", "float"})
            return scalar_tags
        return scalar_tags

    # -- helpers -----------------------------------------------------------

    def _is_ascending_literal(self, node: ast.expr) -> bool:
        if not isinstance(node, (ast.Tuple, ast.List)) or not node.elts:
            return False
        values = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, (int, float))):
                return False
            values.append(elt.value)
        return all(a <= b for a, b in zip(values, values[1:]))

    def _effect_of_call(
        self, expr: ast.expr, env: dict[str, Value]
    ) -> dict[str, Value]:
        """Side effects of a statement-level call (``x.sort()`` etc.)."""
        if not (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and isinstance(expr.func.value, ast.Name)):
            return env
        name = expr.func.value.id
        if expr.func.attr == "sort":
            env = dict(env)
            env[name] = env.get(name, EMPTY) | SORTED
        elif expr.func.attr == "__enter__":
            if "cm" in env.get(name, EMPTY):
                env = dict(env)
                env[name] = (env[name] - frozenset({"cm"})) | frozenset(
                    {"span-open"}
                )
        elif expr.func.attr in ("__exit__", "close"):
            env = dict(env)
            env[name] = env.get(name, EMPTY) - frozenset({"span-open"})
        return env

    def _mark_cm_used(
        self, expr: ast.expr, env: dict[str, Value]
    ) -> None:
        """Record that a span context manager reached a safe consumer."""
        if isinstance(expr, ast.Call) and expr in self.cm_sites:
            self.cm_sites[expr] = True
        elif isinstance(expr, ast.Name):
            origin = self._cm_origin.get(expr.id)
            if origin is not None and origin in self.cm_sites:
                self.cm_sites[origin] = True

    def _scan_finally(self, func: ast.AST) -> set[str]:
        """Names whose cleanup provably runs in a ``finally`` block."""
        managed: set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in ("__exit__", "close")
                            and isinstance(sub.func.value, ast.Name)):
                        managed.add(sub.func.value.id)
        return managed


def iter_functions(
    tree: ast.Module,
) -> list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function in a module with its dotted qualname, outer first."""
    out: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                out.append((qualname, child))
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")

    visit(tree, "")
    return out


__all__ = [
    "Value",
    "EMPTY",
    "SORTED",
    "PARAM",
    "SPAN_CONTEXTS",
    "join_values",
    "join_envs",
    "ExitPoint",
    "FunctionDataflow",
    "iter_functions",
]
