"""QA101-QA107: the per-file syntactic lints, ported into the engine.

These began life in :mod:`repro.qa.astlint` as one ad-hoc visitor; here
each is a registered :class:`~repro.qa.analyze.engine.Rule` sharing the
engine's symbol tables (alias tracking is no longer re-implemented per
rule) and suppression handling.  ``python -m repro.qa.astlint`` remains
a thin shim over these rules, so the per-file CLI and its exit codes are
unchanged.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from repro.qa.analyze.engine import ModuleContext, Rule, register
from repro.qa.diagnostics import Diagnostic, Severity

#: ``time``-module functions QA106 treats as ad-hoc timers.
_TIMING_FUNCS = frozenset({"time", "perf_counter", "monotonic",
                           "process_time"})
_TIMING_CANONICAL = frozenset(f"time.{f}" for f in _TIMING_FUNCS)

#: Attribute names that carry complex AC results in this codebase.
_COMPLEX_ATTRS = frozenset({"impedance", "admittance", "transfer"})

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})

_LINALG_INV = frozenset({"numpy.linalg.inv", "scipy.linalg.inv"})


def _walk_calls(ctx: ModuleContext) -> Iterator[ast.Call]:
    if ctx.module.tree is None:
        return
    for node in ast.walk(ctx.module.tree):
        if isinstance(node, ast.Call):
            yield node


def qa106_exempt(path: Path) -> bool:
    """Files allowed to call raw timers: the obs layer itself (it *is*
    the timing machinery) and the benchmark harness (whose product is
    raw wall-clock numbers)."""
    posix = path.as_posix()
    return (
        "/obs/" in posix
        or posix.endswith("perf/bench.py")
        or path.parent.name == "obs"
    )


def qa107_exempt(path: Path) -> bool:
    """Files allowed to call ``default_rng()`` unseeded: tests, where
    fresh entropy is sometimes the point (fuzzing, property-based
    data)."""
    posix = path.as_posix()
    return (
        "/tests/" in posix
        or posix.startswith("tests/")
        or path.name.startswith("test_")
        or path.name.startswith("conftest")
    )


# -- QA101 -------------------------------------------------------------------

def _check_qa101(ctx: ModuleContext) -> Iterable[Diagnostic]:
    for call in _walk_calls(ctx):
        func = call.func
        dotted = ctx.symbols.canonical(func)
        is_inv = dotted in _LINALG_INV
        if not is_inv and isinstance(func, ast.Attribute) \
                and func.attr == "inv":
            # <anything>.linalg.inv -- flag even when the root name is
            # not a tracked import (defensive parity with the old lint).
            value = func.value
            is_inv = (
                (isinstance(value, ast.Attribute)
                 and value.attr == "linalg")
                or (isinstance(value, ast.Name) and value.id == "linalg")
            )
        if is_inv:
            diag = ctx.report(
                QA101, call,
                "explicit matrix inverse on a potentially dense matrix",
            )
            if diag:
                yield diag


QA101 = register(Rule(
    id="QA101",
    title="explicit dense-matrix inverse; prefer factor-and-solve",
    severity=Severity.ERROR,
    hint="factor once and solve (scipy.linalg.lu_factor/lu_solve, or "
         "cho_factor for SPD); silence a deliberate full inverse with "
         "'# qa: ignore[QA101]'",
    docs="""\
``np.linalg.inv(A) @ b`` forms a dense inverse -- O(n^3) work, worse
conditioning, and no factor reuse across solves.  Factor once and solve:

    lu = scipy.linalg.lu_factor(A)
    x = scipy.linalg.lu_solve(lu, b)

For SPD matrices use ``cho_factor``/``cho_solve``.  A deliberate full
inverse (e.g. to inspect entries) takes '# qa: ignore[QA101]'.""",
    check=_check_qa101,
))


# -- QA102 -------------------------------------------------------------------

def _check_qa102(ctx: ModuleContext) -> Iterable[Diagnostic]:
    if ctx.module.tree is None:
        return
    for node in ast.walk(ctx.module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set,
                 ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                diag = ctx.report(
                    QA102, default,
                    f"mutable default argument in {node.name}() is "
                    "shared across calls",
                )
                if diag:
                    yield diag


QA102 = register(Rule(
    id="QA102",
    title="mutable default argument",
    severity=Severity.ERROR,
    hint="default to None and create the object in the body "
         "(or use dataclasses.field(default_factory=...))",
    docs="""\
A ``def f(x=[])`` default is created once at definition time and shared
by every call; mutations accumulate across calls.  Default to ``None``
and create the object in the body, or use
``dataclasses.field(default_factory=list)``.""",
    check=_check_qa102,
))


# -- QA103 -------------------------------------------------------------------

def _check_qa103(ctx: ModuleContext) -> Iterable[Diagnostic]:
    mod = ctx.module
    if mod.path.name != "__init__.py" or mod.tree is None:
        return
    has_imports = any(
        isinstance(stmt, (ast.Import, ast.ImportFrom))
        for stmt in mod.tree.body
    )
    if not has_imports:
        return
    for stmt in mod.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return
    diag = ctx.report(
        QA103, None,
        "package __init__.py re-exports names but defines no __all__",
    )
    if diag:
        yield diag


QA103 = register(Rule(
    id="QA103",
    title="package __init__.py re-exports names without __all__",
    severity=Severity.ERROR,
    hint="list the public surface explicitly in __all__",
    docs="""\
A package ``__init__.py`` that imports names but defines no ``__all__``
has an implicit public surface: every import becomes part of the API by
accident.  Declare ``__all__`` listing exactly what the package exports.
Suppress on line 1 with '# qa: ignore[QA103]'.""",
    check=_check_qa103,
))


# -- QA104 -------------------------------------------------------------------

def _check_qa104(ctx: ModuleContext) -> Iterable[Diagnostic]:
    for call in _walk_calls(ctx):
        if not (isinstance(call.func, ast.Name)
                and call.func.id == "float" and call.args):
            continue
        for sub in ast.walk(call.args[0]):
            if isinstance(sub, ast.Attribute) \
                    and sub.attr in _COMPLEX_ATTRS:
                diag = ctx.report(
                    QA104, call,
                    f"float() of complex-valued '.{sub.attr}' discards "
                    "the imaginary part (or raises on numpy complex)",
                )
                if diag:
                    yield diag
                break


QA104 = register(Rule(
    id="QA104",
    title="float() of a complex AC result (impedance/admittance/transfer)",
    severity=Severity.ERROR,
    hint="use .real, .imag, or abs() explicitly",
    docs="""\
``float(z)`` on a complex AC quantity either raises (numpy complex) or
silently keeps only the real part (python complex via ``__float__`` is
an error too) -- either way the imaginary part was dropped without the
code saying so.  Name the intent: ``z.real``, ``z.imag``, or ``abs(z)``.
This rule matches by attribute *name* (``impedance``/``admittance``/
``transfer``); QA205 is the dataflow-resolved generalization.""",
    check=_check_qa104,
))


# -- QA105 -------------------------------------------------------------------

def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: list[str] = []
    if isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    elif isinstance(handler.type, ast.Tuple):
        names = [e.id for e in handler.type.elts if isinstance(e, ast.Name)]
    return any(n in ("Exception", "BaseException") for n in names)


def _check_qa105(ctx: ModuleContext) -> Iterable[Diagnostic]:
    if ctx.module.tree is None:
        return
    for node in ast.walk(ctx.module.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            body_is_silent = all(
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is ...)
                for stmt in handler.body
            )
            if body_is_silent and _is_broad_handler(handler):
                diag = ctx.report(
                    QA105, handler,
                    "broad except clause silently swallows every failure",
                )
                if diag:
                    yield diag


QA105 = register(Rule(
    id="QA105",
    title="broad except clause that silently passes",
    severity=Severity.ERROR,
    hint="catch the narrow exception type, re-raise, or at least "
         "record what was ignored (e.g. in a RunReport)",
    docs="""\
``except Exception: pass`` swallows every failure -- including the ones
the resilience layer is supposed to log.  Catch the narrow type, or
record the downgrade.  QA206 is the wider dataflow version: a broad
handler whose body *does* something but never records the degradation.""",
    check=_check_qa105,
))


# -- QA106 -------------------------------------------------------------------

def _check_qa106(ctx: ModuleContext) -> Iterable[Diagnostic]:
    if qa106_exempt(ctx.module.path):
        return
    for call in _walk_calls(ctx):
        if ctx.symbols.canonical(call.func) in _TIMING_CANONICAL:
            diag = ctx.report(
                QA106, call,
                "ad-hoc wall-clock timing outside repro.obs",
            )
            if diag:
                yield diag


QA106 = register(Rule(
    id="QA106",
    title="ad-hoc timing call outside repro.obs (use a span)",
    severity=Severity.ERROR,
    hint="wrap the stage in repro.obs.trace.span(...) and read "
         "sp.duration, so the measurement lands in the trace tree; "
         "silence a deliberate raw timer with '# qa: ignore[QA106]'",
    docs="""\
``t0 = time.perf_counter()`` measures a stage invisibly: the number
never reaches the trace tree, so ``repro trace`` and ``--trace-json``
cannot account for it.  Wrap the stage:

    with span("stage.name") as sp:
        ...
    elapsed = sp.duration

The obs layer itself and ``perf/bench.py`` are exempt (they *are* the
timing machinery).""",
    check=_check_qa106,
))


# -- QA107 -------------------------------------------------------------------

def _check_qa107(ctx: ModuleContext) -> Iterable[Diagnostic]:
    if qa107_exempt(ctx.module.path):
        return
    for call in _walk_calls(ctx):
        if call.args or call.keywords:
            continue
        dotted = ctx.symbols.canonical(call.func)
        is_rng = dotted == "numpy.random.default_rng" or (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "default_rng"
        )
        if is_rng:
            diag = ctx.report(
                QA107, call,
                "unseeded default_rng() draws from OS entropy, making "
                "the run irreproducible",
            )
            if diag:
                yield diag


QA107 = register(Rule(
    id="QA107",
    title="unseeded default_rng() outside tests (pass a seed)",
    severity=Severity.ERROR,
    hint="pass an explicit seed (or a generator plumbed from the "
         "caller's config); silence deliberate entropy with "
         "'# qa: ignore[QA107]'",
    docs="""\
``np.random.default_rng()`` with no seed draws from OS entropy: two
runs of the same sweep place random sources differently and produce
different Monte-Carlo numbers.  Pass an explicit seed, or accept a
``Generator`` plumbed from the caller's configuration.  Test files are
exempt (fresh entropy is sometimes the point).""",
    check=_check_qa107,
))


#: The per-file lint catalog, for the astlint compatibility shim.
SYNTAX_RULE_IDS = ("QA101", "QA102", "QA103", "QA104", "QA105", "QA106",
                   "QA107")

__all__ = [
    "SYNTAX_RULE_IDS",
    "qa106_exempt",
    "qa107_exempt",
    "QA101", "QA102", "QA103", "QA104", "QA105", "QA106", "QA107",
]
