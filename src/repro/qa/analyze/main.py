"""``repro analyze`` / ``python -m repro.qa.analyze`` entry point.

Text output for humans, ``--format json`` (and ``--out``) for machines,
``--explain QAnnn`` for the per-rule reference, ``--baseline`` for the
ratchet, and an exit-code gate: 0 when no new error-severity finding
survives the baseline, 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.qa.analyze.baseline import (
    BaselineResult,
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.qa.analyze.engine import RULES, AnalysisResult, analyze_paths
from repro.qa.diagnostics import Diagnostic, Severity


def _ensure_rules() -> None:
    from repro.qa.analyze import rules_semantic, rules_syntax  # noqa: F401


def _json_payload(
    result: AnalysisResult, applied: BaselineResult
) -> dict:
    baselined_fps = {finding_fingerprint(d) for d in applied.baselined}

    def encode(diag: Diagnostic) -> dict:
        fp = finding_fingerprint(diag)
        return {
            "rule": diag.rule,
            "severity": str(diag.severity),
            "message": diag.message,
            "location": diag.location,
            "hint": diag.hint,
            "fingerprint": fp,
            "baselined": fp in baselined_fps,
        }

    return {
        "version": 1,
        "tool": "repro analyze",
        "summary": {
            "modules": len(result.project),
            "findings": len(result.report),
            "new": len(applied.new),
            "baselined": len(applied.baselined),
            "stale_baseline_entries": len(applied.stale),
            "by_rule": dict(sorted(result.counts.items())),
        },
        "findings": [encode(d) for d in result.report],
        "stale_baseline_entries": [
            {"fingerprint": e.fingerprint, "rule": e.rule, "path": e.path}
            for e in applied.stale
        ],
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro analyze``."""
    _ensure_rules()
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="project-wide dataflow lint (QA101-QA107 syntax rules "
                    "+ QA201-QA207 semantic rules)",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="stdout format")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the JSON report to this file "
                             "(the CI artifact)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline JSON of triaged findings; only "
                             "non-baselined findings fail the gate")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the --baseline file from the "
                             "current findings (keeps justifications)")
    parser.add_argument("--suppress", action="append", default=[],
                        metavar="RULE", help="drop findings of this rule id")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only these rule ids")
    parser.add_argument("--explain", default=None, metavar="RULE",
                        help="print one rule's reference doc and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id].title}")
        return 0
    if args.explain:
        rule = RULES.get(args.explain)
        if rule is None:
            print(f"error: unknown rule {args.explain!r} "
                  f"(try --list-rules)", file=sys.stderr)
            return 2
        print(f"{rule.id}: {rule.title}\nseverity: {rule.severity}\n")
        print(rule.docs)
        print(f"\nfix hint: {rule.hint}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in RULES]
        if unknown:
            print(f"error: unknown rule(s) {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    try:
        result = analyze_paths(args.paths, rules=rule_ids,
                               suppress=args.suppress)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    entries = []
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
    if args.update_baseline:
        if not args.baseline:
            print("error: --update-baseline requires --baseline",
                  file=sys.stderr)
            return 2
        written = write_baseline(result.report, args.baseline,
                                 previous=entries)
        print(f"wrote {args.baseline}: {len(written)} baselined "
              f"finding(s)")
        return 0

    applied = apply_baseline(result.report, entries)
    payload = _json_payload(result, applied)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n",
                       encoding="utf-8")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for diag in applied.new:
            print(diag.format())
        summary = (
            f"analyze: {len(result.project)} module(s), "
            f"{len(applied.new)} new finding(s), "
            f"{len(applied.baselined)} baselined"
        )
        if applied.stale:
            summary += (
                f", {len(applied.stale)} stale baseline entr"
                f"{'y' if len(applied.stale) == 1 else 'ies'} "
                "(debt paid down -- prune the baseline)"
            )
        if result.report.num_suppressed:
            summary += f", {result.report.num_suppressed} suppressed"
        print(summary)
        if args.out:
            print(f"wrote {args.out}")

    has_new_errors = any(
        d.severity >= Severity.ERROR for d in applied.new
    )
    return 1 if has_new_errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["main"]
