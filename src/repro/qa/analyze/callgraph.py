"""Project call graph: who calls what, resolved through symbol tables.

Best-effort and static: an edge is recorded when a call's target
expression resolves to a canonical dotted name (module function, method
by qualified name, or an imported repro-internal name).  Dynamic
dispatch, ``getattr``, and callbacks passed as values are out of scope
-- except the one callback pattern the QA203 fork-safety rule cares
about, which is tracked explicitly: functions *submitted* to a process
pool (``executor.submit(f, ...)``, ``ProcessPoolExecutor(initializer=f)``,
``pool.map(f, ...)``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.qa.analyze.dataflow import iter_functions
from repro.qa.analyze.project import Module, Project
from repro.qa.analyze.symbols import SymbolTable

#: Attribute names through which work is handed to a process pool.
_SUBMIT_ATTRS = frozenset({"submit", "map", "apply_async", "starmap"})


@dataclass
class FunctionInfo:
    """One function definition in the project."""

    qualname: str  # "repro.perf.parallel._solve_chunk"
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    callees: set[str] = field(default_factory=set)


@dataclass
class PoolSubmission:
    """A function value handed to a process pool."""

    qualname: str  # resolved worker function
    call: ast.Call  # the submit/initializer site
    module: str  # module containing the submission site
    kind: str  # "submit" | "initializer" | "map"


class CallGraph:
    """Function index + call edges + pool submissions for a project."""

    def __init__(
        self, project: Project, tables: dict[str, SymbolTable]
    ) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.callers: dict[str, set[str]] = {}
        self.pool_submissions: list[PoolSubmission] = []
        for mod in project:
            if mod.tree is None:
                continue
            table = tables[mod.name]
            for qualname, node in iter_functions(mod.tree):
                info = FunctionInfo(
                    qualname=f"{mod.name}.{qualname}",
                    module=mod.name,
                    node=node,
                )
                self.functions[info.qualname] = info
                for call in (n for n in ast.walk(node)
                             if isinstance(n, ast.Call)):
                    callee = table.canonical(call.func)
                    if callee is None and isinstance(call.func, ast.Name):
                        local = f"{mod.name}.{call.func.id}"
                        if local in self.functions or self._later_def(
                                mod, call.func.id):
                            callee = local
                    if callee is not None:
                        info.callees.add(callee)
                        self.callers.setdefault(callee, set()).add(
                            info.qualname
                        )
            self._collect_submissions(mod, table)

    def _later_def(self, mod: Module, name: str) -> bool:
        """A module-level def by this name exists (forward references)."""
        assert mod.tree is not None
        return any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == name
            for stmt in mod.tree.body
        )

    def _collect_submissions(self, mod: Module, table: SymbolTable) -> None:
        assert mod.tree is not None
        for call in (n for n in ast.walk(mod.tree)
                     if isinstance(n, ast.Call)):
            worker: ast.expr | None = None
            kind = ""
            if (isinstance(call.func, ast.Attribute)
                    and call.func.attr in _SUBMIT_ATTRS and call.args):
                worker = call.args[0]
                kind = "map" if call.func.attr != "submit" else "submit"
            else:
                dotted = table.canonical(call.func) or ""
                if dotted.endswith("ProcessPoolExecutor"):
                    for kw in call.keywords:
                        if kw.arg == "initializer":
                            worker = kw.value
                            kind = "initializer"
            if worker is None:
                continue
            qualname = table.canonical(worker)
            if qualname is None and isinstance(worker, ast.Name):
                local = f"{mod.name}.{worker.id}"
                if local in self.functions:
                    qualname = local
            if qualname is not None and qualname in self.functions:
                self.pool_submissions.append(PoolSubmission(
                    qualname=qualname, call=call, module=mod.name, kind=kind,
                ))

    def calls_of(self, qualname: str) -> set[str]:
        info = self.functions.get(qualname)
        return set(info.callees) if info else set()

    def callers_of(self, qualname: str) -> set[str]:
        return set(self.callers.get(qualname, ()))

    def reachable_from(self, qualname: str, depth: int = 3) -> set[str]:
        """Project functions transitively callable from one function."""
        seen: set[str] = set()
        frontier = {qualname}
        for _ in range(depth):
            nxt: set[str] = set()
            for fn in frontier:
                for callee in self.calls_of(fn):
                    if callee in self.functions and callee not in seen:
                        seen.add(callee)
                        nxt.add(callee)
            frontier = nxt
            if not frontier:
                break
        return seen


__all__ = ["FunctionInfo", "PoolSubmission", "CallGraph"]
