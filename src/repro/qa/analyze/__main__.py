"""``python -m repro.qa.analyze``."""

import sys

from repro.qa.analyze.main import main

sys.exit(main())
