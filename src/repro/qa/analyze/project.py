"""Module loading and the project import graph.

The analyzer's unit of work is a :class:`Module` -- one parsed source
file plus the bookkeeping every pass needs (dotted name, source lines
for suppression comments).  A :class:`Project` is the set of modules
under analysis plus the import graph between them, which is what makes
the engine *project-wide*: rules can ask "who imports this module" or
resolve a name imported from a sibling module instead of guessing from
syntax alone.

Dotted names are derived from the filesystem: a file under a directory
chain containing ``repro`` gets its real package name
(``.../src/repro/loop/extractor.py`` -> ``repro.loop.extractor``); a
loose file (rule fixtures in tests) gets its stem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass
class Module:
    """One parsed source file.

    Attributes:
        name: Dotted module name (``"repro.loop.extractor"``).
        path: Source path as given to the loader.
        source: Raw file contents.
        lines: ``source.splitlines()`` (suppression-comment lookups).
        tree: Parsed AST; None when the file does not parse.
        syntax_error: The ``SyntaxError`` when ``tree`` is None.
    """

    name: str
    path: Path
    source: str
    lines: list[str]
    tree: ast.Module | None
    syntax_error: SyntaxError | None = None

    @classmethod
    def parse(cls, path: str | Path, name: str | None = None) -> "Module":
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        tree: ast.Module | None = None
        error: SyntaxError | None = None
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            error = exc
        return cls(
            name=name if name is not None else module_name_for(path),
            path=path,
            source=source,
            lines=source.splitlines(),
            tree=tree,
            syntax_error=error,
        )


def module_name_for(path: Path) -> str:
    """Dotted module name for a source path.

    Walks the parent chain looking for a package root (a directory whose
    ancestors stop containing ``__init__.py``); everything from the root
    down becomes the dotted name.  Falls back to the bare stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: set[Path] = set()
    for item in paths:
        p = Path(item)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {p}")
    return sorted(out)


class Project:
    """Every module under analysis plus the import graph between them."""

    def __init__(self, modules: Iterable[Module]) -> None:
        self.modules: dict[str, Module] = {}
        for mod in modules:
            self.modules[mod.name] = mod
        #: importer -> set of imported *project* module names.
        self.imports: dict[str, set[str]] = {}
        #: imported module -> set of project modules importing it.
        self.imported_by: dict[str, set[str]] = {}
        for mod in self.modules.values():
            deps = self._module_imports(mod)
            self.imports[mod.name] = deps
            for dep in deps:
                self.imported_by.setdefault(dep, set()).add(mod.name)

    @classmethod
    def load(cls, paths: Iterable[str | Path]) -> "Project":
        """Parse every ``*.py`` under the given files/directories."""
        return cls(Module.parse(p) for p in iter_python_files(paths))

    def __iter__(self) -> Iterator[Module]:
        for name in sorted(self.modules):
            yield self.modules[name]

    def __len__(self) -> int:
        return len(self.modules)

    def get(self, name: str) -> Module | None:
        return self.modules.get(name)

    def _module_imports(self, mod: Module) -> set[str]:
        """Project-internal modules this module imports."""
        deps: set[str] = set()
        if mod.tree is None:
            return deps
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._resolve_target(alias.name):
                        deps.add(self._resolve_target(alias.name))  # type: ignore[arg-type]
            elif isinstance(node, ast.ImportFrom):
                base = absolute_import_base(mod, node)
                if base is None:
                    continue
                resolved_base = self._resolve_target(base)
                if resolved_base:
                    deps.add(resolved_base)
                for alias in node.names:
                    sub = self._resolve_target(f"{base}.{alias.name}")
                    if sub:
                        deps.add(sub)
        deps.discard(mod.name)
        return deps

    def _resolve_target(self, dotted: str | None) -> str | None:
        """The loaded module (or package __init__) a dotted name hits."""
        if not dotted:
            return None
        if dotted in self.modules:
            return dotted
        # "from repro.loop import extractor" names the package; also
        # accept a prefix that is a loaded module.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix
        return None


def absolute_import_base(mod: Module, node: ast.ImportFrom) -> str | None:
    """Absolute dotted base of a ``from X import ...`` statement.

    Relative imports climb from the importer's package; an over-deep
    relative import (more dots than packages) resolves to None.
    """
    if node.level == 0:
        return node.module
    pkg_parts = mod.name.split(".")
    if mod.path.name != "__init__.py":
        pkg_parts = pkg_parts[:-1]
    climb = node.level - 1
    if climb > len(pkg_parts):
        return None
    base_parts = pkg_parts[: len(pkg_parts) - climb]
    if node.module:
        base_parts += node.module.split(".")
    return ".".join(base_parts) if base_parts else None


__all__ = [
    "Module",
    "Project",
    "module_name_for",
    "iter_python_files",
    "absolute_import_base",
]

