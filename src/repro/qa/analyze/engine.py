"""The analyzer engine: rule framework + project driver.

A :class:`Rule` packages one checker: a stable id (the unit of
suppression and baselining), a one-line title, a severity, a fix hint,
and a ``docs`` string rendered by ``repro analyze --explain QAnnn``.
Rules are registered in :data:`RULES` (populated by
:mod:`~repro.qa.analyze.rules_syntax` and
:mod:`~repro.qa.analyze.rules_semantic` at import time) and run once per
module against a :class:`ModuleContext`, which lazily exposes the
expensive shared passes -- symbol table, per-function dataflow, the
project call graph -- so each is computed once however many rules
consume it.

``# qa: ignore[...]`` suppression comments are honored centrally in
:meth:`ModuleContext.report`, so every rule (ported QA1xx and semantic
QA2xx alike) gets identical suppression semantics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.qa.analyze.callgraph import CallGraph
from repro.qa.analyze.dataflow import FunctionDataflow, iter_functions
from repro.qa.analyze.ignores import is_suppressed
from repro.qa.analyze.project import Module, Project
from repro.qa.analyze.symbols import SymbolTable
from repro.qa.diagnostics import Diagnostic, DiagnosticReport, Severity


@dataclass(frozen=True)
class Rule:
    """One registered checker.

    Attributes:
        id: Stable rule id (``"QA201"``); the unit of suppression.
        title: One-line summary (``--list-rules`` output).
        severity: Reported severity of every finding.
        hint: Default fix hint attached to findings.
        docs: Longer description with examples (``--explain`` output).
        check: ``check(ctx)`` yielding findings for one module.
    """

    id: str
    title: str
    severity: Severity
    hint: str
    docs: str
    check: Callable[["ModuleContext"], Iterable[Diagnostic]]


#: Registered rules, id -> Rule; populated on rules-module import.
RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return rule


class ModuleContext:
    """Everything a rule may ask about one module (lazily computed)."""

    def __init__(
        self,
        module: Module,
        project: Project | None = None,
        symbols: SymbolTable | None = None,
        callgraph: CallGraph | None = None,
    ) -> None:
        self.module = module
        self.project = project
        self.symbols = symbols if symbols is not None else SymbolTable(
            module, project
        )
        self.callgraph = callgraph
        self._dataflow: dict[ast.AST, FunctionDataflow] = {}
        self._functions: list[tuple[str, ast.AST]] | None = None
        self._module_flow: FunctionDataflow | None = None

    # -- shared passes -----------------------------------------------------

    def functions(self) -> list[tuple[str, ast.AST]]:
        """Every function in the module with its dotted qualname."""
        if self._functions is None:
            self._functions = (
                list(iter_functions(self.module.tree))
                if self.module.tree is not None else []
            )
        return self._functions

    def dataflow(self, func: ast.AST) -> FunctionDataflow:
        """Memoized per-function dataflow analysis."""
        flow = self._dataflow.get(func)
        if flow is None:
            flow = FunctionDataflow(func, self.symbols)  # type: ignore[arg-type]
            self._dataflow[func] = flow
        return flow

    def module_flow(self) -> FunctionDataflow | None:
        """Dataflow over the module's top-level statements."""
        if self._module_flow is None and self.module.tree is not None:
            self._module_flow = FunctionDataflow(
                self.module.tree, self.symbols
            )
        return self._module_flow

    def all_flows(self) -> list[FunctionDataflow]:
        flows = [self.dataflow(func) for _, func in self.functions()]
        top = self.module_flow()
        return ([top] if top is not None else []) + flows

    # -- reporting ---------------------------------------------------------

    def report(
        self,
        rule: Rule,
        node: ast.AST | None,
        message: str,
        hint: str | None = None,
    ) -> Diagnostic | None:
        """Build a finding unless an ignore comment suppresses it."""
        line_no = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        lines = self.module.lines
        line = lines[line_no - 1] if 0 <= line_no - 1 < len(lines) else ""
        if is_suppressed(rule.id, line):
            return None
        return Diagnostic(
            rule=rule.id,
            severity=rule.severity,
            message=message,
            location=f"{self.module.path}:{line_no}:{col}",
            hint=hint if hint is not None else rule.hint,
        )


@dataclass
class AnalysisResult:
    """Outcome of one engine run."""

    report: DiagnosticReport
    project: Project
    #: rule id -> number of findings (pre-baseline).
    counts: dict[str, int] = field(default_factory=dict)


def _ensure_rules_loaded() -> None:
    # Importing the rule modules populates RULES via register().
    from repro.qa.analyze import rules_semantic, rules_syntax  # noqa: F401


def analyze_project(
    project: Project,
    rules: Iterable[str] | None = None,
    suppress: Iterable[str] = (),
) -> AnalysisResult:
    """Run the engine over a loaded project.

    Args:
        project: Modules under analysis (import graph included).
        rules: Rule ids to run; default all registered.
        suppress: Rule ids whose findings are dropped (counted).
    """
    _ensure_rules_loaded()
    selected = [
        RULES[rid] for rid in (rules if rules is not None else sorted(RULES))
    ]
    report = DiagnosticReport(suppress=suppress)
    counts: dict[str, int] = {}
    tables = {mod.name: SymbolTable(mod, project) for mod in project}
    graph = CallGraph(project, tables)
    for mod in project:
        if mod.tree is None:
            exc = mod.syntax_error
            report.add(Diagnostic(
                rule="QA000",
                severity=Severity.ERROR,
                message=f"file does not parse: "
                        f"{exc.msg if exc else 'unknown syntax error'}",
                location=f"{mod.path}:"
                         f"{(exc.lineno if exc else 1) or 1}:"
                         f"{(exc.offset if exc else 0) or 0}",
                hint="fix the syntax error",
            ))
            counts["QA000"] = counts.get("QA000", 0) + 1
            continue
        ctx = ModuleContext(
            mod, project, symbols=tables[mod.name], callgraph=graph
        )
        findings: list[Diagnostic] = []
        for rule in selected:
            for diag in rule.check(ctx):
                findings.append(diag)
                counts[diag.rule] = counts.get(diag.rule, 0) + 1
        findings.sort(key=lambda d: (d.location, d.rule))
        report.extend(findings)
    return AnalysisResult(report=report, project=project, counts=counts)


def analyze_paths(
    paths: Iterable[str | Path],
    rules: Iterable[str] | None = None,
    suppress: Iterable[str] = (),
) -> AnalysisResult:
    """Load every ``*.py`` under the given paths and run the engine."""
    return analyze_project(Project.load(paths), rules=rules,
                           suppress=suppress)


__all__ = [
    "Rule",
    "RULES",
    "register",
    "ModuleContext",
    "AnalysisResult",
    "analyze_project",
    "analyze_paths",
]
