"""``# qa: ignore[...]`` suppression-comment parsing.

One syntax serves every QA layer (the per-file AST lint and the
project-wide analyzer):

* ``# qa: ignore`` -- blanket: silences every rule on that line;
* ``# qa: ignore[QA101]`` -- silences one rule;
* ``# qa: ignore[QA101,QA203]`` -- silences a comma-separated list
  (spaces after the commas are fine).

Rule ids are matched case-sensitively.  A malformed bracket payload
(empty, or containing something that is not a rule id) is treated as *no
suppression at all* rather than a blanket one, so a typo cannot silently
disable checking.
"""

from __future__ import annotations

import re

_IGNORE_RE = re.compile(r"#\s*qa:\s*ignore(?:\[([^\]]*)\])?")

_RULE_ID_RE = re.compile(r"^[A-Za-z][A-Za-z0-9._-]*$")


def suppressed_rules(line: str) -> frozenset[str] | None:
    """Rules silenced on this source line; ``None`` = no suppression.

    An empty frozenset means a blanket ``# qa: ignore`` (all rules).
    """
    match = _IGNORE_RE.search(line)
    if match is None:
        return None
    payload = match.group(1)
    if payload is None:
        return frozenset()
    rules = frozenset(r.strip() for r in payload.split(",") if r.strip())
    if not rules or not all(_RULE_ID_RE.match(r) for r in rules):
        # "# qa: ignore[]" or garbage inside the brackets: refuse to
        # treat a typo as a blanket waiver.
        return None
    return rules


def is_suppressed(rule: str, line: str) -> bool:
    """True when ``rule`` is silenced by a comment on ``line``."""
    rules = suppressed_rules(line)
    return rules is not None and (not rules or rule in rules)


__all__ = ["suppressed_rules", "is_suppressed"]
