"""Per-module symbol resolution: what does this name *actually* mean?

The per-file lint tracks ``numpy``/``time`` aliases ad hoc inside its
visitor; the project engine needs one shared answer, so this module
builds a :class:`SymbolTable` per module mapping every locally-bound
name to its *canonical dotted path*:

* ``import numpy as np``                      -> ``np`` = ``numpy``
* ``from numpy.random import default_rng``    -> ``default_rng`` =
  ``numpy.random.default_rng``
* ``from repro.obs import metrics as m``      -> ``m`` =
  ``repro.obs.metrics``
* ``interp = np.interp``                      -> ``interp`` =
  ``numpy.interp`` (simple alias assignments are followed)

:meth:`SymbolTable.canonical` then turns an expression like
``np.random.default_rng`` into ``"numpy.random.default_rng"``.  With a
:class:`~repro.qa.analyze.project.Project` attached, repro-internal
re-exports are followed across modules (``from repro.scenarios import
ResultStore`` resolves through the package ``__init__`` to
``repro.scenarios.store.ResultStore``), bounded to a few hops so import
cycles cannot loop the resolver.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.qa.analyze.project import Module, absolute_import_base

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qa.analyze.project import Project

#: Re-export hops followed when resolving through package __init__ files.
_MAX_HOPS = 4


class SymbolTable:
    """Canonical dotted targets for the names bound in one module."""

    def __init__(self, module: Module, project: "Project | None" = None):
        self.module = module
        self.project = project
        #: local name -> canonical dotted path.
        self.bindings: dict[str, str] = {}
        if module.tree is not None:
            self._collect(module.tree)

    # -- construction ------------------------------------------------------

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = absolute_import_base(self.module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{base}.{alias.name}"
        # Simple alias assignments (x = np, f = np.interp), one pass in
        # source order so chains like a = np; b = a.interp resolve.
        for node in ast.walk(tree):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                target = self.canonical(node.value, follow=False)
                if target is not None:
                    self.bindings[node.targets[0].id] = target

    # -- queries -----------------------------------------------------------

    def resolve(self, name: str) -> str | None:
        """Canonical dotted path of a bare local name, if known."""
        return self._follow(self.bindings.get(name))

    def canonical(self, expr: ast.expr, follow: bool = True) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, if known.

        Returns None when the chain's root is not a tracked binding --
        an unknown object's method is *not* resolved to anything.
        """
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.bindings.get(node.id)
        if root is None:
            return None
        dotted = ".".join([root] + parts)
        return self._follow(dotted) if follow else dotted

    def canonical_call(self, call: ast.Call) -> str | None:
        """Canonical dotted path of a call's target, if known."""
        return self.canonical(call.func)

    def _follow(self, dotted: str | None) -> str | None:
        """Follow repro-internal re-exports through loaded modules."""
        if dotted is None or self.project is None:
            return dotted
        seen: set[str] = set()
        for _ in range(_MAX_HOPS):
            if dotted in seen:
                break
            seen.add(dotted)
            head, _, tail = dotted.rpartition(".")
            mod = self.project.get(head) if head else None
            if mod is None or mod is self.module:
                break
            table = _table_for(mod, self.project)
            target = table.bindings.get(tail)
            if target is None or target == dotted:
                break
            dotted = target
        return dotted


_TABLES: dict[tuple[int, str], SymbolTable] = {}


def _table_for(mod: Module, project: "Project | None") -> SymbolTable:
    """Memoized per-(project, module) symbol table (re-export hops)."""
    key = (id(project), mod.name)
    table = _TABLES.get(key)
    if table is None:
        # Build without a project to avoid mutual recursion; one level of
        # raw bindings is all a re-export hop needs.
        table = SymbolTable(mod, project=None)
        _TABLES[key] = table
    return table


__all__ = ["SymbolTable"]
