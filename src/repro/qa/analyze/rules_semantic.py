"""QA201-QA206: semantic checkers over the dataflow/callgraph passes.

Each rule encodes a bug class PRs 3-5 fixed by hand, so the
sparse/hierarchical-core rewrite cannot silently reintroduce them:

====== =====================================================================
rule   bug class
====== =====================================================================
QA201  array flows into ``np.interp``'s ``xp`` without a dominating sort
       (``np.sort``/``argsort``-reorder/ascending guard) -- the unsorted
       interp grids fixed in loop/extractor, analysis/compare, crosstalk.
QA202  raw float (or tuple containing one) used as a cache key without
       quantization -- the PR 3 alpha-keyed factor-cache bug.
QA203  process-pool worker closes over / mutates module-level mutable
       state -- fork-safety for the perf and scenarios pools.
QA204  obs span context manager never entered, or manually entered on a
       path where an early return/raise can skip the close.
QA205  complex scalar narrowed by ``float()``/``int()`` -- resolved by
       dataflow (complex literals/constructors), not QA104's attribute-
       name heuristic.
QA206  public function catches a broad exception and degrades without
       recording it (RunReport event, obs metric, warning, log).
QA207  pool future ``result()`` / executor ``map()`` waited on without a
       timeout outside the supervisor -- one hung worker stalls forever.
QA208  ``.todense()``/``.toarray()`` in a solver hot-path module -- the
       matrix-free solve tier exists so these paths never densify.
====== =====================================================================
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.qa.analyze.engine import ModuleContext, Rule, register
from repro.qa.analyze.rules_syntax import _is_broad_handler
from repro.qa.diagnostics import Diagnostic, Severity


def _describe(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expression>"


# -- QA201: unsorted np.interp grid ------------------------------------------

def _check_qa201(ctx: ModuleContext) -> Iterable[Diagnostic]:
    for flow in ctx.all_flows():
        for call, env in list(flow.env_at_call.items()):
            if ctx.symbols.canonical(call.func) != "numpy.interp":
                continue
            xp: ast.expr | None = None
            if len(call.args) >= 2:
                xp = call.args[1]
            else:
                for kw in call.keywords:
                    if kw.arg == "xp":
                        xp = kw.value
            if xp is None:
                continue
            if "sorted" in flow.eval(xp, env):
                continue
            diag = ctx.report(
                QA201, call,
                f"'{_describe(xp)}' flows into np.interp's xp argument "
                "without a dominating sort or ascending guard",
            )
            if diag:
                yield diag


QA201 = register(Rule(
    id="QA201",
    title="np.interp xp argument not provably ascending",
    severity=Severity.ERROR,
    hint="sort first (xp = np.sort(xp), or order = np.argsort(xp); "
         "xp, fp = xp[order], fp[order]), or guard with "
         "'if not np.all(np.diff(xp) > 0): raise'; silence a "
         "by-construction-sorted grid with '# qa: ignore[QA201]'",
    docs="""\
``np.interp(x, xp, fp)`` silently returns garbage when ``xp`` is not
ascending -- no exception, just wrong numbers (the bug class fixed by
hand in loop/extractor, analysis/compare, and analysis/crosstalk).  The
dataflow pass tracks which arrays are provably ascending: results of
``np.sort``/``sorted``/``np.unique``/``linspace``/``logspace``/
``arange``, reorderings through an ``np.argsort`` index, ascending
numeric literals, slices of sorted arrays, and values guarded by
``np.all(np.diff(x) > 0)`` (or the negated ``np.any(... < 0)`` form) in
an ``assert`` or ``if``.  Anything else reaching ``xp`` -- a parameter,
an attribute, an unknown call result -- is flagged.

Fix by sorting at the boundary:

    order = np.argsort(t, kind="stable")
    t, v = t[order], v[order]
    resampled = np.interp(grid, t, v)

or guard the invariant explicitly.  A grid that is ascending by
construction (e.g. a solver's accepted time axis) may be silenced with
'# qa: ignore[QA201]' stating why.""",
    check=_check_qa201,
))


# -- QA202: raw-float cache key ----------------------------------------------

_KEY_METHODS = frozenset({"get", "put", "setdefault", "pop"})


def _cache_like(expr: ast.expr) -> bool:
    """True when an expression names something cache-shaped."""
    text = _describe(expr).lower()
    return "cache" in text or "memo" in text


def _check_qa202(ctx: ModuleContext) -> Iterable[Diagnostic]:
    for flow in ctx.all_flows():
        # cache[key] loads/stores: env is only snapshotted at calls, so
        # approximate with the env live at the nearest call; instead,
        # re-walk subscripts per function using the exit env join is
        # imprecise -- evaluate keys with the env at the subscript's
        # enclosing call when available, else the function's last env.
        fallback_env = flow.exit_points[-1].env if flow.exit_points else {}
        for node in ast.walk(flow.func):
            key: ast.expr | None = None
            site: ast.expr | None = None
            if isinstance(node, ast.Subscript) and _cache_like(node.value):
                key, site = node.slice, node
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in _KEY_METHODS
                  and node.args
                  and _cache_like(node.func.value)):
                key, site = node.args[0], node
            if key is None or site is None:
                continue
            env = flow.env_at_call.get(
                node if isinstance(node, ast.Call) else None, fallback_env
            )
            tags = flow.eval(key, env)
            if "float" in tags:
                diag = ctx.report(
                    QA202, site,
                    f"computed float in cache key '{_describe(key)}' -- "
                    "equality-based lookup on unquantized floats misses "
                    "on the next nearly-identical value",
                )
                if diag:
                    yield diag


QA202 = register(Rule(
    id="QA202",
    title="raw computed float used as a cache key without quantization",
    severity=Severity.ERROR,
    hint="quantize the key component (round(x, 12), int scaling, or a "
         "fixed-precision format) before keying, or key on the exact "
         "input bits (struct.pack/x.hex()) when bit-identity is meant",
    docs="""\
Keying a dict/LRU cache on a *computed* float (a division result, a
``float()`` conversion, ``.real`` of a complex) makes hits depend on
floating-point round-off: two alphas that should share a factorization
differ in the last ulp and the cache silently never hits (the PR 3
factor-cache bug).  The dataflow pass tags computed floats and tuples
containing them; keys with the tag reaching a ``cache[...]`` subscript
or a ``.get``/``.put``/``.setdefault`` call on a cache-shaped name are
flagged.  Quantize deliberately:

    key = (n, round(alpha, 12))          # tolerance-based sharing
    key = (n, alpha.hex())               # exact-bits identity

Both clear the tag (``round`` quantizes; ``.hex()`` is a string).""",
    check=_check_qa202,
))


# -- QA203: fork-unsafe pool worker ------------------------------------------

_MUTATING_METHODS = frozenset({
    "append", "extend", "add", "update", "clear", "reset", "merge",
    "pop", "popitem", "setdefault", "remove", "discard", "insert",
})


def _module_global_assigners(tree: ast.Module) -> set[str]:
    """Names assigned through a ``global`` declaration anywhere."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            out.update(node.names)
    return out


def _module_level_mutables(tree: ast.Module) -> set[str]:
    """Module-level names bound to mutable containers/instances."""
    out: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            if isinstance(stmt.value, (ast.List, ast.Dict, ast.Set,
                                       ast.Call)):
                if isinstance(stmt.value, ast.Call):
                    func = stmt.value.func
                    name = func.id if isinstance(func, ast.Name) else \
                        func.attr if isinstance(func, ast.Attribute) else ""
                    if name in ("frozenset", "tuple", "namedtuple"):
                        continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
    return out


def _check_qa203(ctx: ModuleContext) -> Iterable[Diagnostic]:
    graph = ctx.callgraph
    if graph is None or ctx.module.tree is None:
        return
    global_assigned = _module_global_assigners(ctx.module.tree)
    mutable_globals = _module_level_mutables(ctx.module.tree)
    seen: set[tuple[int, str]] = set()
    for sub in graph.pool_submissions:
        info = graph.functions.get(sub.qualname)
        if info is None or info.module != ctx.module.name:
            continue  # reported in the worker's defining module
        func = info.node
        local_names = {
            a.arg for a in (func.args.posonlyargs + func.args.args
                            + func.args.kwonlyargs)
        }
        for node in ast.walk(func):
            finding: tuple[ast.AST, str] | None = None
            if isinstance(node, ast.Global):
                assigned = [n for n in node.names
                            if _assigns_name(func, n)]
                if assigned:
                    finding = (node, (
                        f"pool worker '{func.name}' mutates module-global "
                        f"{', '.join(repr(n) for n in assigned)} -- each "
                        "forked worker mutates its own copy, invisible to "
                        "the parent"
                    ))
            elif (isinstance(node, ast.Name)
                  and isinstance(node.ctx, ast.Load)
                  and node.id not in local_names
                  and node.id in (global_assigned | mutable_globals)):
                finding = (node, (
                    f"pool worker '{func.name}' reads module-global "
                    f"'{node.id}' -- workers see the fork-time snapshot "
                    "(or the initializer's per-process copy), not the "
                    "parent's live value"
                ))
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in _MUTATING_METHODS):
                target = ctx.symbols.canonical(node.func.value)
                if target is not None and ctx.project is not None:
                    head, _, tail = target.rpartition(".")
                    owner = ctx.project.get(head)
                    if owner is not None and owner.tree is not None and \
                            tail in _module_level_mutables(owner.tree):
                        finding = (node, (
                            f"pool worker '{func.name}' mutates "
                            f"module-level state '{target}' -- the "
                            "mutation stays in the worker process"
                        ))
            if finding is None:
                continue
            node_, message = finding
            dedupe = (getattr(node_, "lineno", 0), message)
            if dedupe in seen:
                continue
            seen.add(dedupe)
            diag = ctx.report(QA203, node_, message)
            if diag:
                yield diag


def _assigns_name(func: ast.AST, name: str) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
    return False


QA203 = register(Rule(
    id="QA203",
    title="process-pool worker touches module-level mutable state",
    severity=Severity.ERROR,
    hint="ship state explicitly through the submit arguments (or the "
         "pool initializer's initargs), and ship results back through "
         "the return value; annotate a deliberate initializer idiom "
         "with '# qa: ignore[QA203]' and a comment saying why it is "
         "fork-safe",
    docs="""\
Functions submitted to a process pool (``executor.submit(f, ...)``,
``ProcessPoolExecutor(initializer=f)``, ``pool.map(f, ...)``) run in
forked children: module-level state they read is a fork-time snapshot
(or whatever the initializer set in *that* process), and state they
mutate never reaches the parent.  Both directions have bitten pool code
before -- a counter incremented in a worker that the parent never sees,
a config read that is stale after the parent changes it.

The rule flags, inside any pool-submitted function: ``global`` writes,
reads of globals that some function assigns via ``global`` (the
initializer handshake), and mutating method calls on module-level
mutable objects (including cross-module ones like a metrics registry).

The initializer idiom itself -- initializer sets a per-process global,
the worker body reads it -- is *deliberately* fork-safe when the state
is immutable after init; annotate those exact lines with
'# qa: ignore[QA203]' and say why.  Everything else should ship state
through arguments and return values.""",
    check=_check_qa203,
))


# -- QA204: leaked / never-entered span --------------------------------------

def _check_qa204(ctx: ModuleContext) -> Iterable[Diagnostic]:
    for flow in ctx.all_flows():
        for call, used in flow.cm_sites.items():
            if not used:
                diag = ctx.report(
                    QA204, call,
                    f"obs context manager '{_describe(call.func)}(...)' "
                    "is created but never entered -- the stage is not "
                    "timed at all",
                    hint="use 'with span(...):' around the stage",
                )
                if diag:
                    yield diag
        if not flow.enter_sites:
            continue
        leaky_exits = [
            ep for ep in flow.exit_points
            if any(
                "span-open" in value
                for name, value in ep.env.items()
                if name not in flow.finally_managed
            )
        ]
        if not leaky_exits:
            continue
        for call, name in flow.enter_sites:
            if name is not None and name in flow.finally_managed:
                continue
            diag = ctx.report(
                QA204, call,
                "manually entered span can be leaked by an early "
                "return/raise before __exit__ "
                f"(e.g. line {leaky_exits[0].lineno or 'end'})",
            )
            if diag:
                yield diag


QA204 = register(Rule(
    id="QA204",
    title="obs span opened on a path that can skip the close",
    severity=Severity.ERROR,
    hint="use 'with span(...):' (closes on every exit), or guarantee "
         "__exit__ in a finally block / contextlib.ExitStack",
    docs="""\
A span that never closes poisons the whole trace: ``repro trace`` fails
CI on open spans, and the leaked span's subtree swallows later
measurements.  The dataflow pass tracks span/tracing/detached_stack
context managers and flags two shapes statically (complementing the
runtime ``repro trace`` leak check):

* a context manager created but never entered -- ``sp = span("x")``
  with no ``with``/``__enter__`` times nothing;
* a manual ``sp.__enter__()`` where some ``return``/``raise`` path can
  be taken while the span is still open (no ``__exit__`` on that path
  and none guaranteed by a ``finally`` or ``ExitStack``).

``with span(...):`` is always safe; so is handing the context manager
to ``ExitStack.enter_context`` or returning it to the caller.""",
    check=_check_qa204,
))


# -- QA205: dataflow-resolved complex narrowing ------------------------------

def _check_qa205(ctx: ModuleContext) -> Iterable[Diagnostic]:
    for flow in ctx.all_flows():
        for call, env in list(flow.env_at_call.items()):
            if not (isinstance(call.func, ast.Name)
                    and call.func.id in ("float", "int") and call.args):
                continue
            if "complex" in flow.eval(call.args[0], env):
                diag = ctx.report(
                    QA205, call,
                    f"{call.func.id}() narrows "
                    f"'{_describe(call.args[0])}', which dataflow "
                    "resolves to a complex value -- the imaginary part "
                    "is dropped (or the call raises)",
                )
                if diag:
                    yield diag


QA205 = register(Rule(
    id="QA205",
    title="float()/int() of a dataflow-resolved complex value",
    severity=Severity.ERROR,
    hint="take .real, .imag, or abs() deliberately",
    docs="""\
The dataflow generalization of QA104: instead of matching attribute
*names* (``.impedance``), the pass tracks complex-ness through the
function -- ``1j`` arithmetic, ``complex(...)`` construction, indexing
complex arrays -- and flags ``float(x)``/``int(x)`` where ``x`` is
complex-tagged.  ``z.real``, ``z.imag``, and ``abs(z)`` all say which
narrowing is meant and are never flagged.""",
    check=_check_qa205,
))


# -- QA206: silent degradation -----------------------------------------------

_RECORDING_ATTRS = frozenset({
    "warn", "warning", "error", "exception", "info", "debug",
    "inc", "observe",
})

_RECORDING_CANONICAL_PREFIXES = (
    "repro.obs.metrics",
    "repro.resilience.report",
    "warnings.",
    "logging.",
)


def _handler_records(ctx: ModuleContext, handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr.startswith("record_"):
                return True
            if func.attr in _RECORDING_ATTRS:
                return True
        elif isinstance(func, ast.Name) and func.id == "print":
            return True
        dotted = ctx.symbols.canonical(func) or ""
        if dotted.startswith(_RECORDING_CANONICAL_PREFIXES):
            return True
    return False


def _check_qa206(ctx: ModuleContext) -> Iterable[Diagnostic]:
    for qualname, func in ctx.functions():
        leaf = qualname.split(".")[-1]
        if leaf.startswith("_"):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not _is_broad_handler(handler):
                    continue
                silent_pass = all(
                    isinstance(stmt, ast.Pass)
                    or (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Constant))
                    for stmt in handler.body
                )
                if silent_pass:
                    continue  # QA105's territory
                if _handler_records(ctx, handler):
                    continue
                diag = ctx.report(
                    QA206, handler,
                    f"public function '{leaf}' catches a broad exception "
                    "and degrades without recording it",
                )
                if diag:
                    yield diag


QA206 = register(Rule(
    id="QA206",
    title="public function degrades on a broad except without recording",
    severity=Severity.ERROR,
    hint="record the downgrade (RunReport.record_downgrade / an obs "
         "counter / warnings.warn) or re-raise; silence a deliberate "
         "best-effort fallback with '# qa: ignore[QA206]'",
    docs="""\
The resilience layer's contract is that every degradation is visible:
a solver that falls back, a cache that is skipped, a sweep that drops a
point must leave a RunReport event or an obs metric behind, or
operators debug wrong numbers with no breadcrumb.  This rule flags a
broad ``except`` inside a *public* function whose handler body neither
re-raises nor calls anything that records (``record_*`` methods, obs
counters/gauges, ``warnings.warn``, logging, ``print``).  QA105 covers
the fully-silent ``pass`` body; this covers the handler that *does*
substitute a fallback value but tells nobody.""",
    check=_check_qa206,
))


# -- QA207: unbounded pool wait ----------------------------------------------

#: The one module allowed to block on pool futures without a timeout:
#: its watchdog thread is what guarantees those waits terminate.
_SUPERVISOR_MODULE = "repro.resilience.supervisor"

_FUTURE_TOKENS = ("fut", "future")
_POOL_TOKENS = ("executor", "pool")


def _name_has_token(expr: ast.expr, tokens: tuple[str, ...]) -> bool:
    text = _describe(expr).lower()
    return any(token in text for token in tokens)


def _check_qa207(ctx: ModuleContext) -> Iterable[Diagnostic]:
    if ctx.module.name == _SUPERVISOR_MODULE:
        return
    tree = ctx.module.tree
    if tree is None:
        return
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        receiver = node.func.value
        has_timeout = bool(node.args) or any(
            kw.arg == "timeout" for kw in node.keywords
        )
        if (node.func.attr == "result"
                and _name_has_token(receiver, _FUTURE_TOKENS)):
            if has_timeout:
                continue
            diag = ctx.report(
                QA207, node,
                f"'{_describe(receiver)}.result()' blocks without a "
                "timeout -- a hung pool worker stalls this wait forever",
            )
            if diag:
                yield diag
        elif (node.func.attr == "map"
              and _name_has_token(receiver, _POOL_TOKENS)):
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            diag = ctx.report(
                QA207, node,
                f"'{_describe(receiver)}.map(...)' iterates results "
                "without a timeout -- a hung pool worker stalls the "
                "iteration forever",
            )
            if diag:
                yield diag


QA207 = register(Rule(
    id="QA207",
    title="pool future waited on without a timeout outside the supervisor",
    severity=Severity.ERROR,
    hint="run the pool under repro.resilience.supervisor.Supervisor "
         "(deadlines + watchdog), or pass an explicit timeout to "
         ".result()/.map(); silence a wait that something else provably "
         "bounds with '# qa: ignore[QA207]' and say what bounds it",
    docs="""\
``Future.result()`` with no timeout (and ``executor.map``, which calls
it internally) blocks until the worker responds -- and a worker stuck in
a pathological solve, an injected hang, or a deadlocked import never
responds.  The supervised runtime exists so no sweep ever makes that
bet: its watchdog kills expired workers, which is what makes *its own*
untimed waits terminate, so :mod:`repro.resilience.supervisor` is the
one module exempt from this rule.

Everywhere else, either route the pool through the supervisor (the
``parallel_sweep``/``run_sweep`` paths already are) or make the wait
bounded explicitly:

    rows = fut.result(timeout=deadline)       # bounded wait
    for rec in executor.map(f, items, timeout=deadline):
        ...

The check is name-heuristic (receivers mentioning ``fut``/``future``
for ``.result()``, ``executor``/``pool`` for ``.map()``), mirroring the
cache-shaped heuristic of QA202; a wait bounded by other means can be
silenced with '# qa: ignore[QA207]' stating what bounds it.""",
    check=_check_qa207,
))


# -- QA208: densification in solver hot paths --------------------------------

#: Modules on the solve path that must stay matrix-free: assembling or
#: solving here happens once per frequency point / Newton iteration, so a
#: densify call silently reintroduces the O(n^2) memory the operator tier
#: removed.
_HOT_PATH_MODULES = frozenset({
    "repro.circuit.linalg",
    "repro.circuit.transient",
    "repro.circuit.adaptive",
    "repro.circuit.ac",
    "repro.circuit.dc",
    "repro.loop.extractor",
    "repro.perf.parallel",
})

_DENSIFY_ATTRS = ("todense", "toarray", "to_dense")


def _check_qa208(ctx: ModuleContext) -> Iterable[Diagnostic]:
    if ctx.module.name not in _HOT_PATH_MODULES:
        return
    tree = ctx.module.tree
    if tree is None:
        return
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DENSIFY_ATTRS):
            continue
        diag = ctx.report(
            QA208, node,
            f"'{_describe(node.func)}()' densifies inside solver hot path "
            f"'{ctx.module.name}' -- route through the operator/Krylov "
            "tier instead",
        )
        if diag:
            yield diag


QA208 = register(Rule(
    id="QA208",
    title="densification call in a solver hot-path module",
    severity=Severity.ERROR,
    hint="keep the operator form: stamp sparse updates, solve via the "
         "krylov rung, or move the conversion off the per-step path; "
         "silence a deliberately bounded materialization with "
         "'# qa: ignore[QA208]' and say what bounds it",
    docs="""\
The matrix-free solve tier (PR 9) removed every per-step
``.todense()``/``.toarray()`` from the AC/transient/extraction paths:
sweeps update a preassembled sparse pattern in place, transient Newton
stamps the device Jacobian as a sparse update, and operator-backed
systems are solved by the preconditioned ``krylov`` rung.  A densify
call reappearing in one of those modules almost always means a
convenience conversion snuck back onto a loop that runs once per
frequency point or Newton iteration, costing O(n^2) memory exactly at
the problem sizes the hierarchical operator exists for.

The rule fires on any ``.todense()`` / ``.toarray()`` / ``.to_dense()``
call inside the hot-path module set (``circuit.linalg`` / ``transient``
/ ``adaptive`` / ``ac`` / ``dc``, ``loop.extractor``,
``perf.parallel``).  Legitimate bounded materializations exist -- the
size-guarded lstsq rescue rung, equilibration's O(n) row/column maxima,
the recorded dense fallback when Krylov stagnates -- and each is
silenced in place with '# qa: ignore[QA208]' naming its bound.""",
    check=_check_qa208,
))


SEMANTIC_RULE_IDS = (
    "QA201", "QA202", "QA203", "QA204", "QA205", "QA206", "QA207", "QA208",
)

__all__ = [
    "SEMANTIC_RULE_IDS",
    "QA201", "QA202", "QA203", "QA204", "QA205", "QA206", "QA207", "QA208",
]
