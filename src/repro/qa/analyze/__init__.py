"""Project-wide static analysis (``repro analyze``).

Where :mod:`repro.qa.astlint` lints one file at a time with syntactic
patterns, this package loads the whole project and runs *semantic*
checkers over shared analysis passes:

* :mod:`~repro.qa.analyze.project` -- module loader + import graph;
* :mod:`~repro.qa.analyze.symbols` -- per-module alias resolution
  (``np`` -> ``numpy``, re-exports followed across modules);
* :mod:`~repro.qa.analyze.callgraph` -- call graph + pool submissions;
* :mod:`~repro.qa.analyze.dataflow` -- intraprocedural reaching
  definitions and a small abstract-value lattice (sorted-array,
  float-key, complex-scalar, rng-seeded, span-open, ...);
* :mod:`~repro.qa.analyze.engine` -- the :class:`Rule` framework;
* :mod:`~repro.qa.analyze.rules_syntax` -- QA101-QA107 (the astlint
  rules, ported);
* :mod:`~repro.qa.analyze.rules_semantic` -- QA201-QA206 (the recurring
  numerics bug classes, encoded);
* :mod:`~repro.qa.analyze.baseline` -- the ratchet: triaged existing
  debt stays green, any new finding fails the gate.

Run it with ``repro analyze`` or ``python -m repro.qa.analyze``.
"""

from repro.qa.analyze.baseline import (
    BaselineEntry,
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.qa.analyze.engine import (
    RULES,
    AnalysisResult,
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_project,
)
from repro.qa.analyze.main import main
from repro.qa.analyze.project import Module, Project, iter_python_files
from repro.qa.analyze.symbols import SymbolTable

# Importing the rule modules registers every rule in RULES.
from repro.qa.analyze import rules_semantic, rules_syntax  # noqa: F401

__all__ = [
    "Rule",
    "RULES",
    "ModuleContext",
    "AnalysisResult",
    "analyze_paths",
    "analyze_project",
    "Module",
    "Project",
    "iter_python_files",
    "SymbolTable",
    "BaselineEntry",
    "finding_fingerprint",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "main",
]
