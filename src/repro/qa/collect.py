"""Collect circuits from a running script so the ERC can inspect them.

``repro check examples/foo.py`` needs the :class:`Circuit` objects a
script builds, without the script cooperating.  :func:`capture_circuits`
patches ``Circuit.__init__`` to record every instance created inside the
``with`` block; :func:`collect_circuits_from_script` runs a file under
that capture (stdout swallowed) and optionally under the
:mod:`repro.qa.sanitize` instrumentation as well.
"""

from __future__ import annotations

import contextlib
import io
import runpy
from pathlib import Path
from typing import Iterator

from repro.circuit.netlist import Circuit
from repro.qa.diagnostics import DiagnosticReport
from repro.qa.sanitize import SanitizePolicy, sanitize


@contextlib.contextmanager
def capture_circuits() -> Iterator[list[Circuit]]:
    """Record every Circuit constructed inside the block, in order."""
    created: list[Circuit] = []
    original = Circuit.__init__

    def patched(self, *args, **kwargs) -> None:
        original(self, *args, **kwargs)
        created.append(self)

    Circuit.__init__ = patched
    try:
        yield created
    finally:
        Circuit.__init__ = original


def collect_circuits_from_script(
    path: str | Path,
    run_sanitized: bool = False,
) -> tuple[list[Circuit], DiagnosticReport]:
    """Execute a Python script, returning the circuits it built.

    Args:
        path: Script path, run as ``__main__`` (so examples execute).
        run_sanitized: Also wrap execution in ``qa.sanitize`` with the
            ``"collect"`` policy, gathering runtime numerics diagnostics.

    Returns:
        (circuits, runtime_diagnostics); the latter is empty unless
        ``run_sanitized`` is set.
    """
    path = Path(path)
    stack = contextlib.ExitStack()
    with stack:
        circuits = stack.enter_context(capture_circuits())
        runtime = DiagnosticReport()
        if run_sanitized:
            guard = stack.enter_context(
                sanitize(SanitizePolicy(on_violation="collect"))
            )
            runtime = guard.diagnostics
        stack.enter_context(contextlib.redirect_stdout(io.StringIO()))
        try:
            runpy.run_path(str(path), run_name="__main__")
        except SystemExit as exc:
            # A script ending in sys.exit(0) finished fine; anything else
            # is a real failure the caller should see.
            if exc.code not in (0, None):
                raise
    return list(circuits), runtime


__all__ = ["capture_circuits", "collect_circuits_from_script"]
