"""High-level analysis flows: the paper's Section-6 experiments as API.

This module wires the substrates together the way the paper's evaluation
does: a global clock net over a multi-layer power grid, simulated as

* **PEEC (RC)** -- detailed model without inductance,
* **PEEC (RLC)** -- detailed model with (optionally sparsified) partial
  inductance, optionally accelerated by the combined block-diagonal +
  PRIMA reduction,
* **LOOP (RLC)** -- the Section-5 loop-inductance netlist,

and reports the Table-1 columns (element counts, worst delay, worst skew,
run time) plus full waveforms for the Figure-4 comparison.  The Figure-1
current-decomposition experiment (I1 short-circuit, I2 charging, I3
discharging currents) also lives here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import delay_50, skew
from repro.circuit.devices import CMOSInverter
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import TransientResult, transient_analysis
from repro.circuit.waveforms import Ramp
from repro.extraction.capacitance import CapacitanceModel
from repro.extraction.resistance import segment_resistance
from repro.geometry.clocktree import (
    ClockNetPorts,
    ClockNetSpec,
    HTreeSpec,
    TapPoint,
    build_clock_net,
    build_htree_clock,
)
from repro.geometry.grid import PowerGridSpec, build_power_grid
from repro.geometry.layout import Layout, NetKind
from repro.geometry.segment import Direction, default_layer_stack
from repro.loop.extractor import LoopPort, extract_loop_impedance
from repro.mor.combined import combined_reduction
from repro.mor.ports import NodePort
from repro.obs.trace import span
from repro.peec.activity import DEFAULT_ACTIVITY_SEED, attach_switching_activity
from repro.peec.model import PEECOptions, build_peec_model
from repro.peec.package import PackageSpec, attach_package, attach_package_to_nodes
from repro.resilience.report import RunReport, activate
from repro.sparsify.base import Sparsifier


@dataclass
class ClockNetTestCase:
    """The shared experimental topology: clock net over a power grid.

    Attributes:
        layout: Grid + clock net layout.
        ports: Driver/sink tap points of the clock net.
        vdd: Supply voltage [V].
        rise_time: Driver input edge rate [s].
        driver_resistance: Thevenin driver output resistance [ohm].
        load_capacitance: Per-sink receiver load [F].
        t_stop: Transient horizon [s].
        dt: Transient step [s].
        activity_seed: Seed for background switching-activity placement
            and timing (``run_peec_flow(background_activity=...)``); part
            of the test-case config so a flow run is reproducible.
    """

    layout: Layout
    ports: ClockNetPorts
    vdd: float = 1.2
    rise_time: float = 40e-12
    driver_resistance: float = 25.0
    load_capacitance: float = 30e-15
    t_stop: float = 1.2e-9
    dt: float = 2e-12
    activity_seed: int = DEFAULT_ACTIVITY_SEED

    @property
    def input_ramp(self) -> Ramp:
        """The driver stimulus (rising edge at 50 ps)."""
        return Ramp(0.0, self.vdd, 50e-12, self.rise_time)


def build_clock_testcase(
    die: float = 400e-6,
    stripe_pitch: float = 60e-6,
    num_branches: int = 3,
    branch_length: float = 120e-6,
    trunk_width: float = 4e-6,
    num_layers: int = 6,
    grid_layers: tuple[str, str] = ("M5", "M6"),
    topology: str = "spine",
    htree_levels: int = 2,
    **kwargs,
) -> ClockNetTestCase:
    """Build the standard clock-over-grid topology at a chosen scale.

    The defaults give a laptop-scale stand-in for the paper's proprietary
    "top-level clock net" (see DESIGN.md's substitution table); all trends
    are topology-class properties, so scale knobs only trade run time for
    statistics.

    Args:
        topology: ``"spine"`` (trunk + branches, default) or ``"htree"``
            (balanced recursive H-tree; ``num_branches``/``branch_length``
            are then ignored in favor of ``htree_levels``).
    """
    if topology not in ("spine", "htree"):
        raise ValueError(f"unknown topology {topology!r}")
    layers = default_layer_stack(num_layers)
    grid_spec = PowerGridSpec(
        die_width=die,
        die_height=die,
        layer_names=grid_layers,
        stripe_pitch=stripe_pitch,
        stripe_width=2e-6,
        pads_per_net=2,
    )
    # The clock must not physically overlap a grid stripe (a short in real
    # silicon); search placements for a clean one.
    clock_net = "clk"
    step = stripe_pitch / 8
    if topology == "spine":
        candidates = [
            (ox * step, oy * step, 1.0)
            for oy in (1, 4 / 3, 2, 3)
            for ox in (0, 1, 2, 3)
        ]
    else:
        candidates = [
            (ox * step, oy * step, scale)
            for scale in (0.7, 0.64, 0.58, 0.52)
            for ox in (1, 2, 3)
            for oy in (1, 2, 3)
        ]
    for offset_x, offset_y, span_scale in candidates:
        layout = build_power_grid(grid_spec, layers)
        if topology == "spine":
            clock_spec = ClockNetSpec(
                trunk_layer="M5",
                branch_layer="M6",
                trunk_width=trunk_width,
                trunk_y=die / 2 + offset_y,
                trunk_x_start=3e-6 + offset_x,
                trunk_length=die - 13e-6 - offset_x,
                num_branches=num_branches,
                branch_length=branch_length,
            )
            ports = build_clock_net(clock_spec, layout)
        else:
            htree_spec = HTreeSpec(
                h_layer="M5",
                v_layer="M6",
                center=(die / 2 + offset_x, die / 2 + offset_y),
                span=die * span_scale,
                levels=htree_levels,
                root_width=trunk_width,
            )
            ports = build_htree_clock(htree_spec, layout)
        if not layout.find_overlaps(net=clock_net):
            break
    else:
        raise ValueError(
            "could not place the clock net without overlapping the grid; "
            "adjust die/stripe_pitch"
        )
    return ClockNetTestCase(layout=layout, ports=ports, **kwargs)


@dataclass
class FlowResult:
    """Outcome of one model flavor's simulation.

    Attributes:
        kind: ``"peec_rc"`` / ``"peec_rlc"`` / ``"loop_rlc"``.
        stats: Element counts (Table-1 columns).
        delays: sink tap name -> 50% delay [s].
        worst_delay: Max over sinks [s].
        worst_skew: Max minus min delay [s].
        build_seconds: Extraction + model construction time.
        solve_seconds: Transient (+ reduction) time.
        times: Simulation time points [s].
        waveforms: sink tap name -> voltage waveform.
        report: Resilience log of the run (sparsifier/ROM downgrades,
            solver escalations, retries); ``report.clean`` is True for an
            undisturbed run.
    """

    kind: str
    stats: dict[str, int]
    delays: dict[str, float]
    worst_delay: float
    worst_skew: float
    build_seconds: float
    solve_seconds: float
    times: np.ndarray
    waveforms: dict[str, np.ndarray]
    report: RunReport | None = None

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.solve_seconds


def _measure(
    case: ClockNetTestCase,
    times: np.ndarray,
    waveforms: dict[str, np.ndarray],
) -> tuple[dict[str, float], float, float]:
    ramp = case.input_ramp
    v_in = np.array([ramp(t) for t in times])
    delays = {
        name: delay_50(times, v_in, wave, case.vdd)
        for name, wave in waveforms.items()
    }
    values = list(delays.values())
    return delays, max(values), skew(values)


def _gnd_tap_near(layout: Layout, x: float, y: float, ground_net: str = "GND") -> TapPoint:
    """Ground tap at the grid terminal nearest to (x, y)."""
    best, best_d, best_layer = None, math.inf, None
    for seg in layout.segments:
        if seg.net != ground_net or seg.direction == Direction.Z:
            continue
        for point in seg.endpoints():
            d = math.hypot(point[0] - x, point[1] - y)
            if d < best_d:
                best, best_d, best_layer = point, d, seg.layer
    if best is None:
        raise ValueError(f"no {ground_net!r} terminals in layout")
    return TapPoint(ground_net, best[0], best[1], best_layer, "gnd_near")


def run_peec_flow(
    case: ClockNetTestCase,
    include_inductance: bool = True,
    sparsifier: Sparsifier | None = None,
    use_reduction: bool = False,
    reduction_order: int = 40,
    record_extra: tuple[str, ...] = (),
    background_activity: int = 0,
) -> FlowResult:
    """Simulate the clock edge on the detailed PEEC model.

    Args:
        case: The shared topology.
        include_inductance: False gives the PEEC(RC) baseline row.
        sparsifier: Optional Section-4 strategy for the RLC model.
        use_reduction: Run the combined block-diagonal + PRIMA flow and
            simulate the reduced macromodel instead of the full circuit.
        reduction_order: PRIMA order when reducing.
        record_extra: Additional node names to record (advanced use).
        background_activity: Number of background switching-activity
            current sources to attach to the supply grids (0 = none);
            placement and timing are seeded from ``case.activity_seed``,
            so repeated runs of the same case are identical.
    """
    kind = "peec_rlc" if include_inductance else "peec_rc"
    report = RunReport()
    with span("flow.peec", kind=kind) as flow_sp:
        with span("flow.build") as build_sp:
            options = PEECOptions(
                include_inductance=include_inductance,
                sparsifier=sparsifier,
                max_segment_length=80e-6,
            )
            with activate(report):
                model = build_peec_model(case.layout, options)
            circuit = model.circuit
            sink_nodes: dict[str, str] = {}
            for k, sink in enumerate(case.ports.sinks):
                node = model.node_at(sink)
                sink_nodes[sink.name] = node
                circuit.add_capacitor(
                    f"Cload{k}", node, GROUND, case.load_capacitance
                )
            drv_node = model.node_at(case.ports.driver)
            if background_activity > 0:
                attach_switching_activity(
                    model,
                    num_sources=background_activity,
                    window=(0.0, min(0.5e-9, case.t_stop / 2)),
                    seed=case.activity_seed,
                )
            stats = dict(circuit.stats())
        build_seconds = build_sp.duration or 0.0

        with span("flow.solve") as solve_sp:
            used_rom = False
            if use_reduction:
                # A failed reduction (breakdown in the Krylov iteration, an
                # indefinite reduced system) downgrades to simulating the
                # full circuit rather than killing the flow.
                try:
                    pads = model.pad_nodes()
                    pad_items = sorted(pads.items())
                    active = [drv_node] + [node for _, (node, _) in pad_items]
                    with activate(report):
                        comb = combined_reduction(
                            circuit, active, list(sink_nodes.values()),
                            order=reduction_order,
                        )
                    host = Circuit("host")
                    host.add_vsource("Vin", "vin", GROUND, case.input_ramp)
                    port_names = (
                        ["p_drv"] + [f"p_{name}" for name, _ in pad_items]
                    )
                    mm = comb.model.to_macromodel(
                        "rom", [NodePort(n) for n in port_names]
                    )
                    host.add_macromodel(
                        "rom", mm.ports, mm.g_red, mm.c_red, mm.b_red
                    )
                    host.add_resistor(
                        "Rdrv", "vin", "p_drv", case.driver_resistance
                    )
                    attach_package_to_nodes(
                        host,
                        {name: (f"p_{name}", net)
                         for name, (_, net) in pad_items},
                        PackageSpec() if include_inductance else _rc_package(),
                    )
                except (RuntimeError, np.linalg.LinAlgError) as exc:
                    report.record_downgrade(
                        "mor", "rom", "full circuit", str(exc)
                    )
                else:
                    used_rom = True
                    with activate(report):
                        result = transient_analysis(host, case.t_stop, case.dt)
                    times = result.times
                    waveforms = {
                        name: comb.model.observe(result, "rom", node)
                        for name, node in sink_nodes.items()
                    }
            if not used_rom:
                attach_package(
                    model,
                    PackageSpec() if include_inductance else _rc_package(),
                )
                circuit.add_vsource("Vin", "vin", GROUND, case.input_ramp)
                circuit.add_resistor(
                    "Rdrv", "vin", drv_node, case.driver_resistance
                )
                record = list(sink_nodes.values()) + list(record_extra)
                with activate(report):
                    result = transient_analysis(
                        circuit, case.t_stop, case.dt, record=record
                    )
                times = result.times
                waveforms = {
                    name: result.voltage(node)
                    for name, node in sink_nodes.items()
                }
        solve_seconds = solve_sp.duration or 0.0
        flow_sp.attrs["rom"] = used_rom

    delays, worst, sk = _measure(case, times, waveforms)
    return FlowResult(
        kind=kind + ("+rom" if used_rom else ""),
        stats=stats,
        delays=delays,
        worst_delay=worst,
        worst_skew=sk,
        build_seconds=build_seconds,
        solve_seconds=solve_seconds,
        times=times,
        waveforms=waveforms,
        report=report,
    )


def _rc_package() -> PackageSpec:
    """Package model for the RC flow: the lead inductance is dropped
    (a tiny placeholder L keeps element classes uniform but is electrically
    negligible)."""
    return PackageSpec(resistance=0.1, inductance=1e-15)


def run_loop_flow(
    case: ClockNetTestCase,
    extraction_frequency: float = 2.5e9,
    workers: int | None = None,
) -> FlowResult:
    """Simulate the clock edge on the Section-5 loop-inductance model.

    Per-unit-length loop R and L are extracted FastHenry-style at
    ``extraction_frequency`` over the driver -> farthest-sink path (with
    the receiver shorted to the local ground grid), then applied to every
    clock-net segment of a tree-structured netlist with an ideal ground
    return.  Interconnect capacitance comes from the same Chern-style
    models as the PEEC flow; loads sit at the sink taps.  This preserves
    the paper's element-count profile: ~100x fewer elements, no mutuals.

    ``workers`` fans the extraction sweep out over a process pool (see
    :func:`repro.loop.extractor.extract_loop_impedance`); results are
    identical to the serial path.
    """
    report = RunReport()
    with span("flow.loop"):
        with span("flow.build") as build_sp:
            layout = case.layout
            ports = case.ports
            driver = ports.driver
            far_sink = max(
                ports.sinks,
                key=lambda s: math.hypot(s.x - driver.x, s.y - driver.y),
            )
            port = LoopPort(
                signal=driver,
                reference=_gnd_tap_near(layout, driver.x, driver.y),
                short_signal=far_sink,
                short_reference=_gnd_tap_near(
                    layout, far_sink.x, far_sink.y
                ),
            )
            with activate(report):
                extraction = extract_loop_impedance(
                    layout, port, [extraction_frequency],
                    max_segment_length=120e-6, workers=workers,
                )
            z = extraction.at(extraction_frequency)
            omega = 2.0 * math.pi * extraction_frequency
            path_length = (
                abs(far_sink.x - driver.x) + abs(far_sink.y - driver.y)
            )
            r_per_len = z.real / path_length
            l_per_len = (z.imag / omega) / path_length

            # Tree-structured netlist over the clock net's own segments.
            circuit = Circuit("loop_model")
            cap_model = CapacitanceModel()
            clock_net = driver.net
            node_names: dict[tuple[int, int, int], str] = {}

            from repro.geometry.layout import quantize_point

            def node_for(point) -> str:
                key = quantize_point(point)
                if key not in node_names:
                    node_names[key] = f"n{len(node_names)}"
                return node_names[key]

            segments = [
                s for s in layout.segments
                if s.net == clock_net and s.direction != Direction.Z
            ]
            for k, seg in enumerate(segments):
                a, b = seg.endpoints()
                na, nb = node_for(a), node_for(b)
                circuit.add_series_rl(
                    f"seg{k}", na, nb,
                    max(r_per_len * seg.length, 1e-6),
                    max(l_per_len * seg.length, 1e-18),
                )
                c_seg = cap_model.segment_ground_capacitance(seg, layout)
                for node in (na, nb):
                    cap_name = f"Cg_{k}_{node}"
                    circuit.add_capacitor(cap_name, node, GROUND, c_seg / 2)
            for via in layout.vias:
                if via.net != clock_net:
                    continue
                bottom, top = layout.via_endpoints(via)
                kb, kt = quantize_point(bottom), quantize_point(top)
                if kb in node_names and kt in node_names:
                    from repro.extraction.resistance import via_resistance

                    circuit.add_resistor(
                        f"Rv_{via.name}", node_names[kb], node_names[kt],
                        via_resistance(via),
                    )

            layer_z = {lay.name: lay.z_center for lay in layout.layers}
            sink_nodes = {}
            for k, sink in enumerate(ports.sinks):
                key = quantize_point((sink.x, sink.y, layer_z[sink.layer]))
                sink_nodes[sink.name] = node_names[key]
                circuit.add_capacitor(
                    f"Cload{k}", node_names[key], GROUND,
                    case.load_capacitance,
                )
            drv_key = quantize_point(
                (driver.x, driver.y, layer_z[driver.layer])
            )
            drv_node = node_names[drv_key]
            circuit.add_vsource("Vin", "vin", GROUND, case.input_ramp)
            circuit.add_resistor(
                "Rdrv", "vin", drv_node, case.driver_resistance
            )
            stats = dict(circuit.stats())
        build_seconds = build_sp.duration or 0.0

        with span("flow.solve") as solve_sp:
            with activate(report):
                result = transient_analysis(
                    circuit, case.t_stop, case.dt,
                    record=list(sink_nodes.values()),
                )
        solve_seconds = solve_sp.duration or 0.0
    waveforms = {
        name: result.voltage(node) for name, node in sink_nodes.items()
    }
    delays, worst, sk = _measure(case, result.times, waveforms)
    return FlowResult(
        kind="loop_rlc",
        stats=stats,
        delays=delays,
        worst_delay=worst,
        worst_skew=sk,
        build_seconds=build_seconds,
        solve_seconds=solve_seconds,
        times=result.times,
        waveforms=waveforms,
        report=report,
    )


@dataclass
class CurrentDecomposition:
    """The Figure-1 current populations at a switching edge.

    Attributes:
        times: Time points [s].
        i_shortcircuit: I1 -- crowbar current through both devices [A].
        i_charge: I2 -- current charging the line/load from VDD [A].
        i_discharge: I3 -- current discharging the line/load to ground [A].
        i_package: Total current through the package leads [A].
        peak: Peak absolute value of each component [A].
    """

    times: np.ndarray
    i_shortcircuit: np.ndarray
    i_charge: np.ndarray
    i_discharge: np.ndarray
    i_package: np.ndarray
    peak: dict[str, float]


def run_current_decomposition(
    case: ClockNetTestCase,
    driver_strength: float = 20.0,
    decap_total: float = 30e-12,
    falling_input: bool = False,
) -> CurrentDecomposition:
    """Reproduce the Figure-1 current-flow decomposition.

    A square-law CMOS inverter drives the clock net from the local grid;
    its PMOS and NMOS currents are reconstructed from the simulated node
    voltages and decomposed into the paper's I1 (short-circuit), I2
    (charging), I3 (discharging) populations, alongside the total package
    current that closes the I1/I2 loops externally.
    """
    from repro.peec.decap import attach_decaps

    model = build_peec_model(
        case.layout, PEECOptions(max_segment_length=80e-6)
    )
    circuit = model.circuit
    pkg_sources = attach_package(model, PackageSpec())
    attach_decaps(model, decap_total, count=6)
    drv_node = model.node_at(case.ports.driver)
    for k, sink in enumerate(case.ports.sinks):
        circuit.add_capacitor(
            f"Cload{k}", model.node_at(sink), GROUND, case.load_capacitance
        )
    vdd_node = model.nodes_of_net("VDD", "M5")[0]
    gnd_node = model.nodes_of_net("GND", "M5")[0]
    v0, v1 = (case.vdd, 0.0) if falling_input else (0.0, case.vdd)
    circuit.add_vsource("Vin", "vin", GROUND, Ramp(v0, v1, 50e-12, case.rise_time))
    inverter = CMOSInverter(
        "drv", "vin", drv_node, vdd_node, gnd_node, strength=driver_strength
    )
    circuit.add_device(inverter)

    record = ["vin", drv_node, vdd_node, gnd_node] + list(pkg_sources)
    result = transient_analysis(circuit, case.t_stop, case.dt, record=record)
    times = result.times

    # Reconstruct device branch currents from node voltages.
    n_steps = len(times)
    i_p = np.zeros(n_steps)  # PMOS vdd -> out
    i_n = np.zeros(n_steps)  # NMOS out -> gnd
    v_g = result.voltage("vin")
    v_o = result.voltage(drv_node)
    v_dd = result.voltage(vdd_node)
    v_ss = result.voltage(gnd_node)
    for k in range(n_steps):
        i_dev, _ = inverter.evaluate(
            np.array([v_g[k], v_o[k], v_dd[k], v_ss[k]])
        )
        i_p[k] = i_dev[2]  # current out of vdd node into the device
        i_n[k] = -i_dev[3]  # current out of the device into gnd node

    # I1 is the component flowing straight through both devices; I2/I3 are
    # the remainders charging/discharging the line.
    i1 = np.minimum(np.abs(i_p), np.abs(i_n)) * np.sign(i_p)
    i2 = i_p - i1
    i3 = i_n - i1
    i_pkg = sum(np.abs(result.current(name)) for name in pkg_sources)
    return CurrentDecomposition(
        times=times,
        i_shortcircuit=i1,
        i_charge=i2,
        i_discharge=i3,
        i_package=i_pkg,
        peak={
            "I1_short_circuit": float(np.max(np.abs(i1))),
            "I2_charge": float(np.max(np.abs(i2))),
            "I3_discharge": float(np.max(np.abs(i3))),
            "package": float(np.max(np.abs(i_pkg))),
        },
    )
