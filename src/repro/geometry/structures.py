"""Test-structure generators: buses, shields, planes, fingers, bundles.

These builders synthesize the canonical topologies of the paper's Figures
3 and 5-9: a signal over a ground grid (loop extraction), shielded lines,
dedicated ground planes, inter-digitated wide wires, parallel buses, and
parallel/twisted bundles.  Each returns the layout plus the tap points a
circuit builder or loop extractor needs.

Return-path conductors are strapped together at the structure ends (as in
physical test structures), giving the extractor a well-defined return loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.clocktree import TapPoint
from repro.geometry.layout import Layout, NetKind
from repro.geometry.segment import Direction, Layer, default_layer_stack


@dataclass(frozen=True)
class StructurePorts:
    """Named tap points of a generated test structure."""

    taps: dict[str, TapPoint]

    def __getitem__(self, key: str) -> TapPoint:
        return self.taps[key]

    def names(self) -> list[str]:
        return sorted(self.taps)


def _fresh_layout(layers: list[Layer] | None, name: str) -> Layout:
    return Layout(layers or default_layer_stack(), name=name)


def _add_lines_with_straps(
    layout: Layout,
    net: str,
    layer_name: str,
    y_centers: list[float],
    x_start: float,
    length: float,
    width: float,
    straps: bool,
    base: str,
    extension: float = 0.0,
) -> None:
    """Add parallel X-direction lines at ``y_centers``, strapped at both ends.

    ``extension`` stretches the lines beyond [x_start, x_start+length] so
    this net's end straps sit at a different x than another net's straps
    (two coincident collinear straps would physically overlap).
    """
    x_lo = x_start - extension
    total = length + 2.0 * extension
    for i, y in enumerate(y_centers):
        layout.add_wire(
            net=net,
            layer=layer_name,
            direction=Direction.X,
            start=(x_lo, y - width / 2),
            length=total,
            width=width,
            name=f"{base}_{i}",
        )
    if straps and len(y_centers) > 1:
        ys = sorted(y_centers)
        for side, x in enumerate((x_lo, x_lo + total)):
            layout.add_wire(
                net=net,
                layer=layer_name,
                direction=Direction.Y,
                start=(x - width / 2, ys[0]),
                length=ys[-1] - ys[0],
                width=width,
                breakpoints=ys[1:-1],
                name=f"{base}_strap{side}",
            )


def build_signal_over_grid(
    length: float = 1000e-6,
    signal_width: float = 2e-6,
    return_width: float = 1e-6,
    pitch: float = 10e-6,
    returns_per_side: int = 3,
    layer_name: str = "M6",
    layers: list[Layer] | None = None,
    end_straps: bool = True,
    signal_net: str = "sig",
    ground_net: str = "GND",
) -> tuple[Layout, StructurePorts]:
    """Signal line flanked by a coplanar ground grid (paper Figure 3a).

    A single signal wire runs along X at y = 0; ``returns_per_side`` ground
    return lines run parallel on each side at multiples of ``pitch``,
    strapped together at both ends.

    Ports: ``driver`` / ``receiver`` on the signal; ``gnd_driver`` /
    ``gnd_receiver`` on the nearest ground line's corresponding ends.
    """
    if returns_per_side < 1:
        raise ValueError("returns_per_side must be >= 1")
    layout = _fresh_layout(layers, "signal_over_grid")
    layout.add_net(signal_net, NetKind.SIGNAL)
    layout.add_net(ground_net, NetKind.GROUND)

    layout.add_wire(
        net=signal_net,
        layer=layer_name,
        direction=Direction.X,
        start=(0.0, -signal_width / 2),
        length=length,
        width=signal_width,
        name=f"{signal_net}_line",
    )
    y_centers = [k * pitch for k in range(1, returns_per_side + 1)]
    y_centers += [-y for y in y_centers]
    _add_lines_with_straps(
        layout, ground_net, layer_name, sorted(y_centers), 0.0, length,
        return_width, end_straps, f"{ground_net}_ret",
    )
    taps = {
        "driver": TapPoint(signal_net, 0.0, 0.0, layer_name, "driver"),
        "receiver": TapPoint(signal_net, length, 0.0, layer_name, "receiver"),
        "gnd_driver": TapPoint(ground_net, 0.0, pitch, layer_name, "gnd_driver"),
        "gnd_receiver": TapPoint(ground_net, length, pitch, layer_name, "gnd_receiver"),
    }
    return layout, StructurePorts(taps)


def build_shielded_line(
    length: float = 1000e-6,
    signal_width: float = 2e-6,
    shield_width: float = 1.5e-6,
    shield_spacing: float = 2e-6,
    outer_returns: int = 2,
    outer_pitch: float = 20e-6,
    layer_name: str = "M6",
    layers: list[Layer] | None = None,
    with_shields: bool = True,
    signal_net: str = "sig",
    ground_net: str = "GND",
) -> tuple[Layout, StructurePorts]:
    """Signal sandwiched between ground shields (paper Figure 5).

    "Loop inductance can be reduced by sandwiching a signal line between
    ground return lines or guard traces."  With ``with_shields=False`` only
    the distant outer return lines remain, giving the unshielded baseline.
    """
    layout = _fresh_layout(layers, "shielded_line")
    layout.add_net(signal_net, NetKind.SIGNAL)
    layout.add_net(ground_net, NetKind.GROUND)

    layout.add_wire(
        net=signal_net,
        layer=layer_name,
        direction=Direction.X,
        start=(0.0, -signal_width / 2),
        length=length,
        width=signal_width,
        name=f"{signal_net}_line",
    )
    y_centers: list[float] = []
    if with_shields:
        offset = signal_width / 2 + shield_spacing + shield_width / 2
        y_centers += [offset, -offset]
    for k in range(1, outer_returns + 1):
        y_centers += [k * outer_pitch, -k * outer_pitch]
    _add_lines_with_straps(
        layout, ground_net, layer_name, sorted(y_centers), 0.0, length,
        shield_width, True, f"{ground_net}_sh",
    )
    near = min(abs(y) for y in y_centers)
    taps = {
        "driver": TapPoint(signal_net, 0.0, 0.0, layer_name, "driver"),
        "receiver": TapPoint(signal_net, length, 0.0, layer_name, "receiver"),
        "gnd_driver": TapPoint(ground_net, 0.0, near, layer_name, "gnd_driver"),
        "gnd_receiver": TapPoint(ground_net, length, near, layer_name, "gnd_receiver"),
    }
    return layout, StructurePorts(taps)


def build_ground_plane(
    length: float = 1000e-6,
    signal_width: float = 2e-6,
    plane_width: float = 30e-6,
    plane_strips: int = 7,
    signal_layer: str = "M5",
    plane_layers: tuple[str, ...] = ("M4", "M6"),
    layers: list[Layer] | None = None,
    side_returns: bool = True,
    side_pitch: float = 20e-6,
    signal_net: str = "sig",
    ground_net: str = "GND",
) -> tuple[Layout, StructurePorts]:
    """Signal with dedicated ground planes above/below (paper Figure 6).

    Planes are modeled as ``plane_strips`` adjacent parallel strips (the
    paper: wide conductors "must be split into narrower lines before
    computing inductance"), strapped at both ends.  ``plane_layers`` selects
    above, below, or both.
    """
    if plane_strips < 1:
        raise ValueError("plane_strips must be >= 1")
    layout = _fresh_layout(layers, "ground_plane")
    layout.add_net(signal_net, NetKind.SIGNAL)
    layout.add_net(ground_net, NetKind.GROUND)

    layout.add_wire(
        net=signal_net,
        layer=signal_layer,
        direction=Direction.X,
        start=(0.0, -signal_width / 2),
        length=length,
        width=signal_width,
        name=f"{signal_net}_line",
    )
    strip_width = plane_width / plane_strips
    strip_centers = [
        -plane_width / 2 + (i + 0.5) * strip_width for i in range(plane_strips)
    ]
    for layer_name in plane_layers:
        _add_lines_with_straps(
            layout, ground_net, layer_name, strip_centers, 0.0, length,
            strip_width * 0.98, True, f"{ground_net}_pl_{layer_name}",
        )
    if side_returns:
        _add_lines_with_straps(
            layout, ground_net, signal_layer, [side_pitch, -side_pitch],
            0.0, length, signal_width, True, f"{ground_net}_side",
        )
    gnd_layer = plane_layers[0]
    gy = strip_centers[len(strip_centers) // 2]
    taps = {
        "driver": TapPoint(signal_net, 0.0, 0.0, signal_layer, "driver"),
        "receiver": TapPoint(signal_net, length, 0.0, signal_layer, "receiver"),
        "gnd_driver": TapPoint(ground_net, 0.0, gy, gnd_layer, "gnd_driver"),
        "gnd_receiver": TapPoint(ground_net, length, gy, gnd_layer, "gnd_receiver"),
    }
    return layout, StructurePorts(taps)


def build_interdigitated_wire(
    length: float = 1000e-6,
    total_signal_width: float = 8e-6,
    num_fingers: int = 4,
    shield_width: float = 1e-6,
    finger_spacing: float = 1e-6,
    layer_name: str = "M6",
    layers: list[Layer] | None = None,
    outer_returns: int = 1,
    outer_pitch: float = 25e-6,
    signal_net: str = "sig",
    ground_net: str = "GND",
) -> tuple[Layout, StructurePorts]:
    """Wide wire split into fingers with interleaved ground shields (Figure 7).

    "Wider wires can be split into multiple thinner wires with shields in
    between.  Such inter-digitizing reduces self-inductance, increases
    resistance and capacitance."  With ``num_fingers=1`` and no shields the
    structure degenerates to the solid-wire baseline.

    The signal fingers are strapped at both ends (they are one electrical
    wire); ground shields sit between and outside the fingers.
    """
    if num_fingers < 1:
        raise ValueError("num_fingers must be >= 1")
    layout = _fresh_layout(layers, "interdigitated")
    layout.add_net(signal_net, NetKind.SIGNAL)
    layout.add_net(ground_net, NetKind.GROUND)

    finger_width = total_signal_width / num_fingers
    pitch = finger_width + shield_width + 2 * finger_spacing
    span = (num_fingers - 1) * pitch
    finger_centers = [-span / 2 + i * pitch for i in range(num_fingers)]
    _add_lines_with_straps(
        layout, signal_net, layer_name, finger_centers, 0.0, length,
        finger_width, True, f"{signal_net}_f",
    )
    shield_centers = [
        (a + b) / 2 for a, b in zip(finger_centers[:-1], finger_centers[1:])
    ]
    # Outer shields just outside the finger array complete the G-S-G pattern.
    if num_fingers >= 1:
        edge = span / 2 + finger_width / 2 + finger_spacing + shield_width / 2
        shield_centers += [edge, -edge]
    for k in range(1, outer_returns + 1):
        off = span / 2 + k * outer_pitch
        shield_centers += [off, -off]
    # Extend the ground system past the signal straps so the two nets'
    # straps occupy distinct x positions.
    _add_lines_with_straps(
        layout, ground_net, layer_name, sorted(shield_centers), 0.0, length,
        shield_width, True, f"{ground_net}_sh",
        extension=2e-6 + shield_width,
    )
    gy = min(shield_centers, key=abs)
    ext = 2e-6 + shield_width
    taps = {
        "driver": TapPoint(signal_net, 0.0, finger_centers[0], layer_name, "driver"),
        "receiver": TapPoint(signal_net, length, finger_centers[0], layer_name, "receiver"),
        "gnd_driver": TapPoint(ground_net, -ext, gy, layer_name, "gnd_driver"),
        "gnd_receiver": TapPoint(ground_net, length + ext, gy, layer_name, "gnd_receiver"),
    }
    return layout, StructurePorts(taps)


def build_bus(
    num_signals: int = 4,
    length: float = 500e-6,
    wire_width: float = 1e-6,
    pitch: float = 4e-6,
    layer_name: str = "M6",
    layers: list[Layer] | None = None,
    edge_grounds: bool = True,
    ground_pitch_factor: float = 2.0,
    signal_prefix: str = "bus",
    ground_net: str = "GND",
    layout: Layout | None = None,
    y_offset: float = 0.0,
    x_start: float = 0.0,
) -> tuple[Layout, StructurePorts]:
    """Parallel signal bus, optionally bounded by ground lines.

    The substrate for crosstalk studies (staggered inverters, SINO, twisted
    bundles).  Signals are named ``{signal_prefix}0 .. {signal_prefix}N-1``
    bottom to top; ports ``{net}:in`` / ``{net}:out`` at the wire ends.
    """
    if num_signals < 1:
        raise ValueError("num_signals must be >= 1")
    if layout is None:
        layout = _fresh_layout(layers, "bus")
    layout.add_net(ground_net, NetKind.GROUND)

    taps: dict[str, TapPoint] = {}
    for i in range(num_signals):
        net = f"{signal_prefix}{i}"
        layout.add_net(net, NetKind.SIGNAL)
        y = y_offset + i * pitch
        layout.add_wire(
            net=net,
            layer=layer_name,
            direction=Direction.X,
            start=(x_start, y - wire_width / 2),
            length=length,
            width=wire_width,
            name=f"{net}_line",
        )
        taps[f"{net}:in"] = TapPoint(net, x_start, y, layer_name, f"{net}_in")
        taps[f"{net}:out"] = TapPoint(net, x_start + length, y, layer_name, f"{net}_out")

    if edge_grounds:
        gp = pitch * ground_pitch_factor
        y_lo = y_offset - gp
        y_hi = y_offset + (num_signals - 1) * pitch + gp
        _add_lines_with_straps(
            layout, ground_net, layer_name, [y_lo, y_hi], x_start, length,
            wire_width, True, f"{ground_net}_edge",
        )
        taps["gnd:in"] = TapPoint(ground_net, x_start, y_lo, layer_name, "gnd_in")
        taps["gnd:out"] = TapPoint(ground_net, x_start + length, y_lo, layer_name, "gnd_out")
    return layout, StructurePorts(taps)


def _build_bundle(
    twisted: bool,
    num_nets: int,
    num_regions: int,
    length: float,
    wire_width: float,
    pitch: float,
    layer_name: str,
    layers: list[Layer] | None,
    signal_prefix: str,
    ground_net: str,
    twist_pairs: tuple[int, ...] | None = None,
) -> tuple[Layout, StructurePorts]:
    if num_nets < 2:
        raise ValueError("a bundle needs at least 2 nets")
    if num_regions < 1:
        raise ValueError("num_regions must be >= 1")
    name = "twisted_bundle" if twisted else "parallel_bundle"
    layout = _fresh_layout(layers, name)
    layout.add_net(ground_net, NetKind.GROUND)

    region_len = length / num_regions
    track_y = [i * pitch for i in range(num_nets)]
    clearance = max(3.0 * wire_width, 2e-6)
    if 3.0 * clearance >= region_len:
        raise ValueError(
            "regions too short for the crossover geometry; increase length "
            "or reduce num_regions"
        )

    # Track assignment per region.  Twisting swaps each fixed adjacent track
    # pair (0,1), (2,3), ... at every region boundary: each pair becomes a
    # twisted pair, which is how the structure "creates complementary and
    # opposite current loops ... such that the magnetic fluxes arising from
    # any signal net within a twisted group cancel each other" (Zhong et
    # al., paper ref [23]).  At a crossover, the up-going net jogs in-plane
    # and the down-going net dips to the layer below through vias.
    assignment = [list(range(num_nets))]  # assignment[r][track] = net index
    active_pairs = (
        tuple(range(num_nets // 2)) if twist_pairs is None else twist_pairs
    )
    for r in range(num_regions - 1):
        current = list(assignment[-1])
        if twisted:
            for pair in active_pairs:
                t = 2 * pair
                if t + 1 < num_nets:
                    current[t], current[t + 1] = current[t + 1], current[t]
        assignment.append(current)

    def track_of(net_idx: int, region: int) -> int:
        return assignment[region].index(net_idx)

    lower = layout.layers[layout.layer(layer_name).index - 1]
    if lower.index >= layout.layer(layer_name).index:
        raise ValueError(f"layer {layer_name} needs a routing layer below it")

    taps: dict[str, TapPoint] = {}
    for i in range(num_nets):
        net = f"{signal_prefix}{i}"
        layout.add_net(net, NetKind.SIGNAL)
        # Per-region wire spans, adjusted at crossover boundaries.
        for r in range(num_regions):
            t_here = track_of(i, r)
            y = track_y[t_here]
            x0 = r * region_len
            x1 = (r + 1) * region_len
            if r > 0 and track_of(i, r - 1) > t_here:
                x0 += clearance  # arrived via the lower-layer crossover
            going_down = (
                r + 1 < num_regions and track_of(i, r + 1) < t_here
            )
            if going_down:
                x1 -= clearance  # departs early into the crossover
            layout.add_wire(
                net=net,
                layer=layer_name,
                direction=Direction.X,
                start=(x0, y - wire_width / 2),
                length=x1 - x0,
                width=wire_width,
                name=f"{net}_r{r}",
            )
            if r + 1 < num_regions:
                t_next = track_of(i, r + 1)
                if t_next > t_here:
                    # Up-going: in-plane Y jog at the boundary.
                    layout.add_wire(
                        net=net,
                        layer=layer_name,
                        direction=Direction.Y,
                        start=((r + 1) * region_len - wire_width / 2,
                               track_y[t_here]),
                        length=track_y[t_next] - track_y[t_here],
                        width=wire_width,
                        name=f"{net}_jog{r}",
                    )
                elif t_next < t_here:
                    # Down-going: dip to the layer below, cross under the
                    # partner's jog, come back up past the boundary.
                    xb = (r + 1) * region_len
                    y_next = track_y[t_next]
                    layout.add_via(net, xb - clearance, y, lower.name,
                                   layer_name, wire_width,
                                   name=f"{net}_vd{r}")
                    layout.add_wire(
                        net=net,
                        layer=lower.name,
                        direction=Direction.Y,
                        start=(xb - clearance - wire_width / 2,
                               min(y, y_next)),
                        length=abs(y - y_next),
                        width=wire_width,
                        name=f"{net}_x{r}a",
                    )
                    layout.add_wire(
                        net=net,
                        layer=lower.name,
                        direction=Direction.X,
                        start=(xb - clearance, y_next - wire_width / 2),
                        length=2 * clearance,
                        width=wire_width,
                        name=f"{net}_x{r}b",
                    )
                    layout.add_via(net, xb + clearance, y_next, lower.name,
                                   layer_name, wire_width,
                                   name=f"{net}_vu{r}")
        y_in = track_y[track_of(i, 0)]
        y_out = track_y[track_of(i, num_regions - 1)]
        taps[f"{net}:in"] = TapPoint(net, 0.0, y_in, layer_name, f"{net}_in")
        taps[f"{net}:out"] = TapPoint(net, length, y_out, layer_name, f"{net}_out")

    # Ground returns bounding the bundle.
    y_lo = -2 * pitch
    y_hi = track_y[-1] + 2 * pitch
    _add_lines_with_straps(
        layout, ground_net, layer_name, [y_lo, y_hi], 0.0, length,
        wire_width, True, f"{ground_net}_edge",
    )
    taps["gnd:in"] = TapPoint(ground_net, 0.0, y_lo, layer_name, "gnd_in")
    taps["gnd:out"] = TapPoint(ground_net, length, y_lo, layer_name, "gnd_out")
    return layout, StructurePorts(taps)


def build_parallel_bundle(
    num_nets: int = 4,
    num_regions: int = 4,
    length: float = 800e-6,
    wire_width: float = 1e-6,
    pitch: float = 4e-6,
    layer_name: str = "M6",
    layers: list[Layer] | None = None,
    signal_prefix: str = "n",
    ground_net: str = "GND",
) -> tuple[Layout, StructurePorts]:
    """Straight parallel bundle: the Figure-9 baseline for twisting."""
    return _build_bundle(
        False, num_nets, num_regions, length, wire_width, pitch,
        layer_name, layers, signal_prefix, ground_net,
    )


def build_twisted_bundle(
    num_nets: int = 4,
    num_regions: int = 4,
    length: float = 800e-6,
    wire_width: float = 1e-6,
    pitch: float = 4e-6,
    layer_name: str = "M6",
    layers: list[Layer] | None = None,
    signal_prefix: str = "n",
    ground_net: str = "GND",
    twist_pairs: tuple[int, ...] | None = None,
) -> tuple[Layout, StructurePorts]:
    """Twisted-bundle layout (paper Figure 9, ref [23]).

    The routing region is divided into ``num_regions`` sections; adjacent
    track pairs cross over at every section boundary (in-plane jog for the
    up-going net, layer-below dip for the down-going net), so magnetic
    fluxes coupled between a twisted pair's loop and its neighbours
    alternate sign along the run and largely cancel.

    Args:
        twist_pairs: Which track pairs (pair k = tracks 2k, 2k+1) twist;
            ``None`` twists all of them.  Giving neighbouring pairs
            different twist behaviour (one twisted, one straight) maximizes
            the flux cancellation, exactly as in a twisted-pair cable run.
    """
    return _build_bundle(
        True, num_nets, num_regions, length, wire_width, pitch,
        layer_name, layers, signal_prefix, ground_net,
        twist_pairs=twist_pairs,
    )
