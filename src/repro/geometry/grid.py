"""Multi-layer power/ground grid generator.

Builds the "typical power grid topology" of the paper's Figure 2: on each
grid layer, interleaved power and ground stripes run in the layer's
preferred direction; stripes of the same net on adjacent layers are stitched
with vias at their crossings; external supply enters through pads on the
uppermost layer.  Gates draw power from the lowest grid layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.layout import Layout, NetKind
from repro.geometry.segment import Direction, Layer, default_layer_stack


@dataclass(frozen=True)
class _Stripe:
    """Internal descriptor for one grid stripe before segmentation."""

    net: str
    layer: str
    direction: Direction
    transverse_center: float
    axis_start: float
    length: float
    width: float


@dataclass
class PowerGridSpec:
    """Parameters of a synthetic multi-layer power/ground grid.

    Attributes:
        die_width: Grid region extent in x [m].
        die_height: Grid region extent in y [m].
        layer_names: Grid layers, bottom to top; adjacent entries must have
            orthogonal preferred directions (checked at build time).
        stripe_pitch: Distance between two same-net stripes on a layer [m].
            Power and ground stripes interleave at half this pitch.
        stripe_width: Stripe width [m].
        via_width: Via width [m].
        power_net: Name of the power net.
        ground_net: Name of the ground net.
        margin: Distance from the region edge to the first stripe [m].
        pads_per_net: Number of supply pads per net on the top grid layer.
    """

    die_width: float
    die_height: float
    layer_names: tuple[str, ...] = ("M5", "M6")
    stripe_pitch: float = 40e-6
    stripe_width: float = 2e-6
    via_width: float = 1e-6
    power_net: str = "VDD"
    ground_net: str = "GND"
    margin: float = 5e-6
    pads_per_net: int = 2

    def __post_init__(self) -> None:
        if self.die_width <= 0 or self.die_height <= 0:
            raise ValueError("die dimensions must be positive")
        if self.stripe_pitch <= self.stripe_width:
            raise ValueError("stripe_pitch must exceed stripe_width")
        if len(self.layer_names) < 1:
            raise ValueError("at least one grid layer is required")
        if self.pads_per_net < 1:
            raise ValueError("pads_per_net must be >= 1")


def _stripe_positions(extent: float, margin: float, pitch: float) -> list[float]:
    """Transverse center coordinates of interleaved stripes across ``extent``.

    Stripes alternate between the two nets; same-net spacing is ``pitch``,
    so consecutive stripes sit ``pitch / 2`` apart.
    """
    positions = []
    c = margin
    while c <= extent - margin + 1e-15:
        positions.append(c)
        c += pitch / 2.0
    if len(positions) < 2:
        raise ValueError(
            f"grid extent {extent} too small for pitch {pitch} and margin {margin}"
        )
    return positions


def _build_stripes(spec: PowerGridSpec, layout: Layout) -> list[_Stripe]:
    stripes: list[_Stripe] = []
    for layer_name in spec.layer_names:
        layer = layout.layer(layer_name)
        direction = layer.pitch_direction
        if direction == Direction.X:
            transverse_extent = spec.die_height
            length = spec.die_width
        else:
            transverse_extent = spec.die_width
            length = spec.die_height
        centers = _stripe_positions(transverse_extent, spec.margin, spec.stripe_pitch)
        for k, center in enumerate(centers):
            net = spec.power_net if k % 2 == 0 else spec.ground_net
            stripes.append(
                _Stripe(
                    net=net,
                    layer=layer_name,
                    direction=direction,
                    transverse_center=center,
                    axis_start=0.0,
                    length=length,
                    width=spec.stripe_width,
                )
            )
    return stripes


def build_power_grid(
    spec: PowerGridSpec,
    layers: list[Layer] | None = None,
    layout: Layout | None = None,
) -> Layout:
    """Build (or extend) a layout with a stitched power/ground grid.

    Args:
        spec: Grid parameters.
        layers: Metal stack to use when creating a fresh layout; defaults to
            :func:`default_layer_stack`.
        layout: Existing layout to extend in place (its stack is reused and
            ``layers`` is ignored).

    Returns:
        The layout containing the grid (the one passed in, if any).
    """
    if layout is None:
        layout = Layout(layers or default_layer_stack(), name="power_grid")
    layout.add_net(spec.power_net, NetKind.POWER)
    layout.add_net(spec.ground_net, NetKind.GROUND)

    for a, b in zip(spec.layer_names[:-1], spec.layer_names[1:]):
        da = layout.layer(a).pitch_direction
        db = layout.layer(b).pitch_direction
        if da.is_parallel_to(db):
            raise ValueError(
                f"adjacent grid layers {a}/{b} must route orthogonally "
                f"(both prefer {da.value})"
            )

    stripes = _build_stripes(spec, layout)

    # Crossings between same-net stripes on adjacent grid layers become vias;
    # both stripes must be cut there so the via lands on segment terminals.
    breakpoints: dict[int, set[float]] = {i: set() for i in range(len(stripes))}
    via_requests: list[tuple[str, float, float, str, str]] = []
    layer_order = {name: i for i, name in enumerate(spec.layer_names)}
    for i, lower in enumerate(stripes):
        for j, upper in enumerate(stripes):
            if lower.net != upper.net:
                continue
            if layer_order[upper.layer] != layer_order[lower.layer] + 1:
                continue
            if lower.direction.is_parallel_to(upper.direction):
                continue
            # Orthogonal same-net stripes on adjacent layers: crossing point
            # is (upper center, lower center) resolved per direction.
            if lower.direction == Direction.X:
                x, y = upper.transverse_center, lower.transverse_center
            else:
                x, y = lower.transverse_center, upper.transverse_center
            lower_axis = x if lower.direction == Direction.X else y
            upper_axis = x if upper.direction == Direction.X else y
            if not (lower.axis_start < lower_axis < lower.axis_start + lower.length):
                continue
            if not (upper.axis_start < upper_axis < upper.axis_start + upper.length):
                continue
            breakpoints[i].add(lower_axis)
            breakpoints[j].add(upper_axis)
            via_requests.append((lower.net, x, y, lower.layer, upper.layer))

    for i, stripe in enumerate(stripes):
        if stripe.direction == Direction.X:
            start = (stripe.axis_start, stripe.transverse_center - stripe.width / 2)
        else:
            start = (stripe.transverse_center - stripe.width / 2, stripe.axis_start)
        layout.add_wire(
            net=stripe.net,
            layer=stripe.layer,
            direction=stripe.direction,
            start=start,
            length=stripe.length,
            width=stripe.width,
            breakpoints=sorted(breakpoints[i]),
            name=f"{stripe.net}_{stripe.layer}_{i}",
        )

    for net, x, y, layer_bottom, layer_top in via_requests:
        layout.add_via(net, x, y, layer_bottom, layer_top, spec.via_width)

    _place_pads(spec, layout, stripes)
    return layout


def _place_pads(spec: PowerGridSpec, layout: Layout, stripes: list[_Stripe]) -> None:
    """Place supply pads at axial ends of top-grid-layer stripes.

    Pads must coincide with segment terminals, and stripe axial ends always
    are terminals.  Pads are distributed across the available stripes of
    each net for spatial spread (pad location matters for current paths,
    per Section 1 of the paper).
    """
    top = spec.layer_names[-1]
    if top != layout.layers[-1].name:
        # Pads live on the top layer of the *stack*; when the grid does not
        # reach it, place pads on the grid's top layer instead and let the
        # package model attach there.
        pass
    for net in (spec.power_net, spec.ground_net):
        candidates = [s for s in stripes if s.layer == top and s.net == net]
        if not candidates:
            raise ValueError(f"no top-layer stripes for net {net!r}")
        step = max(1, len(candidates) // spec.pads_per_net)
        chosen = candidates[::step][: spec.pads_per_net]
        for k, stripe in enumerate(chosen):
            # Alternate stripe ends so power enters from both sides.
            axis_coord = stripe.axis_start if k % 2 == 0 else stripe.axis_start + stripe.length
            if stripe.direction == Direction.X:
                x, y = axis_coord, stripe.transverse_center
            else:
                x, y = stripe.transverse_center, axis_coord
            layout.add_pad(net, x, y, name=f"pad_{net}_{k}")
