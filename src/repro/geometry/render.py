"""ASCII top-view rendering of layouts.

Quick visual sanity checking without a GUI: wires become runs of ``-``
(X direction) or ``|`` (Y direction), crossings ``+``, vias ``#`` and
pads ``@``.  Per-layer views avoid ambiguity on dense stacks; the
combined view overlays everything.

    >>> print(render_layout(layout, width=60))     # doctest: +SKIP
"""

from __future__ import annotations

import math

from repro.geometry.layout import Layout
from repro.geometry.segment import Direction

#: Glyphs per feature class.
GLYPH_X = "-"
GLYPH_Y = "|"
GLYPH_CROSS = "+"
GLYPH_VIA = "#"
GLYPH_PAD = "@"


def _scale(layout: Layout, width: int, height: int):
    (x0, y0, _), (x1, y1, _) = layout.bounding_box()
    span_x = max(x1 - x0, 1e-12)
    span_y = max(y1 - y0, 1e-12)

    def to_cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - x0) / span_x * (width - 1))
        row = int((y - y0) / span_y * (height - 1))
        return min(max(col, 0), width - 1), min(max(row, 0), height - 1)

    return to_cell


def render_layout(
    layout: Layout,
    width: int = 72,
    height: int = 24,
    layer: str | None = None,
    show_pads: bool = True,
) -> str:
    """Render a layout's top view as ASCII art.

    Args:
        layout: Layout to draw.
        width: Character columns.
        height: Character rows (the y axis points *up*: row 0 prints last).
        layer: Restrict to one layer; ``None`` overlays all.
        show_pads: Mark pad positions with ``@``.

    Returns:
        The multi-line drawing, bottom-left origin, with a legend line.
    """
    if width < 8 or height < 4:
        raise ValueError("need width >= 8 and height >= 4")
    if not layout.segments:
        raise ValueError("layout has no segments to draw")
    to_cell = _scale(layout, width, height)
    grid = [[" "] * width for _ in range(height)]

    def put(col: int, row: int, glyph: str) -> None:
        current = grid[row][col]
        if current == " ":
            grid[row][col] = glyph
        elif current != glyph and glyph != GLYPH_VIA and glyph != GLYPH_PAD:
            grid[row][col] = GLYPH_CROSS
        else:
            grid[row][col] = glyph

    for seg in layout.segments:
        if layer is not None and seg.layer != layer:
            continue
        a, b = seg.endpoints()
        c0, r0 = to_cell(a[0], a[1])
        c1, r1 = to_cell(b[0], b[1])
        if seg.direction == Direction.X:
            for col in range(min(c0, c1), max(c0, c1) + 1):
                put(col, r0, GLYPH_X)
        elif seg.direction == Direction.Y:
            for row in range(min(r0, r1), max(r0, r1) + 1):
                put(c0, row, GLYPH_Y)
        else:
            put(c0, r0, GLYPH_VIA)

    for via in layout.vias:
        if layer is not None and layer not in (via.layer_bottom,
                                               via.layer_top):
            continue
        col, row = to_cell(via.x, via.y)
        grid[row][col] = GLYPH_VIA
    if show_pads:
        for pad in layout.pads:
            col, row = to_cell(pad.x, pad.y)
            grid[row][col] = GLYPH_PAD

    lines = ["".join(row).rstrip() for row in reversed(grid)]
    scope = f"layer {layer}" if layer else "all layers"
    legend = (
        f"[{layout.name}: {scope}; {GLYPH_X}/{GLYPH_Y} wires, "
        f"{GLYPH_CROSS} crossing, {GLYPH_VIA} via, {GLYPH_PAD} pad]"
    )
    return "\n".join(lines + [legend])


def layer_summary(layout: Layout) -> str:
    """One line per layer: segment count and total wire length."""
    rows = []
    for layer in layout.layers:
        segs = [s for s in layout.segments if s.layer == layer.name]
        if not segs:
            continue
        total = sum(s.length for s in segs)
        rows.append(
            f"{layer.name}: {len(segs)} segments, "
            f"{total * 1e6:.0f} um total, "
            f"{layer.sheet_resistance * 1e3:.0f} mohm/sq"
        )
    return "\n".join(rows)
