"""Layout substrate: conductor segments, layers, nets, and layout generators.

This package provides the geometric model on which parasitic extraction
(:mod:`repro.extraction`) and PEEC model construction (:mod:`repro.peec`)
operate.  The model is deliberately simple -- axis-aligned rectangular
conductor segments on a stack of routing layers, connected by vias -- which
matches the abstraction used in the paper (Figure 2: "Resistance, partial
self-inductance and grounded capacitance (RLC-pi) model for each metal
segment").
"""

from repro.geometry.segment import (
    Direction,
    Layer,
    Segment,
    default_layer_stack,
)
from repro.geometry.layout import Layout, Net, NetKind, Pad, Via
from repro.geometry.grid import PowerGridSpec, build_power_grid
from repro.geometry.clocktree import (
    ClockNetSpec,
    HTreeSpec,
    build_clock_net,
    build_htree_clock,
)
from repro.geometry.structures import (
    build_bus,
    build_ground_plane,
    build_interdigitated_wire,
    build_shielded_line,
    build_signal_over_grid,
    build_twisted_bundle,
    build_parallel_bundle,
)

__all__ = [
    "Direction",
    "Layer",
    "Segment",
    "default_layer_stack",
    "Layout",
    "Net",
    "NetKind",
    "Pad",
    "Via",
    "PowerGridSpec",
    "build_power_grid",
    "ClockNetSpec",
    "build_clock_net",
    "HTreeSpec",
    "build_htree_clock",
    "build_bus",
    "build_ground_plane",
    "build_interdigitated_wire",
    "build_shielded_line",
    "build_signal_over_grid",
    "build_twisted_bundle",
    "build_parallel_bundle",
]
