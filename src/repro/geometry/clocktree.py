"""Global clock net generator (spine + branches, optional H-tree level).

The paper's experiments target "a global clock net in the presence of a
multi-layer power grid" -- long, wide upper-layer lines, the regime where
inductive effects dominate.  This module synthesizes such a net: a wide
trunk on an upper layer feeding orthogonal branches one layer below, with
driver and sink tap points exposed for circuit construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.layout import Layout, NetKind
from repro.geometry.segment import Direction


@dataclass(frozen=True)
class TapPoint:
    """A point where a device (driver/receiver) attaches to a net."""

    net: str
    x: float
    y: float
    layer: str
    name: str = ""


@dataclass
class ClockNetSpec:
    """Parameters of a synthetic global clock net.

    Attributes:
        net_name: Clock net name.
        trunk_layer: Layer of the wide spine (should prefer X routing).
        branch_layer: Layer of the branches (should prefer Y routing and be
            adjacent to ``trunk_layer``).
        trunk_width: Spine width [m] -- wide, per the paper's "long and wide
            signal lines".
        branch_width: Branch width [m].
        trunk_y: y coordinate of the spine centerline [m].
        trunk_x_start: x coordinate where the spine (and its driver) begins.
        trunk_length: Spine length [m].
        num_branches: Number of branches tapped off the spine.
        branch_length: Length of each branch [m]; branches extend both up
            and down from the spine by half this length.
        via_width: Width of trunk-to-branch vias [m].
        sinks_per_branch: Receivers per branch (placed at branch ends; 1 or 2).
    """

    net_name: str = "clk"
    trunk_layer: str = "M5"
    branch_layer: str = "M6"
    trunk_width: float = 4e-6
    branch_width: float = 1.5e-6
    trunk_y: float = 0.0
    trunk_x_start: float = 0.0
    trunk_length: float = 400e-6
    num_branches: int = 4
    branch_length: float = 100e-6
    via_width: float = 1e-6
    sinks_per_branch: int = 2

    def __post_init__(self) -> None:
        if self.num_branches < 1:
            raise ValueError("num_branches must be >= 1")
        if self.sinks_per_branch not in (1, 2):
            raise ValueError("sinks_per_branch must be 1 or 2")
        if self.trunk_length <= 0 or self.branch_length <= 0:
            raise ValueError("trunk/branch lengths must be positive")


@dataclass(frozen=True)
class ClockNetPorts:
    """Result of clock-net generation: where devices attach."""

    driver: TapPoint
    sinks: tuple[TapPoint, ...]


def build_clock_net(spec: ClockNetSpec, layout: Layout) -> ClockNetPorts:
    """Add a spine-and-branches clock net to ``layout``.

    The trunk runs along X on ``spec.trunk_layer``; ``spec.num_branches``
    equally spaced branches run along Y on ``spec.branch_layer``, stitched
    to the trunk by vias.  The driver tap is at the trunk's start terminal;
    sink taps are at branch end terminals.

    Returns:
        Driver and sink tap points.
    """
    trunk_layer = layout.layer(spec.trunk_layer)
    branch_layer = layout.layer(spec.branch_layer)
    if trunk_layer.pitch_direction != Direction.X:
        raise ValueError(f"trunk layer {spec.trunk_layer} must prefer X routing")
    if branch_layer.pitch_direction != Direction.Y:
        raise ValueError(f"branch layer {spec.branch_layer} must prefer Y routing")
    lower, upper = sorted((trunk_layer, branch_layer), key=lambda l: l.index)

    layout.add_net(spec.net_name, NetKind.SIGNAL)

    # Branch x positions, spread along the trunk; the last branch sits at the
    # trunk end so no trunk metal is wasted beyond the final tap.
    if spec.num_branches == 1:
        branch_xs = [spec.trunk_x_start + spec.trunk_length]
    else:
        step = spec.trunk_length / spec.num_branches
        branch_xs = [
            spec.trunk_x_start + (i + 1) * step for i in range(spec.num_branches)
        ]

    layout.add_wire(
        net=spec.net_name,
        layer=spec.trunk_layer,
        direction=Direction.X,
        start=(spec.trunk_x_start, spec.trunk_y - spec.trunk_width / 2),
        length=spec.trunk_length,
        width=spec.trunk_width,
        breakpoints=[x for x in branch_xs if x < spec.trunk_x_start + spec.trunk_length],
        name=f"{spec.net_name}_trunk",
    )

    sinks: list[TapPoint] = []
    for b, x in enumerate(branch_xs):
        half = spec.branch_length / 2
        if spec.sinks_per_branch == 2:
            y_start = spec.trunk_y - half
            length = spec.branch_length
            breakpoints = [spec.trunk_y]
            sink_ys = [y_start, y_start + length]
        else:
            y_start = spec.trunk_y
            length = half
            breakpoints = []
            sink_ys = [y_start + length]
        layout.add_wire(
            net=spec.net_name,
            layer=spec.branch_layer,
            direction=Direction.Y,
            start=(x - spec.branch_width / 2, y_start),
            length=length,
            width=spec.branch_width,
            breakpoints=breakpoints,
            name=f"{spec.net_name}_br{b}",
        )
        layout.add_via(
            net=spec.net_name,
            x=x,
            y=spec.trunk_y,
            layer_bottom=lower.name,
            layer_top=upper.name,
            width=spec.via_width,
            name=f"{spec.net_name}_via{b}",
        )
        for s, y in enumerate(sink_ys):
            sinks.append(
                TapPoint(
                    net=spec.net_name,
                    x=x,
                    y=y,
                    layer=spec.branch_layer,
                    name=f"sink_b{b}_{s}",
                )
            )

    driver = TapPoint(
        net=spec.net_name,
        x=spec.trunk_x_start,
        y=spec.trunk_y,
        layer=spec.trunk_layer,
        name="clk_driver",
    )
    return ClockNetPorts(driver=driver, sinks=tuple(sinks))


@dataclass
class HTreeSpec:
    """Parameters of a recursive H-tree clock net.

    Attributes:
        net_name: Clock net name.
        h_layer: Layer of the horizontal bars (must prefer X).
        v_layer: Layer of the vertical bars (must prefer Y; adjacent).
        center: (x, y) of the tree root [m].
        span: Width of the root H [m]; halves at every level.
        levels: Recursion depth (level 1 = a single H, 4 sinks).
        root_width: Wire width of the root bars [m]; tapers by
            ``taper`` per level.
        taper: Width ratio between successive levels (<= 1).
        via_width: Junction via width [m].
    """

    net_name: str = "clk"
    h_layer: str = "M5"
    v_layer: str = "M6"
    center: tuple[float, float] = (200e-6, 200e-6)
    span: float = 200e-6
    levels: int = 2
    root_width: float = 4e-6
    taper: float = 0.7
    via_width: float = 1e-6

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        if not 0.0 < self.taper <= 1.0:
            raise ValueError("taper must be in (0, 1]")
        if self.span <= 0 or self.root_width <= 0:
            raise ValueError("span and root_width must be positive")


def build_htree_clock(spec: HTreeSpec, layout: Layout) -> ClockNetPorts:
    """Add a recursive H-tree clock net to ``layout``.

    Each level is one "H": a horizontal bar on ``h_layer`` whose ends via
    up to vertical bars on ``v_layer``; recursion continues at the four
    vertical-bar tips with half the span and a tapered width.  The driver
    taps the root bar's center; sinks sit at the deepest tips.

    Returns:
        Driver and sink tap points (4^levels sinks).
    """
    h_layer = layout.layer(spec.h_layer)
    v_layer = layout.layer(spec.v_layer)
    if h_layer.pitch_direction != Direction.X:
        raise ValueError(f"h_layer {spec.h_layer} must prefer X routing")
    if v_layer.pitch_direction != Direction.Y:
        raise ValueError(f"v_layer {spec.v_layer} must prefer Y routing")
    lower, upper = sorted((h_layer, v_layer), key=lambda l: l.index)
    layout.add_net(spec.net_name, NetKind.SIGNAL)

    sinks: list[TapPoint] = []
    counter = [0]

    def level(cx: float, cy: float, span: float, width: float,
              depth: int) -> None:
        idx = counter[0]
        counter[0] += 1
        half = span / 2.0
        # Split at the center: the root taps its driver there, child bars
        # receive their feeding via there.
        layout.add_wire(
            spec.net_name, spec.h_layer, Direction.X,
            (cx - half, cy - width / 2), span, width,
            breakpoints=[cx], name=f"{spec.net_name}_h{idx}",
        )
        for side, x in enumerate((cx - half, cx + half)):
            layout.add_wire(
                spec.net_name, spec.v_layer, Direction.Y,
                (x - width / 2, cy - half / 2), half, width,
                breakpoints=[cy], name=f"{spec.net_name}_v{idx}_{side}",
            )
            layout.add_via(
                spec.net_name, x, cy, lower.name, upper.name,
                spec.via_width, name=f"{spec.net_name}_via{idx}_{side}",
            )
            for tip_y in (cy - half / 2, cy + half / 2):
                if depth + 1 < spec.levels:
                    # Recurse: the child H's bar must meet this tip.
                    layout.add_via(
                        spec.net_name, x, tip_y, lower.name, upper.name,
                        spec.via_width,
                        name=f"{spec.net_name}_viat{counter[0]}_{side}",
                    )
                    level(x, tip_y, half / 2, width * spec.taper, depth + 1)
                else:
                    sinks.append(
                        TapPoint(spec.net_name, x, tip_y, spec.v_layer,
                                 f"sink{len(sinks)}")
                    )

    level(spec.center[0], spec.center[1], spec.span, spec.root_width, 0)

    driver = TapPoint(
        net=spec.net_name,
        x=spec.center[0],
        y=spec.center[1],
        layer=spec.h_layer,
        name="clk_driver",
    )
    return ClockNetPorts(driver=driver, sinks=tuple(sinks))
