"""Rectangular conductor segments and routing layers.

A :class:`Segment` is an axis-aligned rectangular bar of metal: the atomic
unit of both extraction and PEEC modeling.  Each segment carries current
along a single axis (its :class:`Direction`), has a rectangular cross
section (width x thickness), and belongs to a named net on a named layer.

Coordinates are SI meters.  A segment is anchored by its *origin* -- the
corner with minimal coordinates -- plus its length along the current
direction, its width transverse in-plane, and its thickness in z.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace


class Direction(enum.Enum):
    """Current-flow axis of a conductor segment."""

    X = "x"
    Y = "y"
    Z = "z"  # vias

    @property
    def axis(self) -> int:
        """Index of the direction axis into an (x, y, z) triple."""
        return {"x": 0, "y": 1, "z": 2}[self.value]

    def is_parallel_to(self, other: "Direction") -> bool:
        """True when two directions share the same axis."""
        return self.axis == other.axis


@dataclass(frozen=True)
class Layer:
    """A routing layer in the metal stack.

    Attributes:
        name: Layer name, e.g. ``"M3"``.
        index: 0-based position in the stack (0 = lowest).
        z_bottom: Height of the layer's bottom face above substrate [m].
        thickness: Metal thickness [m].
        sheet_resistance: Sheet resistance [ohm/square].
        pitch_direction: Preferred routing direction on this layer.
        dielectric_below: Dielectric gap to the layer below (or to the
            substrate for the lowest layer) [m].
    """

    name: str
    index: int
    z_bottom: float
    thickness: float
    sheet_resistance: float
    pitch_direction: Direction
    dielectric_below: float

    @property
    def z_center(self) -> float:
        """Height of the layer's vertical mid-plane [m]."""
        return self.z_bottom + 0.5 * self.thickness

    @property
    def z_top(self) -> float:
        """Height of the layer's top face [m]."""
        return self.z_bottom + self.thickness


def default_layer_stack(num_layers: int = 6) -> list[Layer]:
    """Build a generic high-performance-CMOS metal stack circa 2001.

    Lower layers are thin with high sheet resistance; upper (global) layers
    are thick, low-resistance copper -- the regime where the paper says
    inductance matters ("reductions in wire resistance as a result of copper
    interconnects and wider upper-layer metal lines").

    Args:
        num_layers: Number of metal layers (2..8 are sensible).

    Returns:
        Layers ordered bottom (index 0) to top.
    """
    if not 1 <= num_layers <= 10:
        raise ValueError(f"num_layers must be in [1, 10], got {num_layers}")
    layers = []
    z = 0.8e-6  # first dielectric above substrate
    for i in range(num_layers):
        # Thickness and sheet rho graded from local to global metal.
        frac = i / max(num_layers - 1, 1)
        thickness = (0.35 + 0.85 * frac) * 1e-6
        sheet_res = 0.070 * (1.0 - 0.75 * frac) + 0.008
        dielectric = (0.45 + 0.45 * frac) * 1e-6
        direction = Direction.X if i % 2 == 0 else Direction.Y
        layers.append(
            Layer(
                name=f"M{i + 1}",
                index=i,
                z_bottom=z,
                thickness=thickness,
                sheet_resistance=sheet_res,
                pitch_direction=direction,
                dielectric_below=dielectric,
            )
        )
        z += thickness + dielectric
    return layers


@dataclass(frozen=True)
class Segment:
    """An axis-aligned rectangular conductor segment.

    Attributes:
        net: Name of the electrical net the segment belongs to.
        layer: Name of the routing layer (``"VIA"`` conventionally for vias).
        direction: Current-flow axis.
        origin: Minimal-coordinate corner (x, y, z) [m].
        length: Extent along ``direction`` [m].
        width: In-plane transverse extent [m].  For Z-direction segments
            (vias) this is the x extent.
        thickness: Vertical extent for X/Y segments; for Z segments the
            y extent [m].
        name: Optional unique name; generators fill this in.
    """

    net: str
    layer: str
    direction: Direction
    origin: tuple[float, float, float]
    length: float
    width: float
    thickness: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.length <= 0 or self.width <= 0 or self.thickness <= 0:
            raise ValueError(
                f"segment dimensions must be positive: length={self.length}, "
                f"width={self.width}, thickness={self.thickness}"
            )

    # -- derived geometry -----------------------------------------------

    @property
    def extents(self) -> tuple[float, float, float]:
        """(dx, dy, dz) bounding-box extents of the bar [m]."""
        axis = self.direction.axis
        if axis == 0:
            return (self.length, self.width, self.thickness)
        if axis == 1:
            return (self.width, self.length, self.thickness)
        return (self.width, self.thickness, self.length)

    @property
    def end(self) -> tuple[float, float, float]:
        """Maximal-coordinate corner of the bar."""
        dx, dy, dz = self.extents
        ox, oy, oz = self.origin
        return (ox + dx, oy + dy, oz + dz)

    @property
    def center(self) -> tuple[float, float, float]:
        """Geometric center of the bar."""
        dx, dy, dz = self.extents
        ox, oy, oz = self.origin
        return (ox + dx / 2, oy + dy / 2, oz + dz / 2)

    @property
    def axis_start(self) -> float:
        """Start coordinate along the current direction."""
        return self.origin[self.direction.axis]

    @property
    def axis_end(self) -> float:
        """End coordinate along the current direction."""
        return self.axis_start + self.length

    @property
    def cross_section_area(self) -> float:
        """Cross-section area normal to current flow [m^2]."""
        return self.width * self.thickness

    @property
    def volume(self) -> float:
        """Conductor volume [m^3]."""
        return self.length * self.cross_section_area

    def endpoints(self) -> tuple[tuple[float, float, float], tuple[float, float, float]]:
        """Electrical terminal points: centers of the two end faces.

        These are the points at which the segment connects to neighbouring
        segments in the PEEC circuit graph.
        """
        cx, cy, cz = self.center
        axis = self.direction.axis
        start = [cx, cy, cz]
        stop = [cx, cy, cz]
        start[axis] = self.axis_start
        stop[axis] = self.axis_end
        return (tuple(start), tuple(stop))

    # -- pairwise relations ----------------------------------------------

    def is_parallel(self, other: "Segment") -> bool:
        """True when the two segments carry current along the same axis."""
        return self.direction.is_parallel_to(other.direction)

    def axial_overlap(self, other: "Segment") -> float:
        """Length of the axial-projection overlap with a parallel segment [m].

        Zero when the segments do not overlap along the shared axis (they may
        still couple inductively; overlap is used only as a coupling-strength
        heuristic by sparsification rules).
        """
        if not self.is_parallel(other):
            raise ValueError("axial_overlap requires parallel segments")
        lo = max(self.axis_start, other.axis_start)
        hi = min(self.axis_end, other.axis_end)
        return max(0.0, hi - lo)

    def center_distance(self, other: "Segment") -> float:
        """Center-to-center Euclidean distance [m]."""
        a, b = self.center, other.center
        return math.dist(a, b)

    def transverse_distance(self, other: "Segment") -> float:
        """Center-to-center distance in the plane normal to the shared axis [m].

        This is the distance that controls the mutual inductance of two
        parallel conductors; requires parallel segments.
        """
        if not self.is_parallel(other):
            raise ValueError("transverse_distance requires parallel segments")
        axis = self.direction.axis
        a, b = self.center, other.center
        deltas = [a[i] - b[i] for i in range(3) if i != axis]
        return math.hypot(*deltas)

    def gap(self, other: "Segment") -> float:
        """Minimum face-to-face distance between the two bounding boxes [m].

        Zero when the boxes touch or overlap.  Used by capacitance models
        (adjacent-line coupling) and by halo/shell sparsification rules.
        """
        total = 0.0
        for axis in range(3):
            lo_a, hi_a = self.origin[axis], self.end[axis]
            lo_b, hi_b = other.origin[axis], other.end[axis]
            d = max(lo_b - hi_a, lo_a - hi_b, 0.0)
            total += d * d
        return math.sqrt(total)

    def split(self, num_pieces: int) -> list["Segment"]:
        """Split the segment into ``num_pieces`` equal-length series pieces.

        Used to refine the RLC-pi discretization of long lines.
        """
        if num_pieces < 1:
            raise ValueError(f"num_pieces must be >= 1, got {num_pieces}")
        if num_pieces == 1:
            return [self]
        piece_len = self.length / num_pieces
        axis = self.direction.axis
        pieces = []
        for i in range(num_pieces):
            origin = list(self.origin)
            origin[axis] += i * piece_len
            pieces.append(
                replace(
                    self,
                    origin=tuple(origin),
                    length=piece_len,
                    name=f"{self.name}.p{i}" if self.name else f"p{i}",
                )
            )
        return pieces

    def widthwise_strips(self, num_strips: int) -> list["Segment"]:
        """Split the segment into side-by-side strips of equal width.

        The paper notes that partial-inductance formulas "do not consider
        skin effect, hence very wide conductors must be split into narrower
        lines before computing inductance"; this performs that split.
        """
        if num_strips < 1:
            raise ValueError(f"num_strips must be >= 1, got {num_strips}")
        if num_strips == 1:
            return [self]
        strip_width = self.width / num_strips
        axis = self.direction.axis
        # Width lies along: y for X-segments, x for Y-segments, x for Z.
        width_axis = 1 if axis == 0 else 0
        strips = []
        for i in range(num_strips):
            origin = list(self.origin)
            origin[width_axis] += i * strip_width
            strips.append(
                replace(
                    self,
                    origin=tuple(origin),
                    width=strip_width,
                    name=f"{self.name}.s{i}" if self.name else f"s{i}",
                )
            )
        return strips
