"""Layout container: nets, segments, vias, pads, and connectivity queries.

A :class:`Layout` aggregates everything the PEEC model builder needs: the
layer stack, the conductor segments of every net, the vias that connect
layers, and the pads where external supply enters the chip.  It also owns
the *node map* -- the quantization of 3-D points into electrical nodes --
which is how geometry becomes a circuit graph.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

import networkx as nx

from repro.geometry.segment import Direction, Layer, Segment

#: Quantization grid for node identification [m].  Points closer than this
#: are considered electrically identical.
NODE_GRID = 1e-10


def quantize_point(point: tuple[float, float, float]) -> tuple[int, int, int]:
    """Map a 3-D point to its integer node-grid key."""
    return tuple(int(round(c / NODE_GRID)) for c in point)


class NetKind(Enum):
    """Electrical role of a net; drives PEEC modeling decisions."""

    SIGNAL = "signal"
    POWER = "power"
    GROUND = "ground"
    SHIELD = "shield"

    @property
    def is_supply(self) -> bool:
        """True for nets that serve as current-return infrastructure."""
        return self in (NetKind.POWER, NetKind.GROUND, NetKind.SHIELD)


@dataclass(frozen=True)
class Net:
    """A named electrical net."""

    name: str
    kind: NetKind


@dataclass(frozen=True)
class Via:
    """A vertical connection between two layers.

    The paper's PEEC model treats vias as pure resistances ("Via resistances
    between adjacent metal layers"); inductance of short vias is negligible
    compared to the in-plane wiring.
    """

    net: str
    x: float
    y: float
    layer_bottom: str
    layer_top: str
    width: float
    name: str = ""


@dataclass(frozen=True)
class Pad:
    """A supply pad on the top routing layer.

    External power/ground reaches the chip through pads; each pad carries the
    package lead + bump parasitics modeled in :mod:`repro.peec.package`.
    """

    net: str
    x: float
    y: float
    name: str = ""


class Layout:
    """A complete interconnect layout.

    Args:
        layers: Metal stack, ordered bottom to top.
        name: Optional human-readable layout name.
    """

    def __init__(self, layers: list[Layer], name: str = "layout") -> None:
        if not layers:
            raise ValueError("layout requires at least one layer")
        self.name = name
        self.layers = list(layers)
        self._layer_by_name = {layer.name: layer for layer in self.layers}
        if len(self._layer_by_name) != len(self.layers):
            raise ValueError("duplicate layer names in stack")
        self.nets: dict[str, Net] = {}
        self.segments: list[Segment] = []
        self.vias: list[Via] = []
        self.pads: list[Pad] = []
        self._auto_index = 0

    # -- construction ------------------------------------------------------

    def add_net(self, name: str, kind: NetKind) -> Net:
        """Register a net; idempotent when the kind matches."""
        existing = self.nets.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"net {name!r} already registered as {existing.kind}, "
                    f"cannot re-register as {kind}"
                )
            return existing
        net = Net(name=name, kind=kind)
        self.nets[name] = net
        return net

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        try:
            return self._layer_by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown layer {name!r}; stack has {sorted(self._layer_by_name)}"
            ) from None

    def add_segment(self, segment: Segment) -> Segment:
        """Add a conductor segment, auto-naming it if unnamed."""
        if segment.net not in self.nets:
            raise ValueError(f"segment references unregistered net {segment.net!r}")
        if segment.layer not in self._layer_by_name:
            raise ValueError(f"segment references unknown layer {segment.layer!r}")
        if not segment.name:
            segment = Segment(
                net=segment.net,
                layer=segment.layer,
                direction=segment.direction,
                origin=segment.origin,
                length=segment.length,
                width=segment.width,
                thickness=segment.thickness,
                name=f"seg{self._auto_index}",
            )
        self._auto_index += 1
        self.segments.append(segment)
        return segment

    def add_wire(
        self,
        net: str,
        layer: str,
        direction: Direction,
        start: tuple[float, float],
        length: float,
        width: float,
        breakpoints: Iterable[float] = (),
        name: str = "",
    ) -> list[Segment]:
        """Add an in-plane wire, split at the given axial ``breakpoints``.

        Args:
            net: Net name (must be registered).
            layer: Layer name; the wire sits at the layer's z extent.
            direction: X or Y.
            start: (x, y) of the wire origin corner.
            length: Wire length along ``direction`` [m].
            width: Wire width [m].
            breakpoints: Absolute axial coordinates at which the wire must be
                cut so vias/taps land on segment endpoints.
            name: Base name; pieces get ``.0``, ``.1`` ... suffixes.

        Returns:
            The created segments, in axial order.
        """
        if direction == Direction.Z:
            raise ValueError("add_wire is for in-plane wires; use add_via")
        layer_obj = self.layer(layer)
        axis_start = start[direction.axis]
        axis_end = axis_start + length
        cuts = sorted(
            {axis_start, axis_end}
            | {b for b in breakpoints if axis_start < b < axis_end}
        )
        segments = []
        base = name or f"{net}_w{self._auto_index}"
        for i, (lo, hi) in enumerate(zip(cuts[:-1], cuts[1:])):
            if direction == Direction.X:
                origin = (lo, start[1], layer_obj.z_bottom)
            else:
                origin = (start[0], lo, layer_obj.z_bottom)
            segments.append(
                self.add_segment(
                    Segment(
                        net=net,
                        layer=layer,
                        direction=direction,
                        origin=origin,
                        length=hi - lo,
                        width=width,
                        thickness=layer_obj.thickness,
                        name=f"{base}.{i}",
                    )
                )
            )
        return segments

    def add_via(
        self,
        net: str,
        x: float,
        y: float,
        layer_bottom: str,
        layer_top: str,
        width: float,
        name: str = "",
    ) -> Via:
        """Add a via connecting two layers at (x, y)."""
        if net not in self.nets:
            raise ValueError(f"via references unregistered net {net!r}")
        bottom = self.layer(layer_bottom)
        top = self.layer(layer_top)
        if bottom.index >= top.index:
            raise ValueError(
                f"layer_bottom {layer_bottom!r} must be below layer_top {layer_top!r}"
            )
        via = Via(
            net=net,
            x=x,
            y=y,
            layer_bottom=layer_bottom,
            layer_top=layer_top,
            width=width,
            name=name or f"via{len(self.vias)}",
        )
        self.vias.append(via)
        return via

    def add_pad(self, net: str, x: float, y: float, name: str = "") -> Pad:
        """Add a supply pad at (x, y) on the top layer."""
        if net not in self.nets:
            raise ValueError(f"pad references unregistered net {net!r}")
        pad = Pad(net=net, x=x, y=y, name=name or f"pad{len(self.pads)}")
        self.pads.append(pad)
        return pad

    # -- queries -------------------------------------------------------------

    def segments_of(self, net: str) -> list[Segment]:
        """All segments belonging to ``net``."""
        return [s for s in self.segments if s.net == net]

    def supply_segments(self) -> list[Segment]:
        """Segments of power/ground/shield nets."""
        return [s for s in self.segments if self.nets[s.net].kind.is_supply]

    def signal_segments(self) -> list[Segment]:
        """Segments of signal nets."""
        return [s for s in self.segments if self.nets[s.net].kind == NetKind.SIGNAL]

    def bounding_box(self) -> tuple[tuple[float, float, float], tuple[float, float, float]]:
        """Axis-aligned bounding box over all segments."""
        if not self.segments:
            raise ValueError("layout has no segments")
        los = [min(s.origin[a] for s in self.segments) for a in range(3)]
        his = [max(s.end[a] for s in self.segments) for a in range(3)]
        return (tuple(los), tuple(his))

    def parallel_pairs(self) -> Iterator[tuple[int, int]]:
        """Index pairs (i < j) of mutually parallel in-plane segments.

        These are the pairs that receive mutual-inductance entries in the
        PEEC model ("Mutual inductances between all pairs of parallel
        segments").
        """
        for i in range(len(self.segments)):
            si = self.segments[i]
            if si.direction == Direction.Z:
                continue
            for j in range(i + 1, len(self.segments)):
                sj = self.segments[j]
                if sj.direction == Direction.Z:
                    continue
                if si.is_parallel(sj):
                    yield (i, j)

    # -- connectivity ---------------------------------------------------------

    def via_endpoints(self, via: Via) -> tuple[tuple[float, float, float], tuple[float, float, float]]:
        """3-D points where a via meets its bottom and top layers."""
        bottom = self.layer(via.layer_bottom)
        top = self.layer(via.layer_top)
        return (
            (via.x, via.y, bottom.z_center),
            (via.x, via.y, top.z_center),
        )

    def connectivity_graph(self) -> nx.Graph:
        """Electrical connectivity graph: quantized points as nodes.

        Segment terminals and via endpoints become graph nodes; each segment
        and via contributes an edge.  Used to validate that generated
        layouts are internally connected per net.
        """
        graph = nx.Graph()
        for seg in self.segments:
            a, b = seg.endpoints()
            graph.add_edge(quantize_point(a), quantize_point(b),
                           kind="segment", name=seg.name, net=seg.net)
        for via in self.vias:
            a, b = self.via_endpoints(via)
            graph.add_edge(quantize_point(a), quantize_point(b),
                           kind="via", name=via.name, net=via.net)
        return graph

    def net_is_connected(self, net: str) -> bool:
        """True when all segments/vias of ``net`` form one connected piece."""
        graph = nx.Graph()
        for seg in self.segments_of(net):
            a, b = seg.endpoints()
            graph.add_edge(quantize_point(a), quantize_point(b))
        for via in self.vias:
            if via.net == net:
                a, b = self.via_endpoints(via)
                graph.add_edge(quantize_point(a), quantize_point(b))
        if graph.number_of_nodes() == 0:
            return False
        return nx.is_connected(graph)

    def find_overlaps(self, net: str | None = None) -> list[tuple[str, str]]:
        """Pairs of segments from *different* nets whose bodies overlap.

        Physical overlap between distinct nets is a layout bug (a short in
        real silicon, and a source of pathological extraction values
        here).  ``net`` restricts the check to pairs involving that net.

        Returns:
            (segment name, segment name) pairs, empty when clean.
        """
        out: list[tuple[str, str]] = []
        segs = self.segments
        for i in range(len(segs)):
            a = segs[i]
            if net is not None and a.net != net:
                continue
            for j in range(len(segs)):
                if j <= i and (net is None or segs[j].net == net):
                    continue
                b = segs[j]
                if a.net == b.net:
                    continue
                if all(
                    a.origin[axis] < b.end[axis] - 1e-12
                    and b.origin[axis] < a.end[axis] - 1e-12
                    for axis in range(3)
                ):
                    out.append((a.name, b.name))
        return out

    def validate(self) -> list[str]:
        """Check structural invariants; returns a list of problem strings.

        An empty list means the layout is well-formed: every via lands on
        wire metal of its own net at both ends, every pad has metal under
        it, and every multi-segment net is connected.
        """
        problems: list[str] = []
        terminal_nets: dict[tuple[int, int, int], set[str]] = defaultdict(set)
        for seg in self.segments:
            for point in seg.endpoints():
                terminal_nets[quantize_point(point)].add(seg.net)
        for via in self.vias:
            for point in self.via_endpoints(via):
                key = quantize_point(point)
                if via.net not in terminal_nets.get(key, set()):
                    problems.append(
                        f"via {via.name} ({via.net}) endpoint {point} does not "
                        f"land on a segment terminal of its net"
                    )
        # Pads must sit on a segment terminal of their net (any layer; the
        # package model attaches wherever supply metal tops out).
        terminal_xy: dict[tuple[int, int], set[str]] = defaultdict(set)
        for seg in self.segments:
            for point in seg.endpoints():
                qx, qy, _ = quantize_point(point)
                terminal_xy[(qx, qy)].add(seg.net)
        for pad in self.pads:
            qx, qy, _ = quantize_point((pad.x, pad.y, 0.0))
            if pad.net not in terminal_xy.get((qx, qy), set()):
                problems.append(
                    f"pad {pad.name} ({pad.net}) at ({pad.x}, {pad.y}) does not "
                    f"coincide with a segment terminal of its net"
                )
        for net in self.nets:
            count = len(self.segments_of(net))
            if count > 1 and not self.net_is_connected(net):
                problems.append(f"net {net!r} is not connected ({count} segments)")
        return problems

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Composition counts used by the Figure-2 style model report."""
        by_kind: dict[str, int] = defaultdict(int)
        for seg in self.segments:
            by_kind[self.nets[seg.net].kind.value] += 1
        return {
            "segments": len(self.segments),
            "vias": len(self.vias),
            "pads": len(self.pads),
            "nets": len(self.nets),
            **{f"segments_{k}": v for k, v in sorted(by_kind.items())},
        }

    def __repr__(self) -> str:
        return (
            f"Layout({self.name!r}, layers={len(self.layers)}, "
            f"nets={len(self.nets)}, segments={len(self.segments)}, "
            f"vias={len(self.vias)}, pads={len(self.pads)})"
        )
