"""Design techniques for minimizing inductive effects (paper Section 7).

One module per technique the paper catalogs:

* :mod:`~repro.design.shielding` -- ground shields beside a victim
  (Figure 5).
* :mod:`~repro.design.ground_plane` -- dedicated planes above/below
  (Figure 6), including the frequency crossover the paper sketches.
* :mod:`~repro.design.interdigitate` -- splitting wide wires into fingers
  with interleaved shields (Figure 7).
* :mod:`~repro.design.staggered` -- staggered inverter patterns
  (Figure 8).
* :mod:`~repro.design.twisted_bundle` -- twisted-bundle routing
  (Figure 9).
* :mod:`~repro.design.sino` -- simultaneous shield insertion and net
  ordering (ref [21]), greedy and simulated-annealing solvers for the
  NP-hard formulation.
"""

from repro.design.shielding import ShieldingResult, shielding_study
from repro.design.ground_plane import GroundPlaneResult, ground_plane_study
from repro.design.interdigitate import InterdigitationResult, interdigitation_study
from repro.design.staggered import StaggeredResult, staggered_study
from repro.design.twisted_bundle import BundleResult, twisted_bundle_study
from repro.design.sino import (
    SINOProblem,
    SINOSolution,
    anneal_sino,
    greedy_sino,
    random_problem,
)
from repro.design.sino_layout import (
    ChannelNoiseResult,
    measure_channel_noise,
    solution_to_layout,
)

__all__ = [
    "ShieldingResult",
    "shielding_study",
    "GroundPlaneResult",
    "ground_plane_study",
    "InterdigitationResult",
    "interdigitation_study",
    "StaggeredResult",
    "staggered_study",
    "BundleResult",
    "twisted_bundle_study",
    "SINOProblem",
    "SINOSolution",
    "greedy_sino",
    "anneal_sino",
    "random_problem",
    "ChannelNoiseResult",
    "measure_channel_noise",
    "solution_to_layout",
]
