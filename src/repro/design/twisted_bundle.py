"""Twisted-bundle layout study (paper Figure 9, ref [23]).

"A twisted-bundle layout structure for minimizing inductive coupling
noise ... the routing of nets is reordered in each of these regions ...
to create complementary and opposite current loops in the twisted bundle
layout structure, such that the magnetic fluxes arising from any signal
net within a twisted group cancel each other in the current loop of a net
of interest."

The study models the mechanism at its cleanest: the bundle consists of
signal/return *pairs* (each net routes with its complementary return, as
in the twisted-bundle structure).  An aggressor pair carries a fast
differential edge; the quiet victim pair's differential pickup is
measured at its receiver.  In the parallel bundle the victim loop has a
fixed orientation relative to the aggressor loop, so flux accumulates
along the whole run; in the twisted bundle both pairs cross over every
region, the mutual flux alternates sign region by region, and the coupled
noise largely cancels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import peak_noise
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.geometry.structures import build_parallel_bundle, build_twisted_bundle
from repro.peec.model import PEECOptions, build_peec_model


@dataclass(frozen=True)
class BundleResult:
    """Victim pickup in one bundle style.

    Attributes:
        style: ``"parallel"`` or ``"twisted"``.
        victim_peak_noise: Peak differential voltage across the victim
            pair's receiver [V].
        num_segments: Layout segment count (twisting costs jog/crossover
            metal).
    """

    style: str
    victim_peak_noise: float
    num_segments: int


def twisted_bundle_study(
    num_regions: int = 8,
    length: float = 800e-6,
    pitch: float = 4e-6,
    wire_width: float = 1e-6,
    vdd: float = 1.2,
    rise: float = 30e-12,
    driver_resistance: float = 50.0,
    load_capacitance: float = 10e-15,
    t_stop: float = 0.6e-9,
    dt: float = 1e-12,
) -> list[BundleResult]:
    """Victim-pair coupled noise: parallel vs twisted bundle (Figure 9).

    The bundle holds two signal/return pairs: tracks (0, 1) are the quiet
    victim pair, tracks (2, 3) the aggressor pair.  The aggressor is
    driven differentially (its return carries the full return current, the
    configuration the twisted-bundle analysis assumes); the victim pair is
    terminated at the near end and observed differentially at the far end.

    Returns:
        One result per style.  Expectation: the twisted bundle's
        alternating mutual flux cancels most of the victim pickup.
    """
    results = []
    for style in ("parallel", "twisted"):
        if style == "parallel":
            layout, ports = build_parallel_bundle(
                num_nets=4, num_regions=num_regions, length=length,
                wire_width=wire_width, pitch=pitch,
            )
        else:
            # Twist the victim pair against a straight aggressor pair:
            # neighbouring groups with different twist phase is what makes
            # the mutual flux alternate (both pairs twisting in lockstep
            # would keep their relative orientation constant).
            layout, ports = build_twisted_bundle(
                num_nets=4, num_regions=num_regions, length=length,
                wire_width=wire_width, pitch=pitch, twist_pairs=(0,),
            )
        model = build_peec_model(layout, PEECOptions(max_segment_length=250e-6))
        circuit = model.circuit

        v_sig_in = model.node_at(ports["n0:in"])
        v_ret_in = model.node_at(ports["n1:in"])
        v_sig_out = model.node_at(ports["n0:out"])
        v_ret_out = model.node_at(ports["n1:out"])
        a_sig_in = model.node_at(ports["n2:in"])
        a_ret_in = model.node_at(ports["n3:in"])
        a_sig_out = model.node_at(ports["n2:out"])
        a_ret_out = model.node_at(ports["n3:out"])

        # Aggressor pair: differential drive, far end closed through the
        # load so the return conductor carries the loop current back.
        circuit.add_vsource("Va", "src", a_ret_in, Ramp(0.0, vdd, 10e-12, rise))
        circuit.add_resistor("Ra", "src", a_sig_in, driver_resistance)
        circuit.add_resistor("Ra_term", a_sig_out, a_ret_out,
                             driver_resistance)
        circuit.add_capacitor("Ca_load", a_sig_out, a_ret_out,
                              load_capacitance)
        # Reference the aggressor return to ground at the source.
        circuit.add_resistor("Ra_gnd", a_ret_in, "0", 0.1)

        # Victim pair: quiet, terminated near, observed differentially far.
        circuit.add_resistor("Rv_near", v_sig_in, v_ret_in, driver_resistance)
        circuit.add_resistor("Rv_far", v_sig_out, v_ret_out, 1e4)
        circuit.add_capacitor("Cv_load", v_sig_out, v_ret_out,
                              load_capacitance)
        circuit.add_resistor("Rv_gnd", v_ret_in, "0", 0.1)

        # Edge grounds stay as the global reference.
        for end in ("in", "out"):
            gnd_node = model.node_at(ports[f"gnd:{end}"])
            circuit.add_resistor(f"Rg_{end}", gnd_node, "0", 0.1)

        res = transient_analysis(
            circuit, t_stop, dt, record=[v_sig_out, v_ret_out]
        )
        differential = res.voltage(v_sig_out) - res.voltage(v_ret_out)
        results.append(
            BundleResult(
                style=style,
                victim_peak_noise=peak_noise(differential, 0.0),
                num_segments=len(layout.segments),
            )
        )
    return results
