"""Dedicated ground-plane study (paper Figure 6).

"Dedicated ground planes or meshes in the layers above and below the
signal line can be used to reduce inductance.  Although they do not
significantly lower the inductive effect at low frequencies, since
resistance dominates and currents take wide return paths, at high
frequencies, the ground planes provide excellent return paths for the
signal current, thus reducing inductive behavior."

The study sweeps L(f) for three configurations -- distant side returns
only, coplanar shields, and dedicated planes -- reproducing the L-vs-
frequency inset of Figure 6 (planes beat shields at high frequency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.structures import build_ground_plane, build_shielded_line
from repro.loop.extractor import LoopPort, extract_loop_impedance


@dataclass
class GroundPlaneResult:
    """L(f) sweep of one return-path configuration.

    Attributes:
        label: Configuration name.
        frequencies: Sweep frequencies [Hz].
        inductance: Loop inductance L(f) [H].
        resistance: Loop resistance R(f) [ohm].
    """

    label: str
    frequencies: np.ndarray
    inductance: np.ndarray
    resistance: np.ndarray


def _sweep(layout, ports, frequencies) -> tuple[np.ndarray, np.ndarray]:
    port = LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )
    res = extract_loop_impedance(
        layout, port, frequencies, max_segment_length=300e-6
    )
    return res.inductance, res.resistance


def ground_plane_study(
    frequencies=None,
    length: float = 1000e-6,
    signal_width: float = 2e-6,
    plane_width: float = 24e-6,
    plane_strips: int = 5,
) -> list[GroundPlaneResult]:
    """L(f) for baseline / shields / ground planes (Figure 6's inset).

    Returns:
        One result per configuration, labels ``"baseline"``,
        ``"with shields"``, ``"with ground planes"``.
    """
    if frequencies is None:
        frequencies = np.logspace(8, 10.7, 9)
    freqs = np.asarray(list(frequencies), dtype=float)
    results = []

    layout, ports = build_shielded_line(
        length=length, signal_width=signal_width, with_shields=False,
        outer_pitch=25e-6,
    )
    l, r = _sweep(layout, ports, freqs)
    results.append(GroundPlaneResult("baseline", freqs, l, r))

    layout, ports = build_shielded_line(
        length=length, signal_width=signal_width, with_shields=True,
        shield_spacing=2e-6, outer_pitch=25e-6,
    )
    l, r = _sweep(layout, ports, freqs)
    results.append(GroundPlaneResult("with shields", freqs, l, r))

    layout, ports = build_ground_plane(
        length=length, signal_width=signal_width, plane_width=plane_width,
        plane_strips=plane_strips, side_returns=True, side_pitch=25e-6,
    )
    l, r = _sweep(layout, ports, freqs)
    results.append(GroundPlaneResult("with ground planes", freqs, l, r))
    return results
