"""Inter-digitated wire study (paper Figure 7).

"Wider wires can be split into multiple thinner wires with shields in
between.  Such inter-digitizing reduces self-inductance, increases
resistance and capacitance.  However, it increases the amount of
metallization used for the interconnect."

The footprint is held constant: splitting a wire of width W into n
fingers inserts (n-1) shields *within the same routing span*, so the
signal copper shrinks to W - (n-1) * shield_width -- that is where the
resistance increase comes from.  The study reports loop inductance
(down), signal DC resistance (up), signal capacitance (up: more perimeter
and coupling to the interleaved shields), and total metallization
including shields (up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.ac import ac_impedance
from repro.circuit.netlist import Circuit
from repro.extraction.capacitance import CapacitanceModel
from repro.extraction.resistance import segment_resistance
from repro.geometry.layout import NetKind, quantize_point
from repro.geometry.structures import build_interdigitated_wire
from repro.loop.extractor import LoopPort, extract_loop_impedance


@dataclass(frozen=True)
class InterdigitationResult:
    """Metrics of one finger-count configuration.

    Attributes:
        num_fingers: Signal finger count (1 = solid-wire baseline).
        frequency: Loop-extraction frequency [Hz].
        loop_inductance: Loop L [H].
        signal_resistance: DC resistance of the signal wire alone [ohm].
        total_capacitance: Signal-net ground + coupling capacitance [F].
        metal_area: Total metallization (signal + shields) [m^2].
    """

    num_fingers: int
    frequency: float
    loop_inductance: float
    signal_resistance: float
    total_capacitance: float
    metal_area: float


def _signal_capacitance(layout, cap_model: CapacitanceModel) -> float:
    """Ground + coupling capacitance attributed to the signal net [F]."""
    total = 0.0
    for seg in layout.segments:
        if layout.nets[seg.net].kind == NetKind.SIGNAL:
            total += cap_model.segment_ground_capacitance(seg, layout)
    for i, j, c in cap_model.coupling_pairs(layout):
        kinds = (
            layout.nets[layout.segments[i].net].kind,
            layout.nets[layout.segments[j].net].kind,
        )
        if NetKind.SIGNAL in kinds:
            total += c
    return total


def _signal_dc_resistance(layout, ports) -> float:
    """DC resistance of the signal net from driver to receiver [ohm]."""
    circuit = Circuit("rsig")
    nodes: dict = {}

    def node(point) -> str:
        key = quantize_point(point)
        return nodes.setdefault(key, f"n{len(nodes)}")

    layer_of = {layer.name: layer for layer in layout.layers}
    for k, seg in enumerate(layout.segments):
        if layout.nets[seg.net].kind != NetKind.SIGNAL:
            continue
        a, b = seg.endpoints()
        circuit.add_resistor(
            f"r{k}", node(a), node(b), segment_resistance(seg, layer_of[seg.layer])
        )
    drv = ports["driver"]
    rcv = ports["receiver"]
    layer = layout.layer(drv.layer)
    n_drv = nodes[quantize_point((drv.x, drv.y, layer.z_center))]
    n_rcv = nodes[quantize_point((rcv.x, rcv.y, layer.z_center))]
    z = ac_impedance(circuit, [0.0], (n_drv, n_rcv), gmin=1e-12)
    return float(z[0].real)


def interdigitation_study(
    finger_counts=(1, 2, 4, 8),
    frequency: float = 2e9,
    length: float = 1000e-6,
    total_width: float = 12e-6,
    shield_width: float = 1e-6,
) -> list[InterdigitationResult]:
    """Sweep the finger count of a wide wire at constant footprint.

    Args:
        finger_counts: Finger counts to evaluate; 1 is the solid baseline.
        frequency: Loop-extraction frequency [Hz].
        length: Wire length [m].
        total_width: Total routing footprint shared by fingers and the
            interleaved shields [m].
        shield_width: Width of each interleaved shield [m].

    Returns:
        One result per finger count (Figure-7 trends: L down, R up, C up,
        metal up).
    """
    cap_model = CapacitanceModel()
    results = []
    for n in finger_counts:
        signal_copper = total_width - (n - 1) * shield_width
        if signal_copper <= 0:
            raise ValueError(
                f"{n} fingers with {shield_width:.2e} shields exceed the "
                f"{total_width:.2e} footprint"
            )
        layout, ports = build_interdigitated_wire(
            length=length,
            total_signal_width=signal_copper,
            num_fingers=n,
            shield_width=shield_width,
        )
        port = LoopPort(
            signal=ports["driver"],
            reference=ports["gnd_driver"],
            short_signal=ports["receiver"],
            short_reference=ports["gnd_receiver"],
        )
        res = extract_loop_impedance(
            layout, port, [frequency], max_segment_length=300e-6
        )
        area = sum(seg.length * seg.width for seg in layout.segments)
        results.append(
            InterdigitationResult(
                num_fingers=n,
                frequency=frequency,
                loop_inductance=float(res.inductance[0]),
                signal_resistance=_signal_dc_resistance(layout, ports),
                total_capacitance=_signal_capacitance(layout, cap_model),
                metal_area=area,
            )
        )
    return results
