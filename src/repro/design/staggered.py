"""Staggered inverter pattern study (paper Figure 8).

"By using patterns of staggered inverters, the coupling capacitance and
inductance effects can be reduced.  The length of the overlapping portion
between adjacent wires is reduced ... Also, the signal polarities
alternate with each inverter, and hence the impact of the coupling tends
to cancel out."

The study models the repeated-bus situation the pattern comes from: a
victim wire with keepers at both ends and its receiver (next repeater
input) at mid-span, beside an aggressor that is repeated at mid-span.  In
the *non-staggered* pattern the aggressor's two halves switch with the
same polarity as seen by the victim, and their coupled noise accumulates
at the victim receiver.  In the *staggered* pattern the aggressor's
repeater is an inverter offset from the victim's, so the polarity seen by
the victim alternates between the halves and the two coupled-noise
contributions cancel.

Note the configuration matters: at an unterminated victim *endpoint*,
near-end and far-end crosstalk of the two halves already have opposite
signs, and polarity alternation can hurt rather than help -- which is why
the paper pairs this technique with repeated (buffered) buses, where every
victim receiver sits between symmetric wire halves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import peak_noise
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.geometry.clocktree import TapPoint
from repro.geometry.layout import Layout, NetKind
from repro.geometry.segment import Direction, default_layer_stack
from repro.peec.model import PEECOptions, build_peec_model


@dataclass(frozen=True)
class StaggeredResult:
    """Victim noise for one repeater pattern.

    Attributes:
        pattern: ``"non-staggered"`` or ``"staggered"``.
        victim_peak_noise: Peak deviation from quiet at the victim's
            mid-span receiver [V].
    """

    pattern: str
    victim_peak_noise: float


def _build_pair_layout(
    length: float, pitch: float, wire_width: float, layer_name: str
) -> Layout:
    """Victim (full length) beside a two-half aggressor, grounds outside."""
    layout = Layout(default_layer_stack(), name="staggered_pair")
    layout.add_net("victim", NetKind.SIGNAL)
    layout.add_net("agg_a", NetKind.SIGNAL)
    layout.add_net("agg_b", NetKind.SIGNAL)
    layout.add_net("GND", NetKind.GROUND)
    half = length / 2.0
    layout.add_wire("victim", layer_name, Direction.X,
                    (0.0, -wire_width / 2), length, wire_width,
                    breakpoints=[half], name="victim")
    layout.add_wire("agg_a", layer_name, Direction.X,
                    (0.0, pitch - wire_width / 2), half, wire_width,
                    name="agg_a")
    layout.add_wire("agg_b", layer_name, Direction.X,
                    (half, pitch - wire_width / 2), half, wire_width,
                    name="agg_b")
    for y in (-pitch, 2 * pitch):
        layout.add_wire("GND", layer_name, Direction.X,
                        (0.0, y - wire_width / 2), length, wire_width,
                        name=f"gnd_{y:+.0e}")
    return layout


def staggered_study(
    length: float = 800e-6,
    pitch: float = 3e-6,
    wire_width: float = 1e-6,
    layer_name: str = "M6",
    vdd: float = 1.2,
    rise: float = 40e-12,
    driver_resistance: float = 60.0,
    load_capacitance: float = 15e-15,
    t_stop: float = 0.8e-9,
    dt: float = 1e-12,
) -> list[StaggeredResult]:
    """Compare victim noise for non-staggered vs staggered aggressors.

    The victim is held by keepers at both ends with its receiver at
    mid-span; the aggressor's two repeated halves are driven from the
    outer ends.  Only the second half's polarity differs between the two
    patterns.

    Returns:
        Results for both patterns.  Figure-8 expectation: the staggered
        pattern's coupled contributions cancel at the victim receiver,
        dramatically reducing noise.
    """
    results = []
    for pattern, rising_b in (("non-staggered", True), ("staggered", False)):
        layout = _build_pair_layout(length, pitch, wire_width, layer_name)
        model = build_peec_model(
            layout, PEECOptions(max_segment_length=200e-6)
        )
        circuit = model.circuit

        def tap(net: str, x: float, y: float) -> str:
            return model.node_at(TapPoint(net, x, y, layer_name))

        half = length / 2.0
        # Victim: keepers at both ends, receiver load at mid-span.
        circuit.add_resistor("Rv1", tap("victim", 0.0, 0.0), "0",
                             driver_resistance)
        circuit.add_resistor("Rv2", tap("victim", length, 0.0), "0",
                             driver_resistance)
        victim_rcv = tap("victim", half, 0.0)
        circuit.add_capacitor("Cv_load", victim_rcv, "0", load_capacitance)

        # Aggressor halves driven from the outer ends (repeater at the
        # victim receiver's x); polarity of the second half is the knob.
        ramp_a = Ramp(0.0, vdd, 10e-12, rise)
        ramp_b = ramp_a if rising_b else Ramp(vdd, 0.0, 10e-12, rise)
        circuit.add_vsource("Va", "src_a", "0", ramp_a)
        circuit.add_resistor("Ra", "src_a", tap("agg_a", 0.0, pitch),
                             driver_resistance)
        circuit.add_capacitor("Ca_load", tap("agg_a", half, pitch), "0",
                              load_capacitance)
        circuit.add_vsource("Vb", "src_b", "0", ramp_b)
        circuit.add_resistor("Rb", "src_b", tap("agg_b", length, pitch),
                             driver_resistance)
        circuit.add_capacitor("Cb_load", tap("agg_b", half, pitch), "0",
                              load_capacitance)

        # Ground returns terminate resistively at both ends.
        for k, x in enumerate((0.0, length)):
            circuit.add_resistor(f"Rg{k}", tap("GND", x, -pitch), "0", 0.1)
            circuit.add_resistor(f"Rg{k+2}", tap("GND", x, 2 * pitch), "0", 0.1)

        res = transient_analysis(circuit, t_stop, dt, record=[victim_rcv])
        noise = peak_noise(res.voltage(victim_rcv), 0.0)
        results.append(StaggeredResult(pattern=pattern, victim_peak_noise=noise))
    return results
