"""Simultaneous shield insertion and net ordering (SINO; paper ref [21]).

"Coupling noise can be reduced by simultaneously inserting shields and
ordering nets, subject to constraints on area, and bounds on inductive and
capacitive noise.  This optimization problem was found to be NP-hard and
hence was solved by algorithms based on greedy approaches or simulated
annealing."

Model (following He & Lepak's formulation, simplified to its essentials):

* ``n`` signal nets are placed left-to-right in a channel; shield (ground)
  tracks may be inserted between them.
* *Capacitive* noise on a net comes only from its immediate non-shield
  neighbours: any conductor (shield included) screens capacitive coupling.
* *Inductive* noise comes from every net in the same *halo block* -- the
  run of nets between the two nearest shields (or channel edges, which
  carry ground returns) -- with strength decaying as ``1 / distance``
  (flux area grows with loop separation).  Shields reset the halo, which
  is exactly the return-limited assumption of the halo sparsification
  rule.
* Objective: minimize channel area (tracks used) subject to each net's
  capacitive and inductive noise bounds.

Both the greedy constructor and the simulated-annealing refiner are
implemented; the annealer typically saves shields over greedy at equal
feasibility, the trade the paper alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class NetSpec:
    """One signal net's noise character.

    Attributes:
        name: Net name.
        aggressiveness: How much noise this net injects (relative units;
            fast wide drivers are large).
        cap_bound: Maximum tolerable capacitive noise.
        ind_bound: Maximum tolerable inductive noise.
    """

    name: str
    aggressiveness: float
    cap_bound: float
    ind_bound: float


@dataclass
class SINOProblem:
    """A SINO instance: the nets and the per-slot coupling scale factors.

    Attributes:
        nets: Signal nets to place.
        cap_unit: Capacitive noise injected into an immediate neighbour
            per unit aggressiveness.
        ind_unit: Inductive noise injected at distance 1 per unit
            aggressiveness (decays as 1/d within a halo block).
    """

    nets: list[NetSpec]
    cap_unit: float = 1.0
    ind_unit: float = 0.6

    def __post_init__(self) -> None:
        if not self.nets:
            raise ValueError("SINO problem needs at least one net")
        names = [n.name for n in self.nets]
        if len(set(names)) != len(names):
            raise ValueError("duplicate net names")


@dataclass
class SINOSolution:
    """A placement: net order plus shield positions.

    Attributes:
        order: Net names, left to right.
        shields_after: Slot indices k such that a shield sits between
            position k and k+1 (and -1 / len-1 edges are implicit ground).
    """

    order: list[str]
    shields_after: set[int] = field(default_factory=set)

    @property
    def area(self) -> int:
        """Channel tracks used (nets + shields)."""
        return len(self.order) + len(self.shields_after)


def _noise(problem: SINOProblem, solution: SINOSolution) -> dict[str, tuple[float, float]]:
    """(cap noise, inductive noise) per net for a placement."""
    spec = {n.name: n for n in problem.nets}
    order = solution.order
    n = len(order)
    # Halo blocks: runs of net positions not separated by shields.
    blocks: list[list[int]] = [[]]
    for k in range(n):
        blocks[-1].append(k)
        if k in solution.shields_after:
            blocks.append([])
    blocks = [b for b in blocks if b]
    block_of = {}
    for b, members in enumerate(blocks):
        for k in members:
            block_of[k] = b
    noise: dict[str, tuple[float, float]] = {}
    for k, name in enumerate(order):
        cap = 0.0
        for nb in (k - 1, k + 1):
            # Immediate neighbour with no shield between (same halo block).
            if 0 <= nb < n and block_of[nb] == block_of[k]:
                cap += problem.cap_unit * spec[order[nb]].aggressiveness
        ind = 0.0
        for other in blocks[block_of[k]]:
            if other == k:
                continue
            ind += (
                problem.ind_unit
                * spec[order[other]].aggressiveness
                / abs(other - k)
            )
        noise[name] = (cap, ind)
    return noise


def violations(problem: SINOProblem, solution: SINOSolution) -> float:
    """Total constraint violation (0 when feasible)."""
    spec = {n.name: n for n in problem.nets}
    total = 0.0
    for name, (cap, ind) in _noise(problem, solution).items():
        total += max(0.0, cap - spec[name].cap_bound)
        total += max(0.0, ind - spec[name].ind_bound)
    return total


def is_feasible(problem: SINOProblem, solution: SINOSolution) -> bool:
    """True when every net meets both noise bounds."""
    return violations(problem, solution) == 0.0


def greedy_sino(problem: SINOProblem) -> SINOSolution:
    """Greedy construction: order by aggressiveness, insert shields on demand.

    Nets are interleaved aggressive/quiet (an aggressive net between two
    quiet ones injects into tolerant neighbours), then a left-to-right scan
    inserts a shield after any position whose net still violates a bound.
    Always returns a feasible solution (a fully shielded channel is
    feasible whenever each net meets its bounds in isolation).
    """
    by_aggr = sorted(problem.nets, key=lambda net: -net.aggressiveness)
    # Interleave: loudest, quietest, second-loudest, ...
    order: list[str] = []
    lo, hi = 0, len(by_aggr) - 1
    toggle = True
    while lo <= hi:
        order.append(by_aggr[lo].name if toggle else by_aggr[hi].name)
        if toggle:
            lo += 1
        else:
            hi -= 1
        toggle = not toggle
    solution = SINOSolution(order=order)
    for k in range(len(order) - 1):
        if violations(problem, solution) == 0.0:
            break
        trial = SINOSolution(order=order, shields_after=set(solution.shields_after) | {k})
        if violations(problem, trial) < violations(problem, solution):
            solution = trial
    # Final pass: force feasibility.
    k = 0
    while not is_feasible(problem, solution) and k < len(order) - 1:
        solution = SINOSolution(
            order=order, shields_after=set(solution.shields_after) | {k}
        )
        k += 1
    return solution


def anneal_sino(
    problem: SINOProblem,
    iterations: int = 4000,
    seed: int = 2001,
    start: SINOSolution | None = None,
    penalty: float = 50.0,
    t_start: float = 3.0,
    t_end: float = 0.01,
) -> SINOSolution:
    """Simulated-annealing refinement of a SINO placement.

    Moves: swap two nets, toggle one shield slot.  Cost = area +
    ``penalty`` * violations, so infeasibility is priced but explorable at
    high temperature.

    Returns:
        The best feasible solution seen (falls back to best-cost overall
        if annealing never reached feasibility -- callers should check
        :func:`is_feasible`).
    """
    rng = np.random.default_rng(seed)
    current = start or greedy_sino(problem)
    current = SINOSolution(list(current.order), set(current.shields_after))

    def cost(sol: SINOSolution) -> float:
        return sol.area + penalty * violations(problem, sol)

    cur_cost = cost(current)
    best = current
    best_cost = cur_cost
    best_feasible: SINOSolution | None = (
        current if is_feasible(problem, current) else None
    )
    n = len(current.order)
    for it in range(iterations):
        temp = t_start * (t_end / t_start) ** (it / max(iterations - 1, 1))
        trial = SINOSolution(list(current.order), set(current.shields_after))
        if n >= 2 and rng.random() < 0.5:
            i, j = rng.choice(n, size=2, replace=False)
            trial.order[i], trial.order[j] = trial.order[j], trial.order[i]
        else:
            slot = int(rng.integers(max(n - 1, 1)))
            if slot in trial.shields_after:
                trial.shields_after.discard(slot)
            else:
                trial.shields_after.add(slot)
        t_cost = cost(trial)
        if t_cost <= cur_cost or rng.random() < np.exp((cur_cost - t_cost) / temp):
            current, cur_cost = trial, t_cost
            if cur_cost < best_cost:
                best, best_cost = current, cur_cost
            if is_feasible(problem, current) and (
                best_feasible is None or current.area < best_feasible.area
            ):
                best_feasible = SINOSolution(
                    list(current.order), set(current.shields_after)
                )
    return best_feasible if best_feasible is not None else best


def random_problem(
    num_nets: int = 8,
    seed: int = 7,
    tight_fraction: float = 0.4,
) -> SINOProblem:
    """Generate a reproducible SINO instance for benchmarks and tests.

    A ``tight_fraction`` of the nets are sensitive (tight bounds, quiet
    drivers); the rest are aggressive with loose bounds -- the mix that
    makes ordering matter.
    """
    rng = np.random.default_rng(seed)
    nets = []
    for k in range(num_nets):
        sensitive = rng.random() < tight_fraction
        if sensitive:
            nets.append(
                NetSpec(
                    name=f"net{k}",
                    aggressiveness=float(rng.uniform(0.2, 0.6)),
                    cap_bound=float(rng.uniform(0.5, 0.9)),
                    ind_bound=float(rng.uniform(0.4, 0.8)),
                )
            )
        else:
            nets.append(
                NetSpec(
                    name=f"net{k}",
                    aggressiveness=float(rng.uniform(0.8, 1.5)),
                    cap_bound=float(rng.uniform(1.2, 2.5)),
                    ind_bound=float(rng.uniform(1.0, 2.2)),
                )
            )
    return SINOProblem(nets=nets)
