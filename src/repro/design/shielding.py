"""Shielding study (paper Figure 5).

"Loop inductance can be reduced by sandwiching a signal line between
ground return lines or guard traces.  This forces the high-frequency
current return paths to be close to the signal line, thus minimizing
inductance."  The study extracts loop R/L with and without coplanar
shields at a range of shield spacings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.structures import build_shielded_line
from repro.loop.extractor import LoopPort, extract_loop_impedance


@dataclass(frozen=True)
class ShieldingResult:
    """Loop parameters of one shielding configuration.

    Attributes:
        shield_spacing: Edge spacing between signal and shield [m];
            ``None`` for the unshielded baseline.
        frequency: Extraction frequency [Hz].
        loop_resistance: R at that frequency [ohm].
        loop_inductance: L at that frequency [H].
    """

    shield_spacing: float | None
    frequency: float
    loop_resistance: float
    loop_inductance: float


def _extract(layout, ports, frequency: float):
    port = LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )
    res = extract_loop_impedance(
        layout, port, [frequency], max_segment_length=300e-6
    )
    return float(res.resistance[0]), float(res.inductance[0])


def shielding_study(
    shield_spacings=(1e-6, 2e-6, 4e-6, 8e-6),
    frequency: float = 2e9,
    length: float = 1000e-6,
    signal_width: float = 2e-6,
    shield_width: float = 1.5e-6,
    outer_pitch: float = 25e-6,
) -> list[ShieldingResult]:
    """Loop R/L vs shield spacing, plus the unshielded baseline.

    Returns:
        Results ordered baseline-first then increasing spacing.  The
        Figure-5 expectation: any shield cuts loop L sharply relative to
        the distant-return baseline, and tighter spacing cuts it more.
    """
    results = []
    layout, ports = build_shielded_line(
        length=length,
        signal_width=signal_width,
        shield_width=shield_width,
        outer_pitch=outer_pitch,
        with_shields=False,
    )
    r, l = _extract(layout, ports, frequency)
    results.append(ShieldingResult(None, frequency, r, l))
    for spacing in shield_spacings:
        layout, ports = build_shielded_line(
            length=length,
            signal_width=signal_width,
            shield_width=shield_width,
            shield_spacing=spacing,
            outer_pitch=outer_pitch,
            with_shields=True,
        )
        r, l = _extract(layout, ports, frequency)
        results.append(ShieldingResult(spacing, frequency, r, l))
    return results
