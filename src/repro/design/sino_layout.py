"""Physical cross-validation of SINO placements.

The SINO solver (:mod:`repro.design.sino`) works on an abstract noise
model; this module closes the loop by *building* a placement as a real
routed channel -- signal tracks in the solved order, ground shields in
the solved slots, edge returns -- and measuring victim noise with the
full PEEC + transient machinery.  It is both an integration showcase and
the evidence that the solver's noise proxies point the right way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import peak_noise
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.design.sino import SINOProblem, SINOSolution
from repro.geometry.clocktree import TapPoint
from repro.geometry.layout import Layout, NetKind
from repro.geometry.segment import Direction, default_layer_stack
from repro.peec.model import PEECOptions, build_peec_model


@dataclass(frozen=True)
class ChannelNoiseResult:
    """Measured noise of a routed SINO placement.

    Attributes:
        worst_noise: Peak noise over all quiet (sensitive) nets [V].
        per_net: net name -> peak noise [V] for the quiet nets.
        tracks: Total routing tracks used (signals + shields + edges).
    """

    worst_noise: float
    per_net: dict[str, float]
    tracks: int


def solution_to_layout(
    solution: SINOSolution,
    length: float = 500e-6,
    pitch: float = 3e-6,
    wire_width: float = 1e-6,
    layer_name: str = "M6",
    ground_net: str = "GND",
) -> tuple[Layout, dict[str, TapPoint]]:
    """Route a SINO placement as a physical channel.

    Tracks run bottom-to-top in ``solution.order``; a ground shield track
    is inserted after every slot in ``solution.shields_after``; ground
    edge tracks bound the channel.

    Returns:
        (layout, taps): taps hold ``{net}:in`` / ``{net}:out`` for the
        signals and ``gnd:in`` for the ground system.
    """
    layout = Layout(default_layer_stack(), name="sino_channel")
    layout.add_net(ground_net, NetKind.GROUND)
    taps: dict[str, TapPoint] = {}

    y = 0.0
    gnd_ys = [y]
    y += pitch  # bottom edge ground at track 0
    for k, net in enumerate(solution.order):
        layout.add_net(net, NetKind.SIGNAL)
        layout.add_wire(net, layer_name, Direction.X,
                        (0.0, y - wire_width / 2), length, wire_width,
                        name=f"{net}_line")
        taps[f"{net}:in"] = TapPoint(net, 0.0, y, layer_name, f"{net}_in")
        taps[f"{net}:out"] = TapPoint(net, length, y, layer_name,
                                      f"{net}_out")
        y += pitch
        if k in solution.shields_after:
            gnd_ys.append(y)
            y += pitch
    gnd_ys.append(y)  # top edge ground

    for i, gy in enumerate(gnd_ys):
        layout.add_wire(ground_net, layer_name, Direction.X,
                        (0.0, gy - wire_width / 2), length, wire_width,
                        name=f"gnd_{i}")
    taps["gnd:in"] = TapPoint(ground_net, 0.0, gnd_ys[0], layer_name,
                              "gnd_in")
    return layout, taps


def measure_channel_noise(
    problem: SINOProblem,
    solution: SINOSolution,
    length: float = 500e-6,
    pitch: float = 3e-6,
    wire_width: float = 1e-6,
    vdd: float = 1.2,
    rise: float = 40e-12,
    base_driver_resistance: float = 120.0,
    load_capacitance: float = 10e-15,
    t_stop: float = 0.5e-9,
    dt: float = 1e-12,
    quiet_fraction_of_median: float = 0.75,
) -> ChannelNoiseResult:
    """Simulate a routed placement: aggressive nets switch, quiet nets listen.

    Nets with aggressiveness below ``quiet_fraction_of_median`` x median
    are treated as the sensitive victims (held quiet); all others switch
    simultaneously with driver strength proportional to their
    aggressiveness.  Victim noise is measured at the far (receiver) end.
    """
    spec = {n.name: n for n in problem.nets}
    median_aggr = float(np.median([n.aggressiveness for n in problem.nets]))
    quiet = {
        name for name, n in spec.items()
        if n.aggressiveness < quiet_fraction_of_median * median_aggr
    }
    if not quiet:
        # Fall back: quietest net is the victim.
        quiet = {min(spec, key=lambda n: spec[n].aggressiveness)}

    layout, taps = solution_to_layout(
        solution, length=length, pitch=pitch, wire_width=wire_width,
    )
    model = build_peec_model(layout, PEECOptions(max_segment_length=250e-6))
    circuit = model.circuit

    victims: dict[str, str] = {}
    for net in solution.order:
        n_in = model.node_at(taps[f"{net}:in"])
        n_out = model.node_at(taps[f"{net}:out"])
        circuit.add_capacitor(f"Cl_{net}", n_out, "0", load_capacitance)
        if net in quiet:
            circuit.add_resistor(f"Rd_{net}", n_in, "0",
                                 base_driver_resistance)
            victims[net] = n_out
        else:
            r_drive = base_driver_resistance / max(
                spec[net].aggressiveness, 0.1
            )
            circuit.add_vsource(f"V_{net}", f"src_{net}", "0",
                                Ramp(0.0, vdd, 10e-12, rise))
            circuit.add_resistor(f"Rd_{net}", f"src_{net}", n_in, r_drive)

    # Ground the shield/edge system at both ends of the bottom line.
    gnd_in = model.node_at(taps["gnd:in"])
    circuit.add_resistor("Rg", gnd_in, "0", 0.05)
    for node in model.nodes_of_net("GND"):
        if node != gnd_in:
            # Light DC tie for every shield line (they connect to the grid
            # in a real channel); keeps the model well-posed.
            circuit.add_resistor(f"Rg_{node}", node, "0", 1.0)

    result = transient_analysis(circuit, t_stop, dt,
                                record=list(victims.values()))
    per_net = {
        net: peak_noise(result.voltage(node), 0.0)
        for net, node in victims.items()
    }
    return ChannelNoiseResult(
        worst_noise=max(per_net.values()),
        per_net=per_net,
        tracks=solution.area + 2,  # + the two edge grounds
    )
