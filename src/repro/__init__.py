"""repro: on-chip inductance analysis and design.

A production-quality reproduction of Gala, Blaauw, Wang, Zolotov, Zhao,
*"Inductance 101: Analysis and Design Issues"* (DAC 2001): PEEC-based
detailed interconnect modeling, partial-inductance extraction, Section-4
sparsification and model-order-reduction acceleration, Section-5
loop-inductance extraction, and the Section-7 design-technique studies --
all on top of an in-package MNA circuit simulator and synthetic layout
generators.

Quick start::

    from repro import build_clock_testcase, run_peec_flow, run_loop_flow

    case = build_clock_testcase()
    rlc = run_peec_flow(case)                       # detailed PEEC (RLC)
    rc = run_peec_flow(case, include_inductance=False)
    loop = run_loop_flow(case)
    print(rlc.worst_delay, rc.worst_delay, loop.worst_delay)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.flows import (
    ClockNetTestCase,
    CurrentDecomposition,
    FlowResult,
    build_clock_testcase,
    run_current_decomposition,
    run_loop_flow,
    run_peec_flow,
)

__version__ = "1.0.0"

__all__ = [
    "ClockNetTestCase",
    "FlowResult",
    "CurrentDecomposition",
    "build_clock_testcase",
    "run_peec_flow",
    "run_loop_flow",
    "run_current_decomposition",
    "__version__",
]
