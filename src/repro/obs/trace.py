"""Nestable span tracing: *where* a run spends its time.

The Table-1 argument is quantitative -- which sparsification or
acceleration strategy wins is decided by runtime and matrix density --
but whole-run timers cannot say whether the seconds went into PEEC
assembly, the sparsifier, the solve, or the measurement sweep.  Spans
fix that: every instrumented stage wraps itself in

    with span("peec.assembly", segments=n):
        ...

and records its wall-clock duration, attributes, and any exception that
escaped.  Spans nest: the innermost open span adopts new spans as
children, so a run produces a tree whose per-stage totals reconstruct a
Table-1-style timing breakdown (``repro trace`` / ``--trace-json``).

Mechanics:

* The open-span stack lives in a :mod:`contextvars` context variable,
  which is per-thread (each thread starts from an empty context) and
  survives ``asyncio``-style context switches -- the "thread-local +
  contextvar" stack.
* ``span()`` **always** measures (callers may read ``sp.duration`` off
  the yielded object, which is how the flows report build/solve time);
  the tree is only *collected* when a :class:`Trace` is activated with
  :func:`tracing`, so un-traced runs pay one object and two
  ``perf_counter`` calls per span -- well under the 3% overhead budget
  at stage granularity.
* Process-pool workers start with no active trace; the worker body
  collects its spans under a private :class:`Trace` and ships the
  serialized tree back with its results (mirroring how
  :mod:`repro.perf.parallel` already forwards retry notes), and the
  parent grafts it under its own open span with :func:`graft_spans`.
* Exceptions mark the span ``status="error"`` with the exception text
  and re-raise; the span still closes, so a failed run yields a
  complete (leak-free) tree pointing at the stage that died.

This module is a leaf: it imports nothing from :mod:`repro`, so every
layer (extraction, sparsify, circuit, resilience, perf, CLI) can use it
without cycles.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs import profile as _profile

#: Separator used in span paths ("flow.peec/peec.assembly/...").
PATH_SEP = "/"


@dataclass
class Span:
    """One timed stage of a run.

    Attributes:
        name: Dotted stage name (``"peec.assembly"``, ``"loop.sweep"``).
        attrs: Small JSON-able attribute map (sizes, counts, flags).
        start: ``perf_counter`` timestamp at entry (process-relative).
        duration: Wall-clock seconds; None while the span is open.
        status: ``"ok"`` or ``"error"``.
        error: ``"ExcType: message"`` when an exception escaped the span.
        children: Nested spans, in entry order.
    """

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    duration: float | None = None
    status: str = "ok"
    error: str = ""
    children: list["Span"] = field(default_factory=list)

    @property
    def open(self) -> bool:
        """True while the span has not finished."""
        return self.duration is None

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for sp in self.iter_spans():
            if sp.name == name:
                return sp
        return None

    def self_seconds(self) -> float:
        """Duration minus the (finished) children's durations."""
        own = self.duration or 0.0
        return own - sum(c.duration or 0.0 for c in self.children)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation of the subtree."""
        out: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            attrs=dict(data.get("attrs", {})),
            duration=data.get("duration_s"),
            status=str(data.get("status", "ok")),
            error=str(data.get("error", "")),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    def format(self, indent: int = 0) -> str:
        """Human-readable subtree, one line per span."""
        dur = "..." if self.duration is None else f"{self.duration * 1e3:.2f} ms"
        attrs = "".join(f" {k}={v}" for k, v in self.attrs.items())
        mark = "" if self.status == "ok" else f"  !! {self.error}"
        lines = [f"{'  ' * indent}{self.name}  {dur}{attrs}{mark}"]
        lines += [c.format(indent + 1) for c in self.children]
        return "\n".join(lines)


class Trace:
    """Collector for one run's span forest.

    Attributes:
        roots: Top-level spans, in entry order.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._open = 0

    @property
    def open_spans(self) -> int:
        """Spans entered but not yet exited (0 after a clean run)."""
        return self._open

    @property
    def complete(self) -> bool:
        """True when every collected span has closed."""
        return self._open == 0 and all(
            not sp.open for root in self.roots for sp in root.iter_spans()
        )

    def iter_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.iter_spans()

    def find(self, name: str) -> Span | None:
        """First span named ``name`` anywhere in the forest."""
        for root in self.roots:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    def span_names(self) -> list[str]:
        """Every collected span name, depth-first (with duplicates)."""
        return [sp.name for sp in self.iter_spans()]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span named ``name``."""
        return sum(
            sp.duration or 0.0 for sp in self.iter_spans() if sp.name == name
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "spans": [root.to_dict() for root in self.roots],
            "open_spans": self._open,
        }

    def format(self) -> str:
        if not self.roots:
            return "(no spans collected)"
        return "\n".join(root.format() for root in self.roots)


_TRACE: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)
_STACK: contextvars.ContextVar[tuple[Span, ...]] = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)


def current_trace() -> Trace | None:
    """The active collector of this context, if any."""
    return _TRACE.get()


def current_span() -> Span | None:
    """The innermost open span of this context, if any."""
    stack = _STACK.get()
    return stack[-1] if stack else None


def current_span_path() -> str:
    """``"outer/inner"`` path of the open spans ('' outside any span)."""
    return PATH_SEP.join(sp.name for sp in _STACK.get())


@contextmanager
def tracing(trace: Trace | None = None) -> Iterator[Trace]:
    """Activate a collector for the block; yields it.

    Nested activations stack (the innermost wins); the span stack is NOT
    reset, so an outer span adopting inner-trace roots is prevented by
    giving the inner trace its own stack frame only when none is open.
    """
    trace = trace if trace is not None else Trace()
    token = _TRACE.set(trace)
    try:
        yield trace
    finally:
        _TRACE.reset(token)


@contextmanager
def detached_stack() -> Iterator[None]:
    """Run the block with an empty open-span stack.

    A ``fork()``-started pool worker inherits the parent's contextvars,
    including whatever span was open at fork time; without detaching,
    the worker's spans would silently attach to that dead copy of the
    parent span instead of the worker's own :class:`Trace` roots.
    """
    token = _STACK.set(())
    try:
        yield
    finally:
        _STACK.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span]:
    """Time a stage; yields the live :class:`Span`.

    Attaches to the innermost open span as a child, else to the active
    :class:`Trace` as a root.  Exceptions are recorded (status/error)
    and re-raised; the span always closes.
    """
    sp = Span(name=name, attrs=attrs)
    stack = _STACK.get()
    trace = _TRACE.get()
    if stack:
        stack[-1].children.append(sp)
    elif trace is not None:
        trace.roots.append(sp)
    token = _STACK.set(stack + (sp,))
    if trace is not None:
        trace._open += 1
    profiler = _profile.start(name) if not stack else None
    sp.start = time.perf_counter()
    try:
        yield sp
    except BaseException as exc:
        sp.status = "error"
        sp.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        sp.duration = time.perf_counter() - sp.start
        _STACK.reset(token)
        if trace is not None:
            trace._open -= 1
        if profiler is not None:
            _profile.finish(profiler, name)


def graft_spans(serialized: list[dict[str, Any]]) -> None:
    """Attach serialized span trees (from a pool worker) at this point.

    The trees go under the innermost open span, else under the active
    trace as roots; with neither active they are dropped -- exactly like
    span recording itself.
    """
    if not serialized:
        return
    spans = [Span.from_dict(d) for d in serialized]
    stack = _STACK.get()
    trace = _TRACE.get()
    if stack:
        stack[-1].children.extend(spans)
    elif trace is not None:
        trace.roots.extend(spans)


def export_spans(trace: Trace) -> list[dict[str, Any]]:
    """Serialize a collector's forest (the worker -> parent wire format)."""
    return [root.to_dict() for root in trace.roots]


__all__ = [
    "PATH_SEP",
    "Span",
    "Trace",
    "current_trace",
    "current_span",
    "current_span_path",
    "tracing",
    "detached_stack",
    "span",
    "graft_spans",
    "export_spans",
]
