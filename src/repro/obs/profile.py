"""Opt-in cProfile hooks for top-level spans.

``REPRO_PROFILE=1`` arms per-span profiling: every **top-level** span
(one entered with no span already open -- a whole flow, a whole sweep)
runs under its own :class:`cProfile.Profile`, and on exit the stats are
written as ``<REPRO_PROFILE_DIR>/<span name>_<seq>.pstats`` for
``snakeviz`` / ``pstats`` digestion.  Nested spans are not profiled
separately (the enclosing profile already covers them, and cProfile
instances do not nest).

Off by default because cProfile's per-call hook costs far more than the
3% tracing budget; this is the "why is this stage slow" drill-down, not
the always-on layer.
"""

from __future__ import annotations

import cProfile
import os
import re
from pathlib import Path

_SEQ = 0


def profile_enabled() -> bool:
    """True when ``REPRO_PROFILE`` is set to a truthy value."""
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1", "true", "on", "yes"
    )


def profile_dir() -> Path:
    """Output directory (``REPRO_PROFILE_DIR``, default cwd)."""
    return Path(os.environ.get("REPRO_PROFILE_DIR", "").strip() or ".")


def _stats_path(name: str) -> Path:
    global _SEQ
    _SEQ += 1
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", name)
    return profile_dir() / f"{safe}_{_SEQ:03d}.pstats"


def start(name: str) -> cProfile.Profile | None:
    """Begin profiling a top-level span; None when disabled.

    Returns None (rather than raising) if another profiler is already
    active in this process -- cProfile instances cannot nest.
    """
    if not profile_enabled():
        return None
    profiler = cProfile.Profile()
    try:
        profiler.enable()
    except ValueError:
        return None  # another profiler already owns the hook
    return profiler


def finish(profiler: cProfile.Profile, name: str) -> Path | None:
    """Stop a profiler and dump ``<name>_<seq>.pstats``; best-effort."""
    profiler.disable()
    path = _stats_path(name)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(path))
    except OSError:
        return None  # profiling must never take the run down with it
    return path


__all__ = ["profile_enabled", "profile_dir", "start", "finish"]
