"""Observability: tracing, metrics, and profiling for every flow.

Zero-dependency measurement substrate (paper Section 4's argument is
quantitative; this layer produces the numbers):

* :mod:`repro.obs.trace` -- nestable spans with wall time, attributes,
  and exception capture; worker span trees merge across the perf
  process pool.
* :mod:`repro.obs.metrics` -- process-wide counters / gauges /
  histograms with JSON and Prometheus-style export.
* :mod:`repro.obs.profile` -- opt-in (``REPRO_PROFILE=1``) cProfile
  dumps per top-level span.

Surface via ``repro trace`` and ``--trace-json`` on the CLI.
"""

from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from repro.obs.trace import (
    Span,
    Trace,
    current_span,
    current_span_path,
    current_trace,
    graft_spans,
    span,
    tracing,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "Span",
    "Trace",
    "current_span",
    "current_span_path",
    "current_trace",
    "graft_spans",
    "span",
    "tracing",
]
