"""Process-wide counters, gauges, and histograms.

Spans (:mod:`repro.obs.trace`) answer *where time went*; metrics answer
*how much work happened*: solver escalation attempts, Newton iterations,
extraction-cache hits and misses, process-pool utilization, sparsifier
drop ratios, MNA matrix density.  These are the Table-1 columns that are
not seconds.

One :class:`MetricsRegistry` (:data:`REGISTRY`) lives per process; the
module-level :func:`counter` / :func:`gauge` / :func:`histogram` helpers
create-or-fetch instruments by name.  All mutation is lock-protected, so
instrumented code can run from any thread.  Pool workers are separate
processes with their own (empty) registry; the perf layer ships each
worker's :meth:`~MetricsRegistry.export` back with its results and the
parent folds it in with :meth:`~MetricsRegistry.merge` -- counters and
histograms add, gauges last-write-wins.

``export()`` gives the JSON form (embedded in ``--trace-json`` output);
``render_prometheus()`` gives a Prometheus-style text dump for eyeballs
or scraping.
"""

from __future__ import annotations

import math
import threading
from typing import Any

_INVALID = frozenset(' "\n\t{}')


def _check_name(name: str) -> str:
    if not name or any(ch in _INVALID for ch in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically increasing count (resets only with the registry)."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (pool width, matrix density)."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Streaming summary of observed values (count/sum/min/max).

    Deliberately bucket-free: the consumers here want totals and
    extremes (worst Newton count, largest solve), not quantiles, and a
    summary merges exactly across pool workers.
    """

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Create-or-fetch instrument store with JSON/Prometheus export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(
                    _check_name(name), self._lock
                )
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(_check_name(name), self._lock)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(
                    _check_name(name), self._lock
                )
            return inst

    # -- export / merge ----------------------------------------------------

    def export(self) -> dict[str, Any]:
        """JSON-able snapshot: counters, gauges, histogram summaries."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
            }

    def merge(self, exported: dict[str, Any]) -> None:
        """Fold another registry's :meth:`export` into this one.

        Counters and histogram count/sum add; histogram min/max widen;
        gauges take the incoming value (last-write-wins).
        """
        for name, value in exported.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in exported.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, summary in exported.get("histograms", {}).items():
            hist = self.histogram(name)
            count = int(summary.get("count", 0))
            if count == 0:
                continue
            with self._lock:
                hist.count += count
                hist.total += float(summary.get("sum", 0.0))
                hist.min = min(hist.min, float(summary.get("min", math.inf)))
                hist.max = max(hist.max, float(summary.get("max", -math.inf)))

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition (names: dots become ``_``)."""

        def mangle(name: str) -> str:
            return name.replace(".", "_").replace("-", "_")

        lines: list[str] = []
        snap = self.export()
        for name, value in snap["counters"].items():
            m = mangle(name)
            lines.append(f"# TYPE {m} counter")
            lines.append(f"{m} {value:g}")
        for name, value in snap["gauges"].items():
            m = mangle(name)
            lines.append(f"# TYPE {m} gauge")
            lines.append(f"{m} {value:g}")
        for name, summary in snap["histograms"].items():
            m = mangle(name)
            lines.append(f"# TYPE {m} summary")
            lines.append(f"{m}_count {summary.get('count', 0):g}")
            lines.append(f"{m}_sum {summary.get('sum', 0.0):g}")
            if summary.get("count"):
                lines.append(f"{m}_min {summary['min']:g}")
                lines.append(f"{m}_max {summary['max']:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every instrument (tests, pool-worker chunk isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every instrumented module records into.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Process-wide counter by name (created on first use)."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Process-wide gauge by name (created on first use)."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Process-wide histogram by name (created on first use)."""
    return REGISTRY.histogram(name)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]
