"""Content-addressed on-disk result store for scenario sweeps.

One JSON file per scenario, named by the scenario's content address
(``scenario_<id>.json``), written atomically (temp file + ``os.replace``,
the :mod:`repro.perf.cache` discipline) so a killed run never leaves a
half-written record.  Because the filename *is* the parameter
fingerprint, cross-run resume is a directory listing: any record already
present is valid for exactly the parameters that produced it, and any
parameter change routes to a fresh file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


class ResultStore:
    """Directory of per-scenario JSON records keyed by scenario id."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, scenario_id: str) -> Path:
        return self.directory / f"scenario_{scenario_id}.json"

    def store(self, record: dict) -> Path:
        """Atomically persist one scenario record."""
        path = self.path_for(record["id"])
        text = json.dumps(record, indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="ascii") as f:
                f.write(text + "\n")
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load(self, scenario_id: str) -> dict | None:
        """Return the stored record, or None if absent or unreadable.

        A corrupt record (truncated write from a hard kill predating the
        atomic-write discipline, manual editing) is treated as a miss --
        the scenario is simply recomputed.
        """
        path = self.path_for(scenario_id)
        try:
            record = json.loads(path.read_text(encoding="ascii"))
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("id") != scenario_id:
            return None
        return record

    def completed(self) -> set[str]:
        """Scenario ids with a record on disk."""
        return {
            p.stem.removeprefix("scenario_")
            for p in self.directory.glob("scenario_*.json")
        }

    def __len__(self) -> int:
        return len(self.completed())

    def __repr__(self) -> str:
        return f"ResultStore({str(self.directory)!r}, {len(self)} records)"


__all__ = ["ResultStore"]
