"""Batch scheduler: shard scenario evaluations across a process pool.

The scheduler reuses the :mod:`repro.perf.parallel` discipline wholesale:

* scenarios are scheduled in contiguous index chunks
  (:func:`~repro.perf.parallel.chunk_indices`), several per worker;
* each worker runs its shard under a private trace and ships the
  serialized span tree + metrics export back with the records, which the
  parent grafts into its own collector;
* records land in the result list **by index**, so a sharded sweep is
  bit-identical to the serial one regardless of worker count or
  completion order;
* a pool that cannot be created (sandbox, fd exhaustion, an injected
  ``"sweep.pool"`` fault) degrades to the serial path -- recorded as a
  downgrade, never a failure -- and a *running* pool executes under the
  :class:`~repro.resilience.supervisor.Supervisor`: shards get
  wall-clock deadlines, hung or killed workers are detected and their
  shards reissued to a restarted pool, poison scenarios are bisected out
  and quarantined as ``status: "quarantined"`` records, and a circuit
  breaker trips to the serial path after ``max_pool_restarts``;
* every completed record is persisted to the
  :class:`~repro.scenarios.store.ResultStore` as it lands (per-scenario
  checkpointing), and on the next run stored records are resumed instead
  of recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import (
    detached_stack, export_spans, graft_spans, span, tracing,
)
from repro.resilience import faults
from repro.resilience.faults import InjectedFault
from repro.resilience.report import RunReport
from repro.resilience.supervisor import (
    Supervisor, SupervisorConfig, supervised_init,
)
from repro.perf.parallel import chunk_indices, worker_count
from repro.scenarios.runner import evaluate_scenario, quarantined_record
from repro.scenarios.spec import Scenario, SweepSpec
from repro.scenarios.store import ResultStore


@dataclass
class SweepResult:
    """Outcome of one sweep batch.

    Attributes:
        records: One record per scenario, in grid-expansion order.
        report: Batch-level resilience log (pool downgrades, resumes,
            supervision events).
        resumed: Scenarios served from the result store.
        computed: Scenarios evaluated this run.
    """

    records: list[dict]
    report: RunReport = field(default_factory=RunReport)
    resumed: int = 0
    computed: int = 0

    @property
    def ok(self) -> int:
        return sum(1 for r in self.records if r["status"] == "ok")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r["status"] == "failed")

    @property
    def quarantined(self) -> int:
        return sum(
            1 for r in self.records if r["status"] == "quarantined"
        )


def _run_chunk(
    chunk_id: int, scenarios: list[Scenario]
) -> tuple[int, list[dict], list[dict], dict]:
    """Worker body: evaluate one shard under a private trace.

    Same contract as :func:`repro.perf.parallel._solve_chunk`: the
    registry is reset per shard (pool workers persist across shards) and
    the span stack is detached (a fork-started worker inherits the span
    open in the parent at fork time), so the shipped span tree and
    metrics cover exactly this shard.  The ``"sweep.worker"`` disruption
    hook fires only here, never on the serial path.
    """
    faults.maybe_disrupt("sweep.worker")
    obs_metrics.REGISTRY.reset()  # qa: ignore[QA203] -- worker-private registry, exported below
    with detached_stack(), tracing() as trace:
        with span("sweep.shard", shard=chunk_id, scenarios=len(scenarios)):
            records = [evaluate_scenario(sc) for sc in scenarios]
    return chunk_id, records, export_spans(trace), obs_metrics.REGISTRY.export()


def run_sweep(
    spec: SweepSpec | list[Scenario],
    store: ResultStore | None = None,
    workers: int | None = None,
    resume: bool = True,
    chunk: int | None = None,
    report: RunReport | None = None,
    config: SupervisorConfig | None = None,
) -> SweepResult:
    """Run a scenario sweep, sharded over a process pool.

    Args:
        spec: A sweep spec (expanded in deterministic order) or an
            explicit scenario list.
        store: Optional result store; completed records are persisted as
            they land and (with ``resume``) served back on the next run.
        workers: Pool width (:func:`repro.perf.parallel.worker_count`
            resolution: argument, then ``REPRO_WORKERS``, then CPU
            count); 1 forces the serial path.
        resume: Serve scenarios already in ``store`` instead of
            recomputing them.
        chunk: Scenarios per shard; default auto
            (:func:`~repro.perf.parallel.chunk_indices`).
        report: Batch-level run report to append to; default fresh.
        config: Supervision knobs (deadlines, time budget, restart
            budget, worker rlimit); default
            :meth:`SupervisorConfig.from_env`.

    Returns:
        The :class:`SweepResult`; ``records`` is ordered like the
        expanded grid and is identical for any worker count.
    """
    scenarios = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    name = spec.name if isinstance(spec, SweepSpec) else "scenarios"
    report = report if report is not None else RunReport()
    records: list[dict | None] = [None] * len(scenarios)

    with span("sweep.scenarios", batch=name, scenarios=len(scenarios)):
        resumed = 0
        if store is not None and resume:
            done_ids = store.completed()
            for i, sc in enumerate(scenarios):
                sid = sc.scenario_id
                if sid not in done_ids:
                    continue
                record = store.load(sid)
                if record is None:
                    continue  # corrupt record: recompute
                records[i] = record
                resumed += 1
            if resumed:
                obs_metrics.counter("sweep.scenarios.resumed").inc(resumed)
                report.record_resume(
                    "sweep",
                    f"{resumed}/{len(scenarios)} scenarios already in "
                    f"{store.directory}",
                )

        todo = np.array(
            [i for i, r in enumerate(records) if r is None], dtype=int
        )
        num_workers = worker_count(workers)
        chunks = chunk_indices(todo, num_workers, chunk)
        obs_metrics.counter("sweep.shards").inc(len(chunks))

        def finish(idx: np.ndarray, recs: list[dict]) -> None:
            for i, record in zip(idx, recs):
                records[i] = record
                if store is not None:
                    store.store(record)

        def serial(shards: list[np.ndarray]) -> None:
            for cid, idx in enumerate(shards):
                with span("sweep.shard", shard=cid, scenarios=len(idx)):
                    recs = [evaluate_scenario(scenarios[i]) for i in idx]
                finish(idx, recs)

        if num_workers == 1 or todo.size <= 1:
            serial(chunks)
        else:
            _pooled(
                scenarios, chunks, num_workers, report, finish, serial,
                config,
            )

    return SweepResult(
        records=records,  # type: ignore[arg-type]  # all filled above
        report=report,
        resumed=resumed,
        computed=int(todo.size),
    )


def _pooled(
    scenarios: list[Scenario],
    chunks: list[np.ndarray],
    workers: int,
    report: RunReport,
    finish,
    serial,
    config: SupervisorConfig | None = None,
) -> None:
    """Fan shards out over a supervised pool, mirroring ``parallel_sweep``."""
    cfg = config if config is not None else SupervisorConfig.from_env()
    pool_width = min(workers, len(chunks))

    def make_executor():
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=pool_width,
            initializer=supervised_init,
            initargs=(cfg.rlimit_mb,),
        )

    try:
        faults.maybe_fail("sweep.pool")
        executor = make_executor()
    except (InjectedFault, OSError, ImportError, PermissionError) as exc:
        obs_metrics.counter("sweep.fallback_serial").inc()
        report.record_downgrade(
            "sweep",
            f"sharded sweep ({workers} workers)",
            "serial sweep",
            f"process pool unavailable: {exc}",
        )
        serial(chunks)
        return

    obs_metrics.gauge("sweep.workers").set(pool_width)

    def submit(pool, key: int, idx: np.ndarray):
        return pool.submit(_run_chunk, key, [scenarios[i] for i in idx])

    def on_result(idx: np.ndarray, payload) -> None:
        _, recs, worker_spans, worker_metrics = payload
        graft_spans(worker_spans)
        obs_metrics.REGISTRY.merge(worker_metrics)
        finish(idx, recs)

    def quarantine(point: int, reason: str) -> None:
        # A poison scenario becomes a degraded record -- stored and
        # aggregated like any other, never a batch abort.
        finish(
            np.array([point], dtype=int),
            [quarantined_record(scenarios[point], reason)],
        )

    Supervisor(
        executor=executor,
        make_executor=make_executor,
        submit=submit,
        on_result=on_result,
        solve_serial=lambda idx: serial([idx]),
        quarantine=quarantine,
        workers=pool_width,
        config=cfg,
        report=report,
        stage="sweep",
    ).run(chunks)


__all__ = ["SweepResult", "run_sweep"]
