"""Aggregation of sweep records into the paper's comparison view.

Turns a batch of per-scenario records into the Table-1-style comparison
artifact: loop R/L, 50% delay, and overshoot per design variant, sorted
deterministically.  The JSON writer emits a *canonical* form -- sorted
rows, sorted keys, resilience notes excluded -- so a serial run and a
sharded run of the same grid produce byte-identical files (the CI smoke
check compares them with ``cmp``).
"""

from __future__ import annotations

import json
from pathlib import Path


def _sort_key(record: dict):
    p = record["params"]
    return (
        p["variant"], p["length"], p["frequency"], p["sparsifier"],
        record["id"],
    )


def aggregate_records(records: list[dict]) -> list[dict]:
    """Deterministically ordered records without the resilience notes.

    Notes are dropped because retry wording can differ between a serial
    and a sharded run of the *same* results (forked RNG streams under
    chaos injection); everything kept is a pure function of the
    scenario parameters.
    """
    rows = []
    for record in sorted(records, key=_sort_key):
        row = {
            "id": record["id"],
            "params": record["params"],
            "status": record["status"],
            "metrics": record["metrics"],
        }
        if "error" in record:
            row["error"] = record["error"]
        rows.append(row)
    return rows


def format_comparison(records: list[dict], title: str | None = None) -> str:
    """Render the comparison table (variant vs loop R/L, delay, overshoot)."""
    from repro.analysis.report import format_table

    rows = []
    for record in aggregate_records(records):
        p, m = record["params"], record["metrics"]
        def fmt(key: str, scale: float, digits: int = 3) -> str:
            value = m.get(key)
            return "-" if value is None else f"{value * scale:.{digits}f}"
        rows.append([
            p["variant"],
            f"{p['length'] * 1e6:.0f}",
            f"{p['frequency'] / 1e9:.2f}",
            p["sparsifier"],
            fmt("loop_resistance", 1.0),
            fmt("loop_inductance", 1e9),
            fmt("delay", 1e12, 1),
            fmt("overshoot", 1e3, 1),
            record["status"],
        ])
    return format_table(
        ["variant", "len [um]", "f [GHz]", "sparsifier", "R [ohm]",
         "L [nH]", "delay [ps]", "overshoot [mV]", "status"],
        rows,
        title=title or "scenario sweep -- loop model comparison",
    )


def write_results(records: list[dict], path: str | Path) -> Path:
    """Write the canonical aggregated JSON artifact."""
    path = Path(path)
    payload = {"scenarios": aggregate_records(records)}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="ascii",
    )
    return path


__all__ = ["aggregate_records", "format_comparison", "write_results"]
