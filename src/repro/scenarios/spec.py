"""Declarative sweep specifications and content-addressed scenario ids.

A sweep spec is a parameter grid: each axis names a :class:`Scenario`
field and lists the values to sweep; the cartesian product (expanded in
deterministic sorted-axis order) is the scenario batch.  Every scenario
carries a content address -- a SHA-256 fingerprint over its exact
parameter values, bit-exact float encoding like
:mod:`repro.perf.cache` -- so results can be stored, resumed, and shared
across runs without ever serving a stale record: change any parameter
and the id (hence the storage key) changes with it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import struct
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable

from repro.scenarios.variants import VARIANTS
from repro.sparsify import (
    BlockDiagonalSparsifier,
    HaloSparsifier,
    HierarchicalSparsifier,
    KMatrixSparsifier,
    ShellSparsifier,
    Sparsifier,
    TruncationSparsifier,
)

#: Sparsifier axis vocabulary: name -> factory (``None`` = dense, no
#: sparsification stage).  Factories build fresh instances so scenario
#: evaluations never share mutable sparsifier state across processes.
SPARSIFIER_FACTORIES: dict[str, Callable[[], Sparsifier] | None] = {
    "none": None,
    "truncation": TruncationSparsifier,
    "blockdiag": BlockDiagonalSparsifier,
    "shell": ShellSparsifier,
    "halo": HaloSparsifier,
    "hierarchical": HierarchicalSparsifier,
    "kmatrix": KMatrixSparsifier,
}


@dataclass(frozen=True)
class Scenario:
    """One point of a sweep grid: geometry x variant x model settings.

    Attributes:
        variant: Design-variant name (see
            :data:`repro.scenarios.variants.VARIANTS`).
        length: Interconnect length [m] handed to the variant builder.
        frequency: Loop-extraction frequency [Hz].
        sparsifier: Sparsifier axis value (see
            :data:`SPARSIFIER_FACTORIES`); ``"none"`` skips the stage.
        rise_time: Driver input edge rate [s].
        driver_resistance: Thevenin driver resistance [ohm].
        load_capacitance: Receiver load [F].
        t_stop: Transient horizon [s].
        dt: Transient step [s].
        vdd: Supply swing [V].
    """

    variant: str = "baseline"
    length: float = 400e-6
    frequency: float = 2e9
    sparsifier: str = "none"
    rise_time: float = 40e-12
    driver_resistance: float = 25.0
    load_capacitance: float = 30e-15
    t_stop: float = 1.0e-9
    dt: float = 2e-12
    vdd: float = 1.2

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            known = ", ".join(sorted(VARIANTS))
            raise ValueError(
                f"unknown variant {self.variant!r}; known: {known}"
            )
        if self.sparsifier not in SPARSIFIER_FACTORIES:
            known = ", ".join(sorted(SPARSIFIER_FACTORIES))
            raise ValueError(
                f"unknown sparsifier {self.sparsifier!r}; known: {known}"
            )
        for name in ("length", "frequency", "rise_time",
                     "driver_resistance", "load_capacitance", "t_stop",
                     "dt", "vdd"):
            if not getattr(self, name) > 0:
                raise ValueError(f"{name} must be positive")
        if self.dt >= self.t_stop:
            raise ValueError("dt must be smaller than t_stop")

    @property
    def scenario_id(self) -> str:
        """Short content address over every result-affecting parameter."""
        h = hashlib.sha256()
        h.update(self.variant.encode())
        h.update(b"\x00")
        h.update(self.sparsifier.encode())
        h.update(b"\x00")
        floats = (
            self.length, self.frequency, self.rise_time,
            self.driver_resistance, self.load_capacitance, self.t_stop,
            self.dt, self.vdd,
        )
        # Bit-exact little-endian packing (the perf.cache idiom): no
        # decimal round-trip, so near-equal floats hash differently.
        h.update(struct.pack(f"<{len(floats)}d", *floats))
        return h.hexdigest()[:16]

    def params(self) -> dict[str, Any]:
        """Plain-dict view for records and reports."""
        return dataclasses.asdict(self)


_FIELD_NAMES = frozenset(f.name for f in fields(Scenario))


def _check_fields(mapping: dict[str, Any], what: str) -> None:
    unknown = sorted(set(mapping) - _FIELD_NAMES)
    if unknown:
        raise ValueError(
            f"{what} refers to unknown scenario fields: {', '.join(unknown)}"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A named parameter grid over :class:`Scenario` fields.

    Attributes:
        name: Batch label (enters reports, not scenario ids).
        grid: Field name -> list of values to sweep.
        defaults: Field overrides applied to every scenario.
    """

    name: str
    grid: dict[str, list[Any]]
    defaults: dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep spec needs a name")
        _check_fields(self.grid, "grid")
        _check_fields(self.defaults, "defaults")
        for axis, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"grid axis {axis!r} needs a non-empty list")

    def expand(self) -> list[Scenario]:
        """Deterministic cartesian expansion (sorted-axis order)."""
        axes = sorted(self.grid)
        combos = itertools.product(*(self.grid[a] for a in axes))
        return [
            Scenario(**{**self.defaults, **dict(zip(axes, combo))})
            for combo in combos
        ]

    def __len__(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n


def load_sweep_spec(path: str | Path) -> SweepSpec:
    """Load a sweep spec from a JSON file.

    Format::

        {
          "name": "length-vs-shielding",
          "defaults": {"frequency": 2e9},
          "grid": {"variant": ["baseline", "shielded"],
                   "length": [200e-6, 400e-6]}
        }
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="ascii"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read sweep spec {path}: {exc}") from exc
    if not isinstance(data, dict) or "grid" not in data:
        raise ValueError(f"{path}: sweep spec needs a top-level 'grid' object")
    return SweepSpec(
        name=str(data.get("name", path.stem)),
        grid=data["grid"],
        defaults=data.get("defaults", {}),
    )


def smoke_spec() -> SweepSpec:
    """Tiny 4-scenario grid for CI smoke runs (seconds, not minutes)."""
    return SweepSpec(
        name="smoke",
        grid={
            "variant": ["baseline", "shielded"],
            "sparsifier": ["none", "truncation"],
        },
        defaults={"length": 150e-6, "t_stop": 0.6e-9},
    )


__all__ = [
    "SPARSIFIER_FACTORIES",
    "Scenario",
    "SweepSpec",
    "load_sweep_spec",
    "smoke_spec",
]
