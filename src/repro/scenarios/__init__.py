"""Declarative scenario sweeps over the paper's design variants.

The batch engine behind ``repro sweep``: a JSON sweep spec declares a
parameter grid (design variant x geometry size x sparsifier x
frequency/transient settings), the scheduler shards the expanded
scenarios across a process pool with per-scenario checkpointing into a
content-addressed result store, and the aggregator renders the Table-1
style comparison (loop R/L, delay, overshoot per variant) -- the paper's
Section-6 evaluation as a resumable batch artifact.
"""

from repro.scenarios.aggregate import (
    aggregate_records,
    format_comparison,
    write_results,
)
from repro.scenarios.runner import (
    MAX_SEGMENT_LENGTH,
    evaluate_scenario,
    quarantined_record,
)
from repro.scenarios.scheduler import SweepResult, run_sweep
from repro.scenarios.spec import (
    SPARSIFIER_FACTORIES,
    Scenario,
    SweepSpec,
    load_sweep_spec,
    smoke_spec,
)
from repro.scenarios.store import ResultStore
from repro.scenarios.variants import VARIANTS, build_variant

__all__ = [
    "MAX_SEGMENT_LENGTH",
    "SPARSIFIER_FACTORIES",
    "VARIANTS",
    "ResultStore",
    "Scenario",
    "SweepResult",
    "SweepSpec",
    "aggregate_records",
    "build_variant",
    "evaluate_scenario",
    "format_comparison",
    "load_sweep_spec",
    "quarantined_record",
    "run_sweep",
    "smoke_spec",
    "write_results",
]
