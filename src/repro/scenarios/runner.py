"""Single-scenario evaluation: build, extract, sparsify, simulate.

One scenario runs the paper's comparison pipeline end to end on its
design variant:

1. build the variant geometry at the scenario's length,
2. extract the driver-port loop impedance at the scenario's frequency
   (Section 5; FastHenry-style filament solve),
3. optionally apply the scenario's Section-4 sparsifier to the dense
   partial-inductance matrix and record the passivity verdict,
4. drive the extracted loop R/L through a loaded transient and measure
   the Table-1 observables (50% delay, overshoot).

A scenario failure is *data*, not a batch abort: the record carries
``status: "failed"`` plus the error, and resilience downgrades (e.g. a
sparsifier refusing a matrix) are recorded per scenario instead of
killing the sweep.  Records are pure functions of the scenario
parameters -- no timings, no host- or process-dependent content -- so a
sharded run reproduces the serial run bit for bit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.metrics import delay_50, overshoot
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.extraction.partial_matrix import extract_partial_inductance
from repro.geometry.segment import Direction
from repro.loop.extractor import extract_loop_impedance
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience.report import RunReport, activate
from repro.scenarios.spec import SPARSIFIER_FACTORIES, Scenario
from repro.scenarios.variants import build_variant
from repro.sparsify.base import traced_apply
from repro.sparsify.stability import min_eigenvalue

#: Axial re-segmentation bound for extraction (finer capture of
#: non-uniform axial current on long lines, at bounded cost).
MAX_SEGMENT_LENGTH = 200e-6


def _inplane_segments(layout, max_len: float) -> list:
    segments = []
    for seg in layout.segments:
        if seg.direction == Direction.Z:
            continue
        if seg.length > max_len:
            segments.extend(seg.split(int(math.ceil(seg.length / max_len))))
        else:
            segments.append(seg)
    return segments


def _sparsify_metrics(sc: Scenario, layout, report: RunReport) -> dict:
    """Apply the scenario's sparsifier; degrade (never fail) on refusal."""
    factory = SPARSIFIER_FACTORIES[sc.sparsifier]
    if factory is None:
        return {}
    sparsifier = factory()
    extraction = extract_partial_inductance(
        _inplane_segments(layout, MAX_SEGMENT_LENGTH)
    )
    metrics: dict = {"sparsify_mutuals_total": int(extraction.num_mutuals)}
    try:
        blocks = traced_apply(sparsifier, extraction)
    except ValueError as exc:
        # A refused matrix (truncation guard, K-matrix passivity check)
        # is a per-scenario degradation: the dense model stands in.
        report.record_downgrade(
            "sweep", f"sparsifier {sc.sparsifier}", "dense", str(exc)
        )
        metrics["sparsify_degraded"] = True
        return metrics
    metrics["sparsify_kind"] = blocks.kind
    metrics["sparsify_mutuals_kept"] = int(blocks.num_mutuals)
    if blocks.kind == "L":
        eig = float(min_eigenvalue(blocks.to_dense(extraction.size)))
        metrics["sparsify_min_eigenvalue"] = eig
        metrics["sparsify_positive_definite"] = bool(eig > 0.0)
    return metrics


def _transient_metrics(sc: Scenario, z: complex) -> dict:
    """Loaded-driver transient over the extracted loop R/L."""
    omega = 2.0 * math.pi * sc.frequency
    r_loop = max(float(z.real), 1e-6)
    l_loop = max(float(z.imag) / omega, 1e-18)
    circuit = Circuit("scenario")
    ramp = Ramp(0.0, sc.vdd, 50e-12, sc.rise_time)
    circuit.add_vsource("Vin", "vin", GROUND, ramp)
    circuit.add_resistor("Rdrv", "vin", "drv", sc.driver_resistance)
    circuit.add_series_rl("loop", "drv", "rcv", r_loop, l_loop)
    circuit.add_capacitor("Cload", "rcv", GROUND, sc.load_capacitance)
    result = transient_analysis(circuit, sc.t_stop, sc.dt, record=["rcv"])
    v_out = result.voltage("rcv")
    v_in = np.array([ramp(t) for t in result.times])
    return {
        "loop_resistance": r_loop,
        "loop_inductance": l_loop,
        "delay": float(delay_50(result.times, v_in, v_out, sc.vdd)),
        "overshoot": float(overshoot(v_out, sc.vdd)),
    }


def evaluate_scenario(sc: Scenario) -> dict:
    """Evaluate one scenario into a deterministic, JSON-ready record.

    Returns a dict with ``id``, ``params``, ``status`` (``"ok"`` /
    ``"failed"``), ``metrics``, ``notes`` (the scenario's resilience
    events), and -- on failure -- ``error``.
    """
    report = RunReport()
    metrics: dict = {}
    status, error = "ok", None
    with span(
        "sweep.scenario",
        scenario=sc.scenario_id,
        variant=sc.variant,
        sparsifier=sc.sparsifier,
    ) as sp:
        try:
            with activate(report):
                layout, port = build_variant(sc.variant, sc.length)
                extraction = extract_loop_impedance(
                    layout, port, [sc.frequency],
                    max_segment_length=MAX_SEGMENT_LENGTH,
                    workers=1,  # the sweep shards scenarios, not points
                )
                z = extraction.at(sc.frequency)
                metrics["num_filaments"] = int(extraction.num_filaments)
                metrics.update(_sparsify_metrics(sc, layout, report))
                metrics.update(_transient_metrics(sc, z))
        except Exception as exc:
            status = "failed"
            error = f"{type(exc).__name__}: {exc}"
        sp.attrs["status"] = status
    obs_metrics.counter(f"sweep.scenarios.{status}").inc()
    record = {
        "id": sc.scenario_id,
        "params": sc.params(),
        "status": status,
        "metrics": metrics,
        # Span paths are deliberately excluded: a worker's span path
        # differs from the serial one, and records must be identical.
        "notes": [
            {"kind": e.kind, "stage": e.stage, "detail": e.detail}
            for e in report.events
        ],
    }
    if error is not None:
        record["error"] = error
    return record


def quarantined_record(sc: Scenario, reason: str) -> dict:
    """Degraded record for a scenario the supervisor had to quarantine.

    Shaped like an :func:`evaluate_scenario` record (same keys, status
    ``"quarantined"``) so it flows through the store, resume, and the
    aggregator untouched -- a poison scenario is data, not a batch abort.
    """
    obs_metrics.counter("sweep.scenarios.quarantined").inc()
    return {
        "id": sc.scenario_id,
        "params": sc.params(),
        "status": "quarantined",
        "metrics": {},
        "notes": [
            {"kind": "quarantine", "stage": "sweep", "detail": reason}
        ],
        "error": reason,
    }


__all__ = ["MAX_SEGMENT_LENGTH", "evaluate_scenario", "quarantined_record"]
