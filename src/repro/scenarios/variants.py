"""Design-variant registry for scenario sweeps.

Each variant is one of the paper's Section-6 interconnect styles (the
Figure 5-9 design-technique structures plus the SINO-ordered channel),
reduced to the one thing the sweep runner needs: *build me this geometry
at a given length and hand back the loop-extraction port*.  The registry
maps a stable name -- the value a sweep spec's ``variant`` axis takes --
to a builder ``(length) -> (layout, LoopPort)``.

Builders are pure functions of ``length`` (every randomized input is
seeded), so a scenario's content-addressed identity covers everything
that affects its results.
"""

from __future__ import annotations

from typing import Callable

from repro.geometry.clocktree import TapPoint
from repro.geometry.layout import Layout
from repro.geometry.structures import (
    StructurePorts,
    build_ground_plane,
    build_interdigitated_wire,
    build_shielded_line,
    build_signal_over_grid,
    build_twisted_bundle,
)
from repro.loop.extractor import LoopPort

#: Builder signature: layout plus the driver-side loop port.
VariantBuilder = Callable[[float], tuple[Layout, LoopPort]]


def _port_from_structure(ports: StructurePorts) -> LoopPort:
    """Standard port wiring for the Figure 5-7 structure builders."""
    return LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )


def _baseline(length: float) -> tuple[Layout, LoopPort]:
    layout, ports = build_shielded_line(length=length, with_shields=False)
    return layout, _port_from_structure(ports)


def _shielded(length: float) -> tuple[Layout, LoopPort]:
    layout, ports = build_shielded_line(length=length, with_shields=True)
    return layout, _port_from_structure(ports)


def _ground_plane(length: float) -> tuple[Layout, LoopPort]:
    layout, ports = build_ground_plane(length=length)
    return layout, _port_from_structure(ports)


def _interdigitated(length: float) -> tuple[Layout, LoopPort]:
    layout, ports = build_interdigitated_wire(length=length)
    return layout, _port_from_structure(ports)


def _signal_over_grid(length: float) -> tuple[Layout, LoopPort]:
    layout, ports = build_signal_over_grid(length=length)
    return layout, _port_from_structure(ports)


def _staggered_pair(length: float) -> tuple[Layout, LoopPort]:
    from repro.design.staggered import _build_pair_layout

    pitch, wire_width, layer = 2e-6, 1e-6, "M6"
    layout = _build_pair_layout(length, pitch, wire_width, layer)
    return layout, LoopPort(
        signal=TapPoint("victim", 0.0, 0.0, layer, "driver"),
        reference=TapPoint("GND", 0.0, -pitch, layer, "gnd_driver"),
        short_signal=TapPoint("victim", length, 0.0, layer, "receiver"),
        short_reference=TapPoint("GND", length, -pitch, layer, "gnd_receiver"),
    )


def _twisted_bundle(length: float) -> tuple[Layout, LoopPort]:
    layout, ports = build_twisted_bundle(
        num_nets=2, num_regions=4, length=length
    )
    return layout, LoopPort(
        signal=ports["n0:in"],
        reference=ports["gnd:in"],
        short_signal=ports["n0:out"],
        short_reference=ports["gnd:out"],
    )


def _sino_channel(length: float) -> tuple[Layout, LoopPort]:
    from repro.design.sino import greedy_sino, random_problem
    from repro.design.sino_layout import solution_to_layout

    solution = greedy_sino(random_problem(num_nets=6, seed=7))
    layout, taps = solution_to_layout(solution, length=length)
    net = solution.order[0]
    layer = taps["gnd:in"].layer
    return layout, LoopPort(
        signal=taps[f"{net}:in"],
        reference=taps["gnd:in"],
        short_signal=taps[f"{net}:out"],
        # The bottom edge ground runs the full channel at y = 0; its far
        # terminal is the receiver-side return tap.
        short_reference=TapPoint("GND", length, 0.0, layer, "gnd_out"),
    )


#: Variant name -> builder.  Names are the sweep-spec vocabulary; keep
#: them stable (they enter every scenario's content address).
VARIANTS: dict[str, VariantBuilder] = {
    "baseline": _baseline,
    "shielded": _shielded,
    "ground_plane": _ground_plane,
    "interdigitated": _interdigitated,
    "signal_over_grid": _signal_over_grid,
    "staggered_pair": _staggered_pair,
    "twisted_bundle": _twisted_bundle,
    "sino_channel": _sino_channel,
}


def build_variant(name: str, length: float) -> tuple[Layout, LoopPort]:
    """Build the named variant at the given line length [m]."""
    try:
        builder = VARIANTS[name]
    except KeyError:
        known = ", ".join(sorted(VARIANTS))
        raise ValueError(f"unknown variant {name!r}; known: {known}") from None
    return builder(length)


__all__ = ["VARIANTS", "VariantBuilder", "build_variant"]
