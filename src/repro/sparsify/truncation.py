"""Naive threshold truncation of the partial-inductance matrix.

"The simplest approach to sparsifying the inductance matrix is to discard
all mutual coupling terms falling below a certain threshold. ... However,
the resulting matrix can become non-positive definite, and the sparsified
system becomes active and can generate energy.  Since there is no
guarantee on either the degree of sparsity or stability, truncation is not
a feasible solution."  (Paper, Section 4.)

We implement it anyway -- as the negative control.  The ablation benchmark
shows the indefinite matrices and the transient energy growth this
produces, reproducing the paper's argument quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extraction.partial_matrix import PartialInductanceResult
from repro.sparsify.base import InductanceBlocks, Sparsifier


@dataclass
class TruncationSparsifier(Sparsifier):
    """Drop mutual terms with coupling coefficient below ``threshold``.

    Attributes:
        threshold: Couplings with ``|M_ij| / sqrt(L_ii L_jj) < threshold``
            are zeroed.  0 keeps everything; 1 keeps nothing off-diagonal.
    """

    threshold: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")

    def apply(self, result: PartialInductanceResult) -> InductanceBlocks:
        matrix = result.matrix.copy()
        self_l = np.diagonal(matrix)
        # Coupling coefficients divide by sqrt(L_ii L_jj): a zero or
        # near-zero self inductance turns whole rows of the quotient into
        # NaN/inf, and every `NaN < threshold` comparison is False -- the
        # drop mask silently keeps those mutuals.  Refuse the malformed
        # extraction instead of corrupting the mask.
        floor = float(np.max(self_l, initial=0.0)) * 1e-12
        bad = ~np.isfinite(self_l) | (self_l <= floor)
        if np.any(bad):
            offenders = np.nonzero(bad)[0]
            shown = ", ".join(str(i) for i in offenders[:8])
            more = "" if len(offenders) <= 8 else f", ... ({len(offenders)} total)"
            raise ValueError(
                "truncation sparsifier needs strictly positive self "
                f"inductances; segment indices [{shown}{more}] have "
                "zero, near-zero, or non-finite L_ii"
            )
        diag = np.sqrt(self_l)
        coupling = np.abs(matrix) / np.outer(diag, diag)
        drop = coupling < self.threshold
        np.fill_diagonal(drop, False)
        matrix[drop] = 0.0
        n = result.size
        return InductanceBlocks(kind="L", blocks=[(list(range(n)), matrix)])
