"""Block-diagonal sparsification (paper Section 4).

"Block-diagonal sparsification is a simple partitioning technique based on
circuit topology, which guarantees the sparsified matrix to be positive
definite."  The topology is cut into spatial sections; mutual couplings
survive only within a section.  Because every block is a principal
submatrix of the (positive definite) full matrix, the block-diagonal
assembly is positive definite by construction -- passivity for free.

"The signal bus of interest lies in the middle of the corresponding
section, to capture the most significant inductive coupling between signal
lines and power grid": pass ``focus_nets`` to center one section on the
signal's span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extraction.partial_matrix import PartialInductanceResult
from repro.sparsify.base import InductanceBlocks, Sparsifier


@dataclass
class BlockDiagonalSparsifier(Sparsifier):
    """Partition segments into spatial slabs; keep only intra-slab mutuals.

    Attributes:
        num_sections: Number of slabs ("The section size depends on a
            trade-off required between run-time and accuracy").
        axis: Partition axis, 0 = x or 1 = y; ``None`` picks the axis of
            larger layout extent.
        focus_nets: Net names whose segments must land in a single central
            section together with everything inside their bounding slab --
            the paper's signal-centred sectioning.
    """

    num_sections: int = 4
    axis: int | None = None
    focus_nets: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.num_sections < 1:
            raise ValueError("num_sections must be >= 1")
        if self.axis not in (None, 0, 1):
            raise ValueError("axis must be 0, 1, or None")

    def _pick_axis(self, result: PartialInductanceResult) -> int:
        if self.axis is not None:
            return self.axis
        centers = np.array([s.center for s in result.segments])
        extents = centers.max(axis=0) - centers.min(axis=0)
        return int(np.argmax(extents[:2]))

    def partition(self, result: PartialInductanceResult) -> list[list[int]]:
        """Assign every segment index to a section; returns index lists."""
        axis = self._pick_axis(result)
        coords = np.array([s.center[axis] for s in result.segments])
        n = len(coords)
        if self.num_sections == 1:
            return [list(range(n))]

        focus = [
            i for i, s in enumerate(result.segments) if s.net in self.focus_nets
        ]
        if focus:
            lo = min(coords[i] for i in focus)
            hi = max(coords[i] for i in focus)
            pad = 0.05 * max(hi - lo, 1e-12)
            in_focus = (coords >= lo - pad) & (coords <= hi + pad)
            sections = [list(np.nonzero(in_focus)[0])]
            rest = np.nonzero(~in_focus)[0]
            remaining_sections = max(self.num_sections - 1, 1)
        else:
            sections = []
            rest = np.arange(n)
            remaining_sections = self.num_sections

        if len(rest):
            order = rest[np.argsort(coords[rest])]
            chunks = np.array_split(order, remaining_sections)
            sections += [list(chunk) for chunk in chunks if len(chunk)]
        return [s for s in sections if s]

    def apply(self, result: PartialInductanceResult) -> InductanceBlocks:
        blocks = []
        for indices in self.partition(result):
            ix = np.asarray(indices)
            blocks.append((list(indices), result.matrix[np.ix_(ix, ix)].copy()))
        return InductanceBlocks(kind="L", blocks=blocks)
