"""K-matrix (inverse inductance) sparsification -- Devgan et al. (ref [17]).

"A recent approach defines a circuit matrix K, as the inverse of the
partial inductance matrix L.  K has a higher degree of locality and
sparsity, similar to the capacitance matrix, and hence is amenable to
sparsification and simulation.  However, it requires inversion of the
partial inductance matrix, and a special circuit simulator that can handle
the K matrix."

The inversion happens here; the special simulator support is the
:class:`~repro.circuit.elements.KInductorSet` element, which the MNA
engine stamps as ``d i/dt = K v``.  Crucially, truncating small K entries
preserves positive definiteness far more robustly than truncating L
(K is diagonally dominant, like the capacitance matrix), which is the
entire point of the method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.extraction.partial_matrix import PartialInductanceResult
from repro.sparsify.base import InductanceBlocks, Sparsifier
from repro.sparsify.stability import is_positive_definite


@dataclass
class KMatrixSparsifier(Sparsifier):
    """Invert L, truncate small K entries, simulate with the K element.

    Attributes:
        threshold: Entries with ``|K_ij| / sqrt(K_ii K_jj) < threshold``
            are zeroed.  K's locality means even aggressive thresholds keep
            the near-neighbour physics.
    """

    threshold: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")

    def apply(self, result: PartialInductanceResult) -> InductanceBlocks:
        # K is the *full* inverse by definition, but computing it through a
        # Cholesky factor is faster and only succeeds on the SPD input the
        # method requires -- singular/indefinite L fails right here.
        try:
            chol = sla.cho_factor(result.matrix)
        except np.linalg.LinAlgError as exc:
            raise RuntimeError(
                "partial-inductance matrix is singular or indefinite; K "
                "extraction needs a positive definite L"
            ) from exc
        kmatrix = sla.cho_solve(chol, np.eye(result.size))
        kmatrix = (kmatrix + kmatrix.T) / 2.0
        if self.threshold > 0.0:
            diag = np.sqrt(np.diagonal(kmatrix))
            rel = np.abs(kmatrix) / np.outer(diag, diag)
            drop = rel < self.threshold
            np.fill_diagonal(drop, False)
            kmatrix[drop] = 0.0
        if not is_positive_definite(kmatrix):
            raise RuntimeError(
                f"sparsified K matrix lost positive definiteness at threshold "
                f"{self.threshold}; lower the threshold"
            )
        n = result.size
        return InductanceBlocks(kind="K", blocks=[(list(range(n)), kmatrix)])
