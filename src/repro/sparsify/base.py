"""Sparsifier interface shared by all Section-4 strategies."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.extraction.partial_matrix import PartialInductanceResult


@dataclass
class InductanceBlocks:
    """Sparsified inductance structure consumed by the PEEC circuit builder.

    Attributes:
        kind: ``"L"`` -- blocks are inductance matrices; ``"K"`` -- blocks
            are inverse-inductance matrices (simulated via the special
            K-element support).
        blocks: ``(segment_indices, matrix)`` pairs.  ``segment_indices``
            index into the extraction result's segment list; every segment
            must appear in exactly one block.  A block of size 1 is a plain
            self inductance.
    """

    kind: str
    blocks: list[tuple[list[int], np.ndarray]]

    def __post_init__(self) -> None:
        if self.kind not in ("L", "K"):
            raise ValueError(f"kind must be 'L' or 'K', got {self.kind!r}")
        seen: set[int] = set()
        for indices, matrix in self.blocks:
            m = np.asarray(matrix)
            if m.shape != (len(indices), len(indices)):
                raise ValueError(
                    f"block shape {m.shape} does not match {len(indices)} indices"
                )
            overlap = seen.intersection(indices)
            if overlap:
                raise ValueError(f"segments {sorted(overlap)} appear in two blocks")
            seen.update(indices)

    @property
    def num_segments(self) -> int:
        return sum(len(idx) for idx, _ in self.blocks)

    @property
    def num_mutuals(self) -> int:
        """Retained off-diagonal couplings across all blocks."""
        return sum(
            int(np.count_nonzero(np.triu(np.asarray(m), k=1)))
            for _, m in self.blocks
        )

    def to_dense(self, size: int | None = None) -> np.ndarray:
        """Expand back to one (possibly block-) sparse dense matrix.

        Only valid for ``kind == "L"``; used by analyses that compare
        sparsified and original matrices entry-wise.
        """
        if self.kind != "L":
            raise ValueError("to_dense is only meaningful for L blocks")
        n = size if size is not None else self.num_segments
        out = np.zeros((n, n))
        for indices, matrix in self.blocks:
            ix = np.asarray(indices)
            out[np.ix_(ix, ix)] = matrix
        return out


class Sparsifier(abc.ABC):
    """Strategy interface: partial-L extraction in, inductance blocks out."""

    @abc.abstractmethod
    def apply(self, result: PartialInductanceResult) -> InductanceBlocks:
        """Sparsify the extraction result."""

    @property
    def name(self) -> str:
        """Short human-readable strategy name (for reports)."""
        return type(self).__name__.replace("Sparsifier", "").lower()


class DenseInductance(Sparsifier):
    """Identity strategy: keep the full dense partial-inductance matrix.

    This is the reference "detailed PEEC model" -- accurate and expensive.
    """

    def apply(self, result: PartialInductanceResult) -> InductanceBlocks:
        n = result.size
        return InductanceBlocks(
            kind="L", blocks=[(list(range(n)), result.matrix.copy())]
        )


def traced_apply(
    sparsifier: Sparsifier, result: PartialInductanceResult
) -> InductanceBlocks:
    """Apply a sparsifier under a ``sparsify.<name>`` span.

    Wrapping here (instead of in the abstract ``apply``) keeps existing
    subclasses untouched; the span records how many mutual couplings the
    strategy kept versus the dense extraction, and the drop ratio is
    published as a metric so a ``--trace-json`` dump shows how aggressive
    each Section-4 strategy was on the actual layout.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs.trace import span

    with span(f"sparsify.{sparsifier.name}", segments=result.size) as sp:
        blocks = sparsifier.apply(result)
        total = result.num_mutuals
        kept = blocks.num_mutuals
        dropped = max(total - kept, 0)
        ratio = dropped / total if total else 0.0
        sp.attrs.update(
            mutuals_total=total, mutuals_kept=kept,
            drop_ratio=round(ratio, 6),
        )
        obs_metrics.counter("sparsify.mutuals_kept").inc(kept)
        obs_metrics.counter("sparsify.mutuals_dropped").inc(dropped)
        obs_metrics.gauge(
            f"sparsify.{sparsifier.name}.drop_ratio"
        ).set(ratio)
        return blocks
