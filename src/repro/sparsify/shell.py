"""Shell (shift-truncate) sparsification -- Krauter & Pileggi (paper ref [13]).

"One approach associates each segment with a distributed current return
path out to a shell of some radius.  Segments with spacing more than this
radius are assumed to have no inductive coupling.  The inductance values of
the segments within the radius are shifted to account for those entries
that were dropped as a result of truncation.  This shift-truncate method
can guarantee to generate positive definite sparse approximations."

Mechanically: every partial inductance -- self and retained mutual -- is
reduced by the mutual inductance to a fictitious coaxial return shell at
radius ``r0``; couplings beyond ``r0`` become (approximately) zero and are
dropped exactly.  Because every segment's current is now paired with its
own shell return, rows become diagonally dominant and positive
definiteness is restored.  "This approach leads to complications in
determining the value of the shell radius": we expose ``radius`` directly
and also provide :meth:`ShellSparsifier.auto_radius`, a simple
coverage-based stand-in for the moment-matching radius selection of SPIE
(paper ref [14]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extraction.inductance import mutual_inductance_filaments
from repro.extraction.partial_matrix import PartialInductanceResult
from repro.sparsify.base import InductanceBlocks, Sparsifier
from repro.sparsify.stability import is_positive_definite


@dataclass
class ShellSparsifier(Sparsifier):
    """Shift-truncate with a spherical return shell at ``radius``.

    Attributes:
        radius: Shell radius [m]; couplings between segments farther apart
            than this are dropped.
        grow_factor: If the shifted matrix is (numerically) not positive
            definite, the radius is grown by this factor and the shift
            recomputed, up to ``max_grow`` times.
        max_grow: Growth attempts before giving up.
    """

    radius: float = 30e-6
    grow_factor: float = 1.5
    max_grow: int = 4

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.grow_factor <= 1.0:
            raise ValueError("grow_factor must exceed 1")

    @staticmethod
    def auto_radius(result: PartialInductanceResult, keep_fraction: float = 0.2) -> float:
        """Radius keeping roughly ``keep_fraction`` of all pairwise couplings.

        A pragmatic replacement for the moment-based radius of SPIE: sort
        all parallel-pair distances and pick the quantile.
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        segs = result.segments
        dists = []
        for i in range(len(segs)):
            for j in range(i + 1, len(segs)):
                if segs[i].is_parallel(segs[j]):
                    dists.append(segs[i].transverse_distance(segs[j]))
        if not dists:
            return 1e-6
        return float(np.quantile(np.asarray(dists), keep_fraction))

    def _shifted_matrix(self, result: PartialInductanceResult, radius: float) -> np.ndarray:
        segs = result.segments
        n = result.size
        matrix = result.matrix.copy()

        # Shell mutual for segment i: coupling of its own span to a parallel
        # filament at the shell radius (its distributed return).
        starts = np.array([s.axis_start for s in segs])
        ends = np.array([s.axis_end for s in segs])
        shell_self = mutual_inductance_filaments(starts, ends, starts, ends,
                                                 np.full(n, radius))
        shell_self = np.asarray(shell_self)

        out = np.zeros_like(matrix)
        np.fill_diagonal(out, np.diagonal(matrix) - shell_self)
        for i in range(n):
            for j in range(i + 1, n):
                if not segs[i].is_parallel(segs[j]):
                    continue
                d = segs[i].transverse_distance(segs[j])
                if d >= radius:
                    continue
                # Pairwise shift: mutual between segment i's span and segment
                # j's span moved out to the shell radius.
                shift = mutual_inductance_filaments(
                    segs[i].axis_start, segs[i].axis_end,
                    segs[j].axis_start, segs[j].axis_end,
                    radius,
                )
                out[i, j] = out[j, i] = matrix[i, j] - shift
        return out

    def apply(self, result: PartialInductanceResult) -> InductanceBlocks:
        radius = self.radius
        shifted = self._shifted_matrix(result, radius)
        attempts = 0
        while not is_positive_definite(shifted) and attempts < self.max_grow:
            radius *= self.grow_factor
            shifted = self._shifted_matrix(result, radius)
            attempts += 1
        if not is_positive_definite(shifted):
            raise RuntimeError(
                f"shell sparsification stayed indefinite up to radius "
                f"{radius:.3e} m; the layout may contain segments longer than "
                "any sensible shell"
            )
        n = result.size
        return InductanceBlocks(kind="L", blocks=[(list(range(n)), shifted)])
