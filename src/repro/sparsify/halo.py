"""Halo (return-limited) sparsification -- Shepard et al. (paper ref [15]).

"It is based on the assumption that the currents of signal lines return
within the region enclosed by the nearest same-direction power-ground
lines": each conductor's return current is assigned to the supply lines
bounding its *halo*, so

* couplings between conductors screened from each other by a supply line
  are dropped, and
* the retained partial inductances (self and mutual) are *shifted* by the
  mutual inductance to the assumed return at the halo boundary -- the
  same shift-truncate mathematics as the shell method, but with the
  radius determined by the actual power-grid geometry instead of a free
  parameter.

Without the shift, plain geometric dropping is just truncation by another
name and can lose positive definiteness; with it, every current is paired
with a nearby return and the matrix stays diagonally dominant.  This is a
geometric rule, so unlike :mod:`~repro.sparsify.shell` it needs to know
which nets are supply -- pass ``supply_nets``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.extraction.inductance import mutual_inductance_filaments
from repro.extraction.partial_matrix import PartialInductanceResult
from repro.sparsify.base import InductanceBlocks, Sparsifier
from repro.sparsify.stability import is_positive_definite


@dataclass
class HaloSparsifier(Sparsifier):
    """Return-limited inductances bounded by power/ground halos.

    Attributes:
        supply_nets: Names of power/ground/shield nets whose lines bound
            the halos and carry the assumed returns.
        min_overlap_fraction: A supply line blocks a pair only when it
            axially overlaps at least this fraction of the pair's common
            span (a short jog does not screen a long bus).
        same_layer_only: Restrict blocking to supply lines on the same
            layer (coplanar screening); ``False`` lets planes on other
            layers block too.
        shift: Apply the return-shift to retained entries (the actual
            return-limited formulation).  ``False`` gives the naive
            drop-only variant, kept for the ablation benchmark -- it can
            and does lose passivity.
    """

    supply_nets: tuple[str, ...] = ("VDD", "GND")
    min_overlap_fraction: float = 0.5
    same_layer_only: bool = True
    shift: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.min_overlap_fraction <= 1.0:
            raise ValueError("min_overlap_fraction must be in (0, 1]")

    # -- geometry helpers ---------------------------------------------------

    def _supply_indices(self, result: PartialInductanceResult) -> list[int]:
        return [
            k for k, s in enumerate(result.segments)
            if s.net in self.supply_nets
        ]

    def _halo_radius(
        self,
        result: PartialInductanceResult,
        i: int,
        supply_indices: list[int],
    ) -> float:
        """Distance from segment i to its nearest parallel supply return."""
        si = result.segments[i]
        best = math.inf
        for k in supply_indices:
            if k == i:
                continue
            sk = result.segments[k]
            if sk.direction.axis != si.direction.axis:
                continue
            if self.same_layer_only and sk.layer != si.layer:
                continue
            overlap = si.axial_overlap(sk)
            if overlap < self.min_overlap_fraction * si.length:
                continue
            best = min(best, si.transverse_distance(sk))
        return best

    def _blocked(
        self,
        result: PartialInductanceResult,
        i: int,
        j: int,
        supply_indices: list[int],
    ) -> bool:
        """True when a supply segment screens pair (i, j)."""
        si = result.segments[i]
        sj = result.segments[j]
        axis = si.direction.axis
        t_axis = 1 - axis
        ti = si.center[t_axis]
        tj = sj.center[t_axis]
        lo_t, hi_t = sorted((ti, tj))
        if hi_t - lo_t <= 0:
            return False  # vertically stacked pair; no coplanar screen
        span_lo = max(si.axis_start, sj.axis_start)
        span_hi = min(si.axis_end, sj.axis_end)
        pair_overlap = max(span_hi - span_lo, 0.0)
        if pair_overlap <= 0:
            span_lo = min(si.axis_start, sj.axis_start)
            span_hi = max(si.axis_end, sj.axis_end)
            pair_overlap = span_hi - span_lo
        for k in supply_indices:
            if k in (i, j):
                continue
            sk = result.segments[k]
            if sk.direction.axis != axis:
                continue
            if self.same_layer_only and (
                sk.layer != si.layer and sk.layer != sj.layer
            ):
                continue
            tk = sk.center[t_axis]
            if not lo_t < tk < hi_t:
                continue
            ov = min(sk.axis_end, span_hi) - max(sk.axis_start, span_lo)
            if ov >= self.min_overlap_fraction * pair_overlap:
                return True
        return False

    # -- the strategy ------------------------------------------------------------

    def apply(self, result: PartialInductanceResult) -> InductanceBlocks:
        segs = result.segments
        n = result.size
        supply_indices = self._supply_indices(result)
        matrix = result.matrix.copy()

        radii = [
            self._halo_radius(result, i, supply_indices) for i in range(n)
        ]

        if self.shift:
            # Self terms: pair every conductor's current with a return at
            # its halo boundary.
            for i in range(n):
                if math.isfinite(radii[i]):
                    matrix[i, i] -= mutual_inductance_filaments(
                        segs[i].axis_start, segs[i].axis_end,
                        segs[i].axis_start, segs[i].axis_end,
                        radii[i],
                    )

        for i in range(n):
            for j in range(i + 1, n):
                if matrix[i, j] == 0.0:
                    continue
                if not segs[i].is_parallel(segs[j]):
                    continue
                if self._blocked(result, i, j, supply_indices):
                    matrix[i, j] = matrix[j, i] = 0.0
                    continue
                if self.shift:
                    # The tighter of the two halos carries the assumed
                    # return; couplings to the bounding return itself
                    # shift to ~zero.
                    radius = min(radii[i], radii[j])
                    if math.isfinite(radius):
                        shift = mutual_inductance_filaments(
                            segs[i].axis_start, segs[i].axis_end,
                            segs[j].axis_start, segs[j].axis_end,
                            radius,
                        )
                        value = matrix[i, j] - shift
                        matrix[i, j] = matrix[j, i] = value

        if self.shift and not is_positive_definite(matrix):
            raise RuntimeError(
                "return-limited (halo) matrix lost positive definiteness; "
                "the layout's power grid is too sparse to bound the halos "
                "-- add returns or use the shell method"
            )
        return InductanceBlocks(kind="L", blocks=[(list(range(n)), matrix)])
