"""Stability / passivity checks for sparsified inductance matrices.

An RLC circuit built from a partial-inductance matrix is passive iff the
matrix is symmetric positive definite.  "The resulting matrix can become
non-positive definite, and the sparsified system becomes active and can
generate energy" -- the paper's core warning about naive truncation.
These helpers are how every strategy (and the test suite, and the
:mod:`repro.qa` sanitizer) verifies itself.
"""

from __future__ import annotations

import numpy as np

#: Default relative asymmetry tolerance: ``max|M - M^T|`` up to this
#: fraction of ``max|M|`` is treated as round-off (e.g. from K-matrix
#: inversion round trips) and symmetrized away rather than failing.
DEFAULT_SYM_TOL = 1e-8


def _asymmetry(matrix: np.ndarray) -> float:
    """Relative asymmetry ``max|M - M^T| / max|M|`` (0 for empty/zero M)."""
    scale = float(np.abs(matrix).max(initial=0.0))
    if scale == 0.0:
        return 0.0
    return float(np.abs(matrix - matrix.T).max()) / scale


def _as_square(matrix: np.ndarray) -> np.ndarray:
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got {m.shape}")
    return m


def is_positive_definite(
    matrix: np.ndarray, tol: float = 0.0, sym_tol: float = DEFAULT_SYM_TOL
) -> bool:
    """True when the (nearly) symmetric matrix is positive definite.

    Uses Cholesky (fast, numerically meaningful).  ``tol`` shifts the
    diagonal down first, so ``tol > 0`` demands strict margin.

    Asymmetry up to ``sym_tol`` (relative to the largest entry) is
    round-off -- K-matrix inversion round trips produce it -- and is
    symmetrized away; anything larger means the matrix is genuinely
    asymmetric and the answer is False.
    """
    m = _as_square(matrix)
    if m.size == 0:
        return True
    if _asymmetry(m) > sym_tol:
        return False
    sym = (m + m.T) / 2.0
    try:
        np.linalg.cholesky(sym - tol * np.eye(m.shape[0]))
        return True
    except np.linalg.LinAlgError:
        return False


def spd_margin(matrix: np.ndarray, sym_tol: float = DEFAULT_SYM_TOL) -> float:
    """Smallest eigenvalue of the symmetrized matrix: the SPD margin.

    Positive: the matrix is SPD with that much headroom.  Negative: it is
    indefinite by that much (how *active* a truncated system is).  A
    matrix whose asymmetry exceeds ``sym_tol`` is not meaningfully SPD at
    all and returns ``-inf``.

    This is the single number the :mod:`repro.qa` sanitizer and the ERC
    passivity rule threshold against.
    """
    m = _as_square(matrix)
    if m.size == 0:
        return np.inf
    if _asymmetry(m) > sym_tol:
        return -np.inf
    return float(np.linalg.eigvalsh((m + m.T) / 2.0)[0])


def min_eigenvalue(matrix: np.ndarray) -> float:
    """Smallest eigenvalue of a symmetric matrix.

    Negative values quantify *how* non-passive a truncated matrix is; the
    ablation benchmark reports this alongside the transient blow-up.
    Unlike :func:`spd_margin` this never checks symmetry -- the caller
    asserts it.
    """
    m = np.asarray(matrix, dtype=float)
    return float(np.linalg.eigvalsh((m + m.T) / 2.0)[0])


def sparsity_ratio(matrix: np.ndarray) -> float:
    """Fraction of off-diagonal entries that are exactly zero."""
    m = np.asarray(matrix)
    n = m.shape[0]
    if n <= 1:
        return 1.0
    off_total = n * (n - 1)
    off_nonzero = np.count_nonzero(m) - np.count_nonzero(np.diagonal(m))
    return 1.0 - off_nonzero / off_total
