"""Stability / passivity checks for sparsified inductance matrices.

An RLC circuit built from a partial-inductance matrix is passive iff the
matrix is symmetric positive definite.  "The resulting matrix can become
non-positive definite, and the sparsified system becomes active and can
generate energy" -- the paper's core warning about naive truncation.
These helpers are how every strategy (and the test suite) verifies itself.
"""

from __future__ import annotations

import numpy as np


def is_positive_definite(matrix: np.ndarray, tol: float = 0.0) -> bool:
    """True when the symmetric matrix is positive definite.

    Uses Cholesky (fast, numerically meaningful).  ``tol`` shifts the
    diagonal down first, so ``tol > 0`` demands strict margin.
    """
    m = np.asarray(matrix, dtype=float)
    if m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got {m.shape}")
    if not np.allclose(m, m.T, rtol=1e-9, atol=0.0):
        return False
    try:
        np.linalg.cholesky(m - tol * np.eye(m.shape[0]))
        return True
    except np.linalg.LinAlgError:
        return False


def min_eigenvalue(matrix: np.ndarray) -> float:
    """Smallest eigenvalue of a symmetric matrix.

    Negative values quantify *how* non-passive a truncated matrix is; the
    ablation benchmark reports this alongside the transient blow-up.
    """
    m = np.asarray(matrix, dtype=float)
    return float(np.linalg.eigvalsh((m + m.T) / 2.0)[0])


def sparsity_ratio(matrix: np.ndarray) -> float:
    """Fraction of off-diagonal entries that are exactly zero."""
    m = np.asarray(matrix)
    n = m.shape[0]
    if n <= 1:
        return 1.0
    off_total = n * (n - 1)
    off_nonzero = np.count_nonzero(m) - np.count_nonzero(np.diagonal(m))
    return 1.0 - off_nonzero / off_total
