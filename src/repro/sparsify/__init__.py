"""Sparsification of the partial-inductance matrix (paper Section 4).

The dense PEEC inductance matrix makes direct simulation "infeasible due
to impractical time and memory requirements".  This package implements the
paper's catalog of remedies:

* :mod:`~repro.sparsify.truncation` -- naive threshold truncation, which
  can destroy positive definiteness (the paper's cautionary tale).
* :mod:`~repro.sparsify.block_diagonal` -- topology-partitioned blocks,
  passive by construction.
* :mod:`~repro.sparsify.shell` -- Krauter's shift-truncate shell method.
* :mod:`~repro.sparsify.halo` -- Shepard's return-limited halo rule.
* :mod:`~repro.sparsify.kmatrix` -- Devgan's inverse-inductance K element.
* :mod:`~repro.sparsify.hierarchical` -- H-matrix/ACA assembly adapter
  with an SPD guard and exact-assembly fallback.
* :mod:`~repro.sparsify.stability` -- positive-definiteness / passivity
  checks shared by all of them.

Every strategy implements :class:`Sparsifier`: partial-L matrix in,
:class:`InductanceBlocks` out; the PEEC circuit builder consumes the
blocks directly.
"""

from repro.sparsify.base import DenseInductance, InductanceBlocks, Sparsifier
from repro.sparsify.hierarchical import HierarchicalSparsifier
from repro.sparsify.truncation import TruncationSparsifier
from repro.sparsify.block_diagonal import BlockDiagonalSparsifier
from repro.sparsify.shell import ShellSparsifier
from repro.sparsify.halo import HaloSparsifier
from repro.sparsify.kmatrix import KMatrixSparsifier
from repro.sparsify.stability import (
    is_positive_definite,
    min_eigenvalue,
    sparsity_ratio,
    spd_margin,
)

__all__ = [
    "Sparsifier",
    "InductanceBlocks",
    "DenseInductance",
    "TruncationSparsifier",
    "BlockDiagonalSparsifier",
    "ShellSparsifier",
    "HaloSparsifier",
    "HierarchicalSparsifier",
    "KMatrixSparsifier",
    "is_positive_definite",
    "min_eigenvalue",
    "sparsity_ratio",
    "spd_margin",
]
