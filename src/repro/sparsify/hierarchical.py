"""Hierarchical (H-matrix) assembly exposed as a sparsifier strategy.

The paper's Section-4 catalog trades accuracy for tractability *after*
an exact dense extraction; the hierarchical engine
(:mod:`repro.extraction.hierarchical`) instead never forms the dense
matrix -- distant cluster pairs are compressed to low-rank ACA blocks at
assembly time.  Wrapping it in the :class:`~repro.sparsify.base.
Sparsifier` interface lets the existing PEEC/MNA pipeline and the
scenario sweep engine consume it exactly like truncation or shell,
with one crucial difference in the safety story:

ACA truncation is a *controlled* perturbation (relative Frobenius
tolerance per block), but -- like any perturbation of an SPD matrix --
a loose enough tolerance can push the materialized matrix off the SPD
cone.  The adapter therefore runs the QA passivity check
(:func:`repro.sparsify.stability.is_positive_definite`) on the
materialization and, on failure, **falls back to the exact dense
assembly**, recording the downgrade in the active
:class:`~repro.resilience.report.RunReport` exactly like the existing
sparsifier degradation chain (shell -> blockdiag -> dense).  A
hierarchical run is therefore never less passive than an exact run.
"""

from __future__ import annotations

from repro.extraction.partial_matrix import PartialInductanceResult
from repro.sparsify.base import InductanceBlocks, Sparsifier
from repro.sparsify.stability import is_positive_definite


class HierarchicalSparsifier(Sparsifier):
    """Consume (or build) a hierarchical operator; guard with SPD check.

    Args:
        eta: Admissibility parameter for far-field clustering (used only
            when the extraction result is not already hierarchical).
        tol: ACA relative-error tolerance per far block.
        leaf_size: Cluster-tree leaf size.
        spd_tol: Slack passed to the passivity check -- the materialized
            matrix must be positive definite even after subtracting
            ``spd_tol * I``.  The default 0.0 is the plain SPD check;
            tests raise it to force (and verify) the exact fallback.
    """

    def __init__(
        self,
        eta: float | None = None,
        tol: float | None = None,
        leaf_size: int | None = None,
        spd_tol: float = 0.0,
    ) -> None:
        self.eta = eta
        self.tol = tol
        self.leaf_size = leaf_size
        self.spd_tol = spd_tol

    def _operator_result(self, result: PartialInductanceResult):
        """Reuse the result's operator, or build one from its segments."""
        if hasattr(result, "operator"):
            return result
        from repro.extraction.hierarchical import extract_hierarchical

        kwargs = {}
        if self.eta is not None:
            kwargs["eta"] = self.eta
        if self.tol is not None:
            kwargs["tol"] = self.tol
        if self.leaf_size is not None:
            kwargs["leaf_size"] = self.leaf_size
        return extract_hierarchical(result.segments, **kwargs)

    def apply(self, result: PartialInductanceResult) -> InductanceBlocks:
        from repro.obs import metrics as obs_metrics
        from repro.resilience.report import current_run_report

        hier = self._operator_result(result)
        dense = hier.matrix
        n = dense.shape[0]
        if is_positive_definite(dense, tol=self.spd_tol):
            return InductanceBlocks(
                kind="L", blocks=[(list(range(n)), dense.copy())]
            )
        # ACA truncation broke passivity: fall back to exact assembly,
        # on the record -- same contract as shell -> blockdiag -> dense.
        obs_metrics.counter("sparsify.hierarchical.spd_fallbacks").inc()
        report = current_run_report()
        if report is not None:
            report.record_downgrade(
                "sparsify", "hierarchical", "exact",
                "hierarchical materialization failed the SPD/passivity "
                f"check (spd_tol={self.spd_tol:g}); reassembling exactly",
            )
        exact = self._exact_matrix(result)
        return InductanceBlocks(
            kind="L", blocks=[(list(range(exact.shape[0])), exact)]
        )

    def _exact_matrix(self, result: PartialInductanceResult):
        """The exact dense matrix for the fallback path."""
        if hasattr(result, "operator"):
            from repro.extraction.partial_matrix import (
                extract_partial_inductance,
            )

            return extract_partial_inductance(result.segments).matrix.copy()
        return result.matrix.copy()


__all__ = ["HierarchicalSparsifier"]
