"""Loop-model netlist construction (paper Figure 3c).

"A netlist is then constructed with the resistance and loop inductance of
the signal and ground grid, at one frequency ... Note that all the
interconnect and load capacitance is modeled as a lumped capacitance at
the receiver end of the signal interconnect.  The lumped RLC circuit
representation can be improved by increasing the number of RLC-pi
segments."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import GROUND, Circuit
from repro.loop.extractor import LoopExtractionResult
from repro.loop.ladder import LadderModel


@dataclass
class LoopModelSpec:
    """How to lump the extracted loop impedance into a netlist.

    Attributes:
        frequency: Extraction frequency for the single-frequency R/L lump
            [Hz]; pick near the signal's significant-spectrum knee
            (~0.35 / rise time).
        num_sections: RLC-pi sections ("increasing the number of RLC-pi
            segments" improves the lumped representation).
        ladder: Use the R0/L0/R1/L1 ladder instead of single-frequency R/L
            (``frequency`` then selects nothing; the ladder carries the
            frequency dependence).
    """

    frequency: float = 1e9
    num_sections: int = 1
    ladder: LadderModel | None = None

    def __post_init__(self) -> None:
        if self.num_sections < 1:
            raise ValueError("num_sections must be >= 1")
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")


def build_loop_circuit(
    extraction: LoopExtractionResult,
    total_capacitance: float,
    spec: LoopModelSpec | None = None,
    circuit: Circuit | None = None,
    driver_node: str = "drv",
    receiver_node: str = "rcv",
    prefix: str = "loop",
) -> Circuit:
    """Build the Figure-3c lumped loop-model netlist.

    The loop R/L (signal + return path combined, as the port sees them) is
    split across ``num_sections`` series sections; the capacitance is
    placed at the section boundaries with the receiver end carrying a
    section's full share -- for one section that is the paper's "all the
    capacitance lumped at the receiver".

    Args:
        extraction: Loop extraction result providing Z(f).
        total_capacitance: Interconnect + load capacitance to lump [F].
        spec: Lumping options.
        circuit: Existing circuit to extend; a fresh one is created
            otherwise.
        driver_node: Node name at the driving-gate side.
        receiver_node: Node name at the receiver side.
        prefix: Element-name prefix.

    Returns:
        The circuit containing the loop model.
    """
    spec = spec or LoopModelSpec()
    if total_capacitance <= 0:
        raise ValueError("total_capacitance must be positive")
    circuit = circuit or Circuit("loop_model")

    n = spec.num_sections
    nodes = [driver_node] + [
        circuit.node(f"{prefix}:s{k}") for k in range(1, n)
    ] + [receiver_node]

    if spec.ladder is not None:
        section_models = [
            LadderModel(
                r0=spec.ladder.r0 / n,
                l0=spec.ladder.l0 / n,
                r1=spec.ladder.r1 / n,
                l1=spec.ladder.l1 / n,
            )
            for _ in range(n)
        ]
        for k, model in enumerate(section_models):
            model.add_to_circuit(
                circuit, nodes[k], nodes[k + 1], prefix=f"{prefix}:lad{k}"
            )
    else:
        z = extraction.at(spec.frequency)
        omega = 2.0 * 3.141592653589793 * spec.frequency
        loop_r = z.real
        loop_l = z.imag / omega
        if loop_r <= 0 or loop_l <= 0:
            raise ValueError(
                f"extracted loop impedance at {spec.frequency:.3g} Hz is not "
                f"inductive-resistive (Z = {z}); check the port"
            )
        for k in range(n):
            circuit.add_series_rl(
                f"{prefix}:sec{k}",
                nodes[k],
                nodes[k + 1],
                loop_r / n,
                loop_l / n,
            )

    # Capacitance at section boundaries; single-section puts it all at the
    # receiver (the paper's Figure 3c).
    c_each = total_capacitance / n
    for k in range(1, n + 1):
        circuit.add_capacitor(f"{prefix}:C{k}", nodes[k], GROUND, c_each)
    return circuit
