"""Two-frequency ladder fit for frequency-dependent loop R and L.

Krauter & Pileggi (paper ref [5], Figure 3d): "the loop impedance is
extracted at two frequencies, and the parameters R0, L0, R1 and L1 used in
the ladder circuit are computed."  The ladder::

    Z(s) = R0 + s L0 + (R1 * s L1) / (R1 + s L1)

has the right physics built in: at low frequency current uses the full
return cross-section (Z -> R0 + s(L0 + L1)), at high frequency it crowds
into the low-inductance path (Z -> (R0 + R1) + s L0).  R rises and L falls
monotonically between those asymptotes, matching Figure 3(b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.circuit.netlist import Circuit

#: Relative tolerance within which a flat-or-slightly-inverted R(f)/L(f)
#: trend is treated as boundary noise (clamped) rather than rejected.
FLAT_REL_TOL = 1e-3

#: Relative floor the clamped shunt-branch parameters are lifted to; tiny
#: enough to leave the fitted Z(f) unchanged at any practical precision,
#: positive enough to satisfy the ladder's strict positivity.
POSITIVE_REL_FLOOR = 1e-9

#: Smallest normal float; keeps log-space refinement exp() output positive.
_TINY = float(np.finfo(float).tiny)

#: Log-parameter bound for the refinement.  exp(+/-150) spans 1e-66 to
#: 1e65 -- far beyond any physical R [ohm] or L [H] -- while keeping every
#: product in Z(f) (r1 * s * l1 at s up to ~1e13) clear of float overflow.
#: LM excursions beyond it carry no information about the fit.
_LOG_BOUND = 150.0


def _params_from_log(log_params: np.ndarray) -> np.ndarray:
    """exp() of clipped log-parameters, lifted to the smallest normal.

    The optimizer pushes a clamped boundary parameter hard toward +/-inf
    in log space; unclipped, exp() overflows (warning -> error under the
    test suite's warning filter) or underflows to 0.0 (violating the
    ladder's strict positivity).
    """
    return np.maximum(
        np.exp(np.clip(log_params, -_LOG_BOUND, _LOG_BOUND)), _TINY
    )


@dataclass(frozen=True)
class LadderModel:
    """Fitted R0/L0/R1/L1 ladder (Figure 3d).

    Attributes:
        r0: Series resistance [ohm] (low-frequency resistance).
        l0: Series inductance [H] (high-frequency inductance).
        r1: Shunt-branch resistance [ohm]; R0+R1 is the high-frequency
            resistance.
        l1: Shunt-branch inductance [H]; L0+L1 is the low-frequency
            inductance.
    """

    r0: float
    l0: float
    r1: float
    l1: float

    def __post_init__(self) -> None:
        for field_name in ("r0", "l0", "r1", "l1"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"ladder parameter {field_name} must be positive")

    def impedance(self, frequencies) -> np.ndarray:
        """Complex Z(f) of the ladder."""
        f = np.asarray(frequencies, dtype=float)
        s = 2j * np.pi * f
        return self.r0 + s * self.l0 + (self.r1 * s * self.l1) / (
            self.r1 + s * self.l1
        )

    def resistance(self, frequencies) -> np.ndarray:
        """Effective series resistance R(f) [ohm]."""
        return np.real(self.impedance(frequencies))

    def inductance(self, frequencies) -> np.ndarray:
        """Effective series inductance L(f) [H]."""
        f = np.asarray(frequencies, dtype=float)
        omega = 2.0 * np.pi * f
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                omega > 0, np.imag(self.impedance(f)) / omega, self.l0 + self.l1
            )

    def add_to_circuit(
        self, circuit: Circuit, n1: str, n2: str, prefix: str = "lad"
    ) -> None:
        """Stamp the ladder between two circuit nodes.

        Topology: n1 --R0--(a)--L0--(b)-- n2 with the R1 || L1 pair in
        series at (b): n1-R0-a, a-L0-b, b-{R1 || L1}-n2.
        """
        a = circuit.node(f"{prefix}:a")
        b = circuit.node(f"{prefix}:b")
        circuit.add_resistor(f"{prefix}:R0", n1, a, self.r0)
        circuit.add_inductor(f"{prefix}:L0", a, b, self.l0)
        circuit.add_resistor(f"{prefix}:R1", b, n2, self.r1)
        circuit.add_inductor(f"{prefix}:L1", b, n2, self.l1)


def fit_ladder(
    f_low: float,
    z_low: complex,
    f_high: float,
    z_high: complex,
    refine: bool = True,
) -> LadderModel:
    """Fit the ladder to loop impedance samples at two frequencies.

    The asymptotic seed assumes ``f_low`` is near-DC and ``f_high`` is deep
    in the current-crowded regime::

        R0 = R(f_low)     L0 = L(f_high)
        R1 = R(f_high) - R(f_low)     L1 = L(f_low) - L(f_high)

    and, when ``refine`` is set, a least-squares polish makes the ladder
    interpolate both samples exactly (4 real equations, 4 unknowns).

    Nearly frequency-independent samples -- R(f) and/or L(f) flat to
    within :data:`FLAT_REL_TOL` -- sit on the boundary of what the ladder
    can represent (R1 or L1 -> 0); the shunt-branch seed is clamped to a
    tiny positive floor instead of raising, so extractions of structures
    with negligible skin/proximity effect still fit.

    Raises:
        ValueError: The samples show a clearly *inverted* trend the
            ladder cannot represent (R falling or L rising with
            frequency by more than :data:`FLAT_REL_TOL` relative).
    """
    if f_high <= f_low:
        raise ValueError("need f_high > f_low")
    w_low = 2.0 * np.pi * f_low
    w_high = 2.0 * np.pi * f_high
    r_low, l_low = z_low.real, z_low.imag / w_low
    r_high, l_high = z_high.real, z_high.imag / w_high
    dr = r_high - r_low
    dl = l_low - l_high
    r_scale = max(abs(r_low), abs(r_high))
    l_scale = max(abs(l_low), abs(l_high))
    if dr < -FLAT_REL_TOL * r_scale or dl < -FLAT_REL_TOL * l_scale:
        raise ValueError(
            f"samples not fittable by the ladder: need R rising "
            f"({r_low:.4g} -> {r_high:.4g}) and L falling "
            f"({l_low:.4g} -> {l_high:.4g}) with frequency"
        )
    r1 = max(dr, POSITIVE_REL_FLOOR * r_scale, _TINY)
    l1 = max(dl, POSITIVE_REL_FLOOR * l_scale, _TINY)
    seed = np.array([r_low, l_high, r1, l1])

    if not refine:
        return LadderModel(*seed)

    targets = np.array([z_low.real, z_low.imag, z_high.real, z_high.imag])
    scale = np.abs(targets).max()

    # Optimize in log space: parameters stay positive and the objective is
    # smooth (an abs() reparametrization has a kink that stalls LM).
    def residuals(log_params: np.ndarray) -> np.ndarray:
        model = LadderModel(*_params_from_log(log_params))
        z = model.impedance([f_low, f_high])
        return (
            np.array([z[0].real, z[0].imag, z[1].real, z[1].imag]) - targets
        ) / scale

    sol = scipy.optimize.least_squares(
        residuals, np.log(seed), method="lm",
        xtol=1e-15, ftol=1e-15, gtol=1e-15, max_nfev=5000,
    )
    return LadderModel(*_params_from_log(sol.x))
