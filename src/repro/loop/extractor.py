"""FastHenry-style frequency-dependent loop R/L extraction.

"The loop inductance model defines a port at the driver side of the signal
line and shorts the receiver side (which actually sees a capacitive load)
to the local ground, since inductance extraction is performed independent
of capacitance.  Typically, an extraction tool such as FastHenry is used
to obtain the impedance over a frequency range."  (Paper, Section 5.)

The physics: each conductor is subdivided into parallel filaments, each a
resistance in series with its partial self inductance and fully mutually
coupled to every other filament.  Solving the resulting R + jwL network at
each frequency lets current redistribute among filaments, which is exactly
how skin and proximity effects make R rise and L fall with frequency
(Figure 3b).  We solve the dense system directly -- multipole acceleration
(FastHenry's contribution) only matters at far larger problem sizes.

Capacitance is deliberately ignored; that omission is the loop model's
central accuracy limitation ("the interconnect and device decoupling
capacitances strongly affect current return paths"), quantified by the
Figure-4/Table-1 benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuit.linalg import SingularCircuitError
from repro.circuit.netlist import Circuit
from repro.obs.trace import span
from repro.resilience import faults
from repro.resilience.checkpoint import (
    CheckpointConfig,
    finish_checkpoint,
    load_checkpoint,
    save_checkpoint,
    verify_fingerprint,
)
from repro.resilience.faults import InjectedFault
from repro.resilience.policy import ResiliencePolicy, default_policy
from repro.resilience.report import RunReport, activate, current_run_report
from repro.extraction.filaments import FilamentGrid, filaments_for_skin_depth
from repro.extraction.partial_matrix import extract_partial_inductance
from repro.extraction.resistance import resistivity_of, segment_resistance
from repro.geometry.clocktree import TapPoint
from repro.geometry.layout import Layout, quantize_point
from repro.geometry.segment import Direction, Segment


@dataclass(frozen=True)
class LoopPort:
    """The two-terminal port of a loop extraction.

    Attributes:
        signal: Tap on the signal net at the driver end.
        reference: Tap on the return (ground) net near the driver.
        short_signal: Tap on the signal net at the receiver end.
        short_reference: Tap on the return net near the receiver; the
            receiver end is shorted here.
    """

    signal: TapPoint
    reference: TapPoint
    short_signal: TapPoint
    short_reference: TapPoint


@dataclass
class LoopExtractionResult:
    """Loop impedance over frequency.

    Attributes:
        frequencies: Sweep frequencies [Hz].
        impedance: Complex loop impedance Z(f) [ohm].
        num_filaments: Total filament branches in the solve.
        report: Resilience log (retries, checkpoints) when the sweep ran
            through the checkpointed path.
    """

    frequencies: np.ndarray
    impedance: np.ndarray
    num_filaments: int
    report: RunReport | None = None

    @property
    def resistance(self) -> np.ndarray:
        """Loop resistance R(f) [ohm]."""
        return np.real(self.impedance)

    @property
    def inductance(self) -> np.ndarray:
        """Loop inductance L(f) [H]; the DC entry (f == 0) is NaN."""
        omega = 2.0 * np.pi * self.frequencies
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                omega > 0.0, np.imag(self.impedance) / omega, np.nan
            )

    def at(self, frequency: float) -> complex:
        """Complex impedance at one frequency.

        Exact stored values are returned at grid points; between points,
        R and X are interpolated linearly.  The sweep grid is sorted
        internally first -- ``np.interp`` silently returns garbage for
        descending or unsorted abscissae, which is exactly what a
        high-to-low sweep produces.
        """
        freqs = np.asarray(self.frequencies, dtype=float)
        order = np.argsort(freqs, kind="stable")
        freqs = freqs[order]
        z = np.asarray(self.impedance)[order]
        i = int(np.searchsorted(freqs, frequency))
        if i < len(freqs) and freqs[i] == frequency:
            return complex(z[i])
        re = np.interp(frequency, freqs, z.real)
        im = np.interp(frequency, freqs, z.imag)
        return complex(re, im)


def _build_rl_circuit(
    segments: list[Segment],
    layout: Layout,
    grid_for_segment,
    assembly: str = "exact",
    eta: float | None = None,
    tol: float | None = None,
    leaf_size: int | None = None,
) -> tuple[Circuit, dict[tuple[int, int, int], str]]:
    """RL filament circuit over the given segments.

    Each parent segment's filaments share its end nodes (they are bonded at
    the segment boundaries, the standard FastHenry discretization).  With
    ``assembly="hierarchical"`` the filament coupling is stamped as an
    :class:`~repro.circuit.elements.OperatorInductorSet`, so the sweep
    stays matrix-free end to end (no dense L is ever materialized).
    """
    filaments: list[Segment] = []
    fil_parent: list[Segment] = []
    for seg in segments:
        grid: FilamentGrid = grid_for_segment(seg)
        for fil in grid.split_segment(seg):
            filaments.append(fil)
            fil_parent.append(seg)

    extraction = extract_partial_inductance(
        filaments, assembly=assembly, eta=eta, tol=tol, leaf_size=leaf_size
    )

    circuit = Circuit("loop_extraction")
    node_by_point: dict[tuple[int, int, int], str] = {}

    def node_for(point: tuple[float, float, float]) -> str:
        key = quantize_point(point)
        name = node_by_point.get(key)
        if name is None:
            name = f"n{len(node_by_point)}"
            node_by_point[key] = name
        return name

    layer_of = {layer.name: layer for layer in layout.layers}
    branches = []
    for k, fil in enumerate(filaments):
        parent = fil_parent[k]
        a, b = parent.endpoints()  # bond filaments at parent terminals
        na = node_for(a)
        mid = circuit.node(f"m{k}")
        circuit.add_resistor(
            f"R{k}", na, mid, segment_resistance(fil, layer_of[fil.layer])
        )
        branches.append((mid, node_for(b)))
    operator = getattr(extraction, "operator", None)
    if operator is not None:
        circuit.add_inductor_operator_set("Lf", tuple(branches), operator)
    else:
        circuit.add_inductor_set("Lf", tuple(branches), extraction.matrix)

    for via in layout.vias:
        bottom, top = layout.via_endpoints(via)
        kb, kt = quantize_point(bottom), quantize_point(top)
        if kb in node_by_point and kt in node_by_point:
            from repro.extraction.resistance import via_resistance

            circuit.add_resistor(
                f"Rv_{via.name}", node_by_point[kb], node_by_point[kt],
                via_resistance(via),
            )
    return circuit, node_by_point


def _node_at_tap(
    layout: Layout,
    node_by_point: dict[tuple[int, int, int], str],
    tap: TapPoint,
    segments: list[Segment],
) -> str:
    layer = layout.layer(tap.layer)
    target = (tap.x, tap.y, layer.z_center)
    key = quantize_point(target)
    if key in node_by_point:
        return node_by_point[key]
    # Nearest terminal of the tap's net.
    best, best_d = None, math.inf
    for seg in segments:
        if seg.net != tap.net:
            continue
        for point in seg.endpoints():
            d = math.dist(point, target)
            if d < best_d:
                best, best_d = quantize_point(point), d
    if best is None or best not in node_by_point:
        raise KeyError(f"no node found near tap {tap.name!r} on net {tap.net!r}")
    if best_d > 2e-6:
        raise ValueError(
            f"nearest terminal to tap {tap.name!r} is {best_d:.2e} m away; "
            "check the port definition"
        )
    return node_by_point[best]


def _sweep_impedance(
    circuit: Circuit,
    freqs: np.ndarray,
    port_nodes: tuple[str, str],
    gmin: float,
    policy: ResiliencePolicy,
    checkpoint: CheckpointConfig | None,
    report: RunReport,
    workers: int | None = None,
) -> np.ndarray:
    """Per-frequency impedance sweep with retries and checkpointing.

    Functionally identical to :func:`repro.circuit.ac.ac_impedance`, but
    each frequency point is an individually retried unit of work
    (``"loop.freq"`` fault site) and completed points are periodically
    snapshotted, so a killed sweep resumes instead of restarting.

    With ``workers > 1`` the remaining points fan out over a process
    pool (:mod:`repro.perf.parallel`); results are placed by index so
    the impedance array is bit-identical to the serial sweep, and
    checkpoints are written from completed-chunk results at the same
    ``checkpoint.interval`` granularity.
    """
    from repro.circuit.linalg import (
        ResilientFactorization, SweepAssembler, add_gmin,
    )
    from repro.circuit.mna import MNASystem

    system = MNASystem(circuit)
    g_matrix, c_matrix = system.build_matrices()
    g_matrix = add_gmin(g_matrix, system.n, gmin)
    b = np.zeros(system.size, dtype=complex)
    i_plus = system.node_index(port_nodes[0])
    i_minus = system.node_index(port_nodes[1])
    if i_plus >= 0:
        b[i_plus] += 1.0
    if i_minus >= 0:
        b[i_minus] -= 1.0

    z = np.zeros(len(freqs), dtype=complex)
    done = np.zeros(len(freqs), dtype=bool)

    fingerprint = {
        "size": int(system.size),
        "num_freqs": int(len(freqs)),
        "f_min": float(freqs.min()),
        "f_max": float(freqs.max()),
        "gmin": float(gmin),
        "port": list(port_nodes),
    }
    if checkpoint is not None and checkpoint.resume and checkpoint.path.exists():
        snap = load_checkpoint(checkpoint.path)
        verify_fingerprint(snap, "loop-sweep", fingerprint, checkpoint.path)
        if not np.allclose(snap.arrays["frequencies"], freqs):
            from repro.resilience.checkpoint import CheckpointMismatch

            raise CheckpointMismatch(
                f"{checkpoint.path}: checkpointed frequency grid differs"
            )
        z = np.asarray(snap.arrays["z"], dtype=complex)
        done = np.asarray(snap.arrays["done"], dtype=bool)
        report.record_resume(
            "loop",
            f"resumed from {checkpoint.path}: "
            f"{int(done.sum())}/{len(freqs)} frequencies already solved",
        )

    def save(reason: str) -> None:
        meta = {
            "fingerprint": fingerprint,
            "reason": reason,
            "args": {"gmin": float(gmin), "port": list(port_nodes)},
        }
        deck = _loop_deck(circuit)
        if deck is not None:
            meta["deck"] = deck
        save_checkpoint(
            checkpoint.path, "loop-sweep", meta,
            {"frequencies": freqs, "z": z, "done": done},
        )
        report.record_checkpoint(
            "loop",
            f"{int(done.sum())}/{len(freqs)} frequencies -> "
            f"{checkpoint.path} ({reason})",
        )

    from repro.perf.parallel import (
        MIN_PARALLEL_SIZE, SweepSpec, explicit_workers, parallel_sweep,
        worker_count,
    )

    num_workers = worker_count(workers)
    if num_workers > 1 and int((~done).sum()) > 1 and (
        explicit_workers(workers) or system.size >= MIN_PARALLEL_SIZE
    ):
        spec = SweepSpec(
            g_matrix=g_matrix,
            c_matrix=c_matrix,
            b=b,
            site="loop",
            retry_site="loop.freq",
            policy=policy,
            port=(i_plus, i_minus),
        )
        since = 0

        def on_chunk(idx: np.ndarray) -> None:
            nonlocal since
            done[idx] = True
            since += len(idx)
            if (
                checkpoint is not None
                and since >= checkpoint.interval
                and not done.all()
            ):
                save("periodic")
                since = 0

        with activate(report):
            try:
                parallel_sweep(
                    spec, freqs, z,
                    indices=np.nonzero(~done)[0],
                    workers=num_workers,
                    chunk=checkpoint.interval if checkpoint is not None else None,
                    report=report,
                    on_chunk=on_chunk,
                )
            except (SingularCircuitError, InjectedFault):
                if checkpoint is not None:
                    save("emergency: parallel sweep failed")
                raise
        finish_checkpoint(checkpoint)
        return z

    since_checkpoint = 0
    # Union pattern (or operator system) assembled once up front; each
    # frequency point only writes a fresh data vector / builds a thin
    # OperatorSystem around the shared preconditioner pattern.
    assembler = SweepAssembler(g_matrix, c_matrix)
    with activate(report):
        for i, f in enumerate(freqs):
            if done[i]:
                continue
            omega = 2.0 * np.pi * f
            a_matrix = assembler.at_omega(omega)
            retries = 0
            while True:
                try:
                    faults.maybe_fail("loop.freq")
                    x = ResilientFactorization(
                        a_matrix, site="loop", policy=policy
                    ).solve(b)
                    break
                except (SingularCircuitError, InjectedFault) as exc:
                    if retries < policy.max_retries:
                        retries += 1
                        report.record_retry(
                            "loop",
                            f"f = {f:.4g} Hz: retry "
                            f"{retries}/{policy.max_retries}: {exc}",
                        )
                        continue
                    if checkpoint is not None:
                        save(f"emergency: f = {f:.4g} Hz failed")
                    raise
            vp = x[i_plus] if i_plus >= 0 else 0.0
            vm = x[i_minus] if i_minus >= 0 else 0.0
            z[i] = vp - vm
            done[i] = True
            since_checkpoint += 1
            if (
                checkpoint is not None
                and since_checkpoint >= checkpoint.interval
                and not done.all()
            ):
                save("periodic")
                since_checkpoint = 0

    finish_checkpoint(checkpoint)
    return z


def _loop_deck(circuit: Circuit) -> str | None:
    """SPICE text of the sweep circuit, for CLI resume; None if too big."""
    import io

    from repro.io.spice import write_spice

    out = io.StringIO()
    try:
        write_spice(circuit, out)
    except ValueError:
        return None
    text = out.getvalue()
    if len(text) > 8_000_000:
        return None
    return text


def extract_loop_impedance(
    layout: Layout,
    port: LoopPort,
    frequencies,
    max_segment_length: float | None = None,
    filaments: FilamentGrid | str = "auto",
    short_resistance: float = 1e-6,
    assembly: str = "exact",
    eta: float | None = None,
    tol: float | None = None,
    leaf_size: int | None = None,
    policy: ResiliencePolicy | None = None,
    checkpoint: CheckpointConfig | None = None,
    workers: int | None = None,
) -> LoopExtractionResult:
    """Extract loop impedance Z(f) at the driver port (Figure 3b).

    Args:
        layout: Signal + return conductors (capacitance is ignored).
        port: Driver-side port and receiver-side short definition.
        frequencies: Sweep frequencies [Hz].
        max_segment_length: Optional axial re-segmentation before filament
            subdivision (finer segmentation captures non-uniform axial
            current in long structures).
        filaments: ``"auto"`` sizes the cross-section subdivision for the
            highest sweep frequency per layer; or pass an explicit grid.
        short_resistance: Resistance of the receiver-end short [ohm].
        assembly: ``"exact"`` stamps the dense partial-L matrix;
            ``"hierarchical"`` stamps the compressed operator and the
            sweep solves matrix-free through the Krylov rung -- the dense
            L is never materialized.
        eta: Hierarchical admissibility parameter (hierarchical only).
        tol: Hierarchical ACA tolerance (hierarchical only).
        leaf_size: Hierarchical cluster-tree leaf size (hierarchical
            only).
        policy: Resilience policy (escalation and per-frequency retry
            budget); default from ``REPRO_RESILIENCE``.
        checkpoint: Periodic snapshotting of completed sweep points; a
            killed sweep resumes from the checkpoint (``repro resume``).
        workers: Process-pool width for the frequency sweep; default
            from ``REPRO_WORKERS`` (else the CPU count).  The parallel
            sweep is bit-identical to the serial one; 1 forces serial.

    Returns:
        The extraction result; ``resistance`` / ``inductance`` give R(f),
        L(f).
    """
    freqs = np.asarray(list(frequencies), dtype=float)
    if len(freqs) == 0:
        raise ValueError("frequencies must be non-empty")
    f_max = float(freqs.max())

    segments: list[Segment] = []
    for seg in layout.segments:
        if seg.direction == Direction.Z:
            continue
        if max_segment_length is not None and seg.length > max_segment_length:
            segments.extend(seg.split(int(math.ceil(seg.length / max_segment_length))))
        else:
            segments.append(seg)

    layer_of = {layer.name: layer for layer in layout.layers}

    def grid_for(seg: Segment) -> FilamentGrid:
        if isinstance(filaments, FilamentGrid):
            return filaments
        rho = resistivity_of(layer_of[seg.layer])
        return filaments_for_skin_depth(
            seg.width, seg.thickness, f_max, rho, max_per_axis=5
        )

    with span("loop.build", segments=len(segments)) as build_sp:
        circuit, node_by_point = _build_rl_circuit(
            segments, layout, grid_for,
            assembly=assembly, eta=eta, tol=tol, leaf_size=leaf_size,
        )

        sig_node = _node_at_tap(layout, node_by_point, port.signal, segments)
        ref_node = _node_at_tap(layout, node_by_point, port.reference, segments)
        short_a = _node_at_tap(
            layout, node_by_point, port.short_signal, segments
        )
        short_b = _node_at_tap(
            layout, node_by_point, port.short_reference, segments
        )
        circuit.add_resistor("Rshort", short_a, short_b, short_resistance)
        num_filaments = circuit.num_inductor_branches
        build_sp.attrs["filaments"] = num_filaments

    policy = policy or default_policy()
    report = current_run_report() or RunReport()
    with span("loop.sweep", points=len(freqs), filaments=num_filaments):
        z = _sweep_impedance(
            circuit, freqs, (sig_node, ref_node), 1e-12, policy, checkpoint,
            report, workers=workers,
        )
    return LoopExtractionResult(
        frequencies=freqs, impedance=z, num_filaments=num_filaments,
        report=report,
    )
