"""Loop-inductance extraction and modeling (paper Section 5).

The simplified alternative to the detailed PEEC model: define a port at
the driver side of a signal line, short the receiver side to local ground,
solve the R + jwL filament system over frequency (what FastHenry does,
minus the multipole acceleration we don't need at laptop scale), and lump
the result -- either at a single frequency (Figure 3c) or as the
two-frequency R0/L0/R1/L1 ladder (Figure 3d).
"""

from repro.loop.extractor import (
    LoopExtractionResult,
    LoopPort,
    extract_loop_impedance,
)
from repro.loop.ladder import LadderModel, fit_ladder
from repro.loop.model import LoopModelSpec, build_loop_circuit

__all__ = [
    "LoopPort",
    "LoopExtractionResult",
    "extract_loop_impedance",
    "LadderModel",
    "fit_ladder",
    "LoopModelSpec",
    "build_loop_circuit",
]
