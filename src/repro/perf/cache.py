"""Content-addressed memoization of dense partial-inductance extraction.

The Section-4 assembly (:func:`repro.extraction.partial_matrix.
extract_partial_inductance`) is a pure function of the segment geometry
and the close-pair parameters, yet every flow that touches the same
layout recomputes it from scratch: the Table-1 comparison alone extracts
the same power grid for the PEEC(RC), PEEC(RLC), and loop rows.  This
module memoizes those results behind a *content address* -- a SHA-256
fingerprint over the exact segment geometry (bit-exact float encoding,
no rounding) plus every value-affecting parameter -- so a repeated
extraction is a dictionary lookup, and any geometry or parameter change
produces a different key and therefore a recompute, never a stale hit.

Two storage tiers:

* an in-process :class:`LRUCache` (bounded; the matrices are dense), and
* an optional on-disk tier under ``REPRO_CACHE_DIR`` -- ``.npz`` files
  named by fingerprint, written atomically -- which survives across
  processes (parallel sweep workers, repeated CLI runs, CI).

Cache hits hand back a *copy* of the stored matrix: callers mutate
extraction matrices in place (the PEEC builder zeroes sub-threshold
mutuals), and a shared array would silently corrupt the cache.

``REPRO_EXTRACTION_CACHE=off`` disables both tiers (every call
recomputes); ``REPRO_CACHE_SIZE`` bounds the in-process tier.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Hashable, Iterable

import numpy as np

from repro.obs import metrics as obs_metrics


class LRUCache:
    """A small bounded mapping with least-recently-used eviction.

    Used for the extraction memo here and for the transient engines'
    companion-matrix factorization caches (which previously grew without
    bound under adaptive step control / resilience step-halving).
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Bound for the transient engines' companion-factorization caches.  A
#: fixed-step run needs 2 alphas plus one per step-halving depth; the
#: adaptive engine cycles through a modest working set of accepted step
#: sizes.  16 covers both with room while bounding memory (each entry
#: holds a full LU).
FACTOR_CACHE_SIZE = 16


def quantize_alpha(alpha: float, sig_digits: int = 12) -> float:
    """Quantize a companion-matrix coefficient to a stable cache key.

    Adaptive step control and resilience step-halving produce ``alpha``
    values that differ only in the last few ulps (``2/h`` after repeated
    halve/double round trips); keying a factorization cache on the raw
    float misses on those near-equals.  Rounding to 12 significant digits
    merges them while keeping the relative perturbation (~1e-12) far
    below the integration error of any step the value came from.
    """
    if alpha == 0.0 or not np.isfinite(alpha):
        return float(alpha)
    return float(f"{alpha:.{sig_digits - 1}e}")


# -- fingerprinting ----------------------------------------------------------


def _pack_floats(*values: float) -> bytes:
    """Bit-exact little-endian encoding (no decimal round-trip loss)."""
    return struct.pack(f"<{len(values)}d", *values)


def fingerprint_segments(
    segments: Iterable, params: dict[str, Any] | None = None
) -> str:
    """SHA-256 content address of segment geometry + extraction params.

    Every field that affects the partial-inductance values enters the
    hash: net/layer/direction (coupling is direction-grouped), the exact
    origin/length/width/thickness floats, and the close-pair parameters.
    Segment *names* are deliberately excluded -- renaming a wire does not
    change its inductance.
    """
    h = hashlib.sha256()
    count = 0
    for seg in segments:
        h.update(seg.net.encode())
        h.update(b"\x00")
        h.update(seg.layer.encode())
        h.update(b"\x00")
        h.update(seg.direction.value.encode())
        h.update(_pack_floats(*seg.origin, seg.length, seg.width,
                              seg.thickness))
        count += 1
    h.update(f"n={count}".encode())
    for key in sorted(params or ()):
        h.update(f";{key}=".encode())
        value = params[key]
        if isinstance(value, float):
            h.update(_pack_floats(value))
        else:
            h.update(repr(value).encode())
    return h.hexdigest()


def fingerprint_layout(layout, params: dict[str, Any] | None = None) -> str:
    """Content address of a layout's in-plane segments (extraction view)."""
    from repro.geometry.segment import Direction

    return fingerprint_segments(
        (s for s in layout.segments if s.direction != Direction.Z), params
    )


# -- the extraction cache ----------------------------------------------------


def _default_size() -> int:
    raw = os.environ.get("REPRO_CACHE_SIZE", "").strip()
    if not raw:
        return 32
    size = int(raw)
    if size < 1:
        raise ValueError(f"REPRO_CACHE_SIZE must be >= 1, got {size}")
    return size


_MEMO = LRUCache(_default_size())
_DISK_HITS = 0
_DISK_MISSES = 0


def cache_enabled() -> bool:
    """False when ``REPRO_EXTRACTION_CACHE=off`` (recompute everything)."""
    return os.environ.get(
        "REPRO_EXTRACTION_CACHE", ""
    ).strip().lower() not in ("off", "0", "false")


def cache_dir() -> Path | None:
    """The on-disk tier's directory (``REPRO_CACHE_DIR``), or None."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(raw) if raw else None


def _disk_path(digest: str) -> Path | None:
    base = cache_dir()
    if base is None:
        return None
    return base / f"partialL_{digest}.npz"


def load_matrix(digest: str) -> np.ndarray | None:
    """Look up a partial-L matrix by fingerprint (memory, then disk)."""
    global _DISK_HITS, _DISK_MISSES
    if not cache_enabled():
        return None
    cached = _MEMO.get(digest)
    if cached is not None:
        obs_metrics.counter("extraction.cache.memory_hits").inc()
        return cached.copy()
    path = _disk_path(digest)
    if path is None or not path.exists():
        if path is not None:
            _DISK_MISSES += 1
        obs_metrics.counter("extraction.cache.misses").inc()
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            matrix = np.asarray(data["matrix"])
    except (OSError, ValueError, KeyError):
        obs_metrics.counter("extraction.cache.misses").inc()
        return None  # corrupt/foreign file: treat as miss, recompute
    _DISK_HITS += 1
    obs_metrics.counter("extraction.cache.disk_hits").inc()
    _MEMO.put(digest, matrix)
    return matrix.copy()


def store_matrix(digest: str, matrix: np.ndarray) -> None:
    """Insert a freshly computed matrix into both tiers."""
    if not cache_enabled():
        return
    obs_metrics.counter("extraction.cache.stores").inc()
    matrix = np.array(matrix, copy=True)
    matrix.setflags(write=False)
    _MEMO.put(digest, matrix)
    path = _disk_path(digest)
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez_compressed(f, matrix=matrix)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
    except OSError:
        pass  # disk tier is best-effort; the result is already in memory


# -- the hierarchical-operator cache -----------------------------------------
#
# The hierarchical extraction (PR 8) produces a compressed operator, not
# a dense matrix, so it gets its own memo + ``partialL_hier_*.npz`` disk
# namespace.  The fingerprint already covers (geometry, eta, tol,
# leaf_size, close-pair params), so the two tiers can never alias: a
# different knob is a different digest is a different file.

_OP_MEMO = LRUCache(_default_size())
_OP_DISK_HITS = 0
_OP_DISK_MISSES = 0


def _operator_disk_path(digest: str) -> Path | None:
    base = cache_dir()
    if base is None:
        return None
    return base / f"partialL_hier_{digest}.npz"


def _operator_to_arrays(op) -> dict[str, np.ndarray]:
    """Flatten a HierarchicalPartialL into npz-storable arrays."""
    import json

    arrays: dict[str, np.ndarray] = {
        "diag": np.asarray(op.diag),
        "meta": np.frombuffer(
            json.dumps({
                "params": op.params,
                "aca_fallbacks": op.aca_fallbacks,
                "num_sym": len(op.sym_blocks),
                "num_near": len(op.near_blocks),
                "num_far": len(op.far_blocks),
            }).encode(), dtype=np.uint8
        ),
    }
    for k, blk in enumerate(op.sym_blocks):
        arrays[f"sym_{k}_idx"] = blk.indices
        arrays[f"sym_{k}_m"] = blk.matrix
    for k, blk in enumerate(op.near_blocks):
        arrays[f"near_{k}_rows"] = blk.rows
        arrays[f"near_{k}_cols"] = blk.cols
        arrays[f"near_{k}_m"] = blk.matrix
    for k, blk in enumerate(op.far_blocks):
        arrays[f"far_{k}_rows"] = blk.rows
        arrays[f"far_{k}_cols"] = blk.cols
        arrays[f"far_{k}_u"] = blk.u
        arrays[f"far_{k}_v"] = blk.v
    return arrays


def _operator_from_arrays(data) -> Any:
    """Rebuild a HierarchicalPartialL from npz arrays (inverse of above)."""
    import json

    from repro.extraction.hierarchical import (
        DenseBlock, HierarchicalPartialL, LowRankBlock, SymmetricBlock,
    )

    meta = json.loads(bytes(np.asarray(data["meta"])).decode())
    sym = [
        SymmetricBlock(
            indices=np.asarray(data[f"sym_{k}_idx"]),
            matrix=np.asarray(data[f"sym_{k}_m"]),
        )
        for k in range(meta["num_sym"])
    ]
    near = [
        DenseBlock(
            rows=np.asarray(data[f"near_{k}_rows"]),
            cols=np.asarray(data[f"near_{k}_cols"]),
            matrix=np.asarray(data[f"near_{k}_m"]),
        )
        for k in range(meta["num_near"])
    ]
    far = [
        LowRankBlock(
            rows=np.asarray(data[f"far_{k}_rows"]),
            cols=np.asarray(data[f"far_{k}_cols"]),
            u=np.asarray(data[f"far_{k}_u"]),
            v=np.asarray(data[f"far_{k}_v"]),
        )
        for k in range(meta["num_far"])
    ]
    return HierarchicalPartialL(
        diag=np.asarray(data["diag"]),
        sym_blocks=sym,
        near_blocks=near,
        far_blocks=far,
        params=meta["params"],
        aca_fallbacks=meta["aca_fallbacks"],
    )


def load_operator(digest: str):
    """Look up a hierarchical operator by fingerprint (memory, then disk).

    Operators are immutable after construction (no caller mutates block
    arrays in place), so -- unlike :func:`load_matrix` -- hits hand back
    the shared instance rather than a deep copy.
    """
    global _OP_DISK_HITS, _OP_DISK_MISSES
    if not cache_enabled():
        return None
    cached = _OP_MEMO.get(digest)
    if cached is not None:
        obs_metrics.counter("extraction.cache.memory_hits").inc()
        return cached
    path = _operator_disk_path(digest)
    if path is None or not path.exists():
        if path is not None:
            _OP_DISK_MISSES += 1
        obs_metrics.counter("extraction.cache.misses").inc()
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            operator = _operator_from_arrays(data)
    except (OSError, ValueError, KeyError):
        obs_metrics.counter("extraction.cache.misses").inc()
        return None  # corrupt/foreign file: treat as miss, recompute
    _OP_DISK_HITS += 1
    obs_metrics.counter("extraction.cache.disk_hits").inc()
    _OP_MEMO.put(digest, operator)
    return operator


def store_operator(digest: str, operator) -> None:
    """Insert a freshly built hierarchical operator into both tiers."""
    if not cache_enabled():
        return
    obs_metrics.counter("extraction.cache.stores").inc()
    _OP_MEMO.put(digest, operator)
    path = _operator_disk_path(digest)
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez_compressed(f, **_operator_to_arrays(operator))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
    except OSError:
        pass  # disk tier is best-effort; the operator is already in memory


def operator_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters of the operator tier."""
    return {
        **_OP_MEMO.stats(),
        "disk_hits": _OP_DISK_HITS,
        "disk_misses": _OP_DISK_MISSES,
    }


def clear_cache() -> None:
    """Drop the in-process tiers (the disk tier is left alone)."""
    _MEMO.clear()
    _OP_MEMO.clear()


def cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters of both tiers."""
    return {
        **_MEMO.stats(),
        "disk_hits": _DISK_HITS,
        "disk_misses": _DISK_MISSES,
    }


__all__ = [
    "LRUCache",
    "FACTOR_CACHE_SIZE",
    "quantize_alpha",
    "fingerprint_segments",
    "fingerprint_layout",
    "cache_enabled",
    "cache_dir",
    "load_matrix",
    "store_matrix",
    "load_operator",
    "store_operator",
    "operator_cache_stats",
    "clear_cache",
    "cache_stats",
]
