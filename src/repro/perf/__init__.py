"""Performance layer: parallel sweeps, extraction caching, benchmarks.

Three independent pieces, all motivated by the ROADMAP's "as fast as the
hardware allows" north star:

* :mod:`repro.perf.parallel` -- process-pool parallelization of the
  per-frequency sweeps in loop extraction and AC analysis, with
  per-worker reuse of the assembled MNA system and graceful serial
  fallback (``REPRO_WORKERS`` sets the default worker count).
* :mod:`repro.perf.cache` -- content-addressed memoization of the dense
  partial-inductance assembly, in-process (LRU) and optionally on disk
  (``REPRO_CACHE_DIR``), invalidated by any geometry or parameter change.
* :mod:`repro.perf.bench` -- the ``repro bench`` harness: times assembly,
  sparsification, the loop sweep (serial vs parallel), and the transient
  on the Table-1 configuration and emits ``BENCH_<date>.json`` so every
  future change has a regression baseline.  Imported lazily (it pulls in
  the full flow stack).
"""

from repro.perf.cache import (
    LRUCache,
    cache_stats,
    clear_cache,
    fingerprint_layout,
    fingerprint_segments,
    quantize_alpha,
)
from repro.perf.parallel import (
    SweepSpec,
    chunk_indices,
    parallel_sweep,
    solve_points,
    worker_count,
)

__all__ = [
    "LRUCache",
    "cache_stats",
    "clear_cache",
    "fingerprint_layout",
    "fingerprint_segments",
    "quantize_alpha",
    "SweepSpec",
    "chunk_indices",
    "parallel_sweep",
    "solve_points",
    "worker_count",
]
