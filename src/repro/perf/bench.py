"""The ``repro bench`` harness: a perf trajectory you can diff.

Times the four hot paths of the reproduction on the Table-1 clock-net
configuration -- dense partial-L **assembly** (cold, and again through
the extraction cache), **sparsification**, the Section-5 **loop R(f)/
L(f) sweep** (serial and parallel, with an identical-arrays check), and
the Table-1 **transient** -- and writes the measurements as
``BENCH_<date>.json``.  Future PRs compare themselves against a
checked-in baseline with :func:`compare_benchmarks`; CI's smoke job
fails on a >2x regression of any timed section.

Timings are wall-clock (:func:`time.perf_counter`) and single-shot: the
harness is a trajectory recorder, not a microbenchmark -- the JSON is
meant to be eyeballed across commits and gated loosely (2x), not
micro-compared.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

#: Bump when the JSON layout changes incompatibly.
BENCH_SCHEMA = 1

#: Sections whose ``seconds`` are compared against the baseline.
TIMED_SECTIONS = (
    "assembly_cold",
    "assembly_cached",
    "hierarchical",
    "sparsify",
    "loop_sweep_serial",
    "loop_sweep_parallel",
    "solve_iterative",
    "transient",
)


@dataclass
class BenchConfig:
    """Scale knobs of one benchmark run.

    ``smoke`` shrinks everything so CI finishes in seconds; the full
    configuration is the Table-1 default scale.
    """

    smoke: bool = False
    workers: int = 4
    die: float = 400e-6
    num_branches: int = 3
    branch_length: float = 120e-6
    stripe_pitch: float = 60e-6
    num_freqs: int = 12
    max_segment_length: float = 120e-6
    # Hierarchical-vs-exact comparison grid: ``hier_lines`` parallel
    # stripes split into ``hier_pieces`` collinear segments each (a
    # Table-1-style power-grid slice).  The full scale (500 x 16 =
    # 8000 segments) is where the O(n^2) exact assembly clearly loses
    # to the O(n log n) engine on both time and memory; leaf 64 (above
    # the extraction default of 32) amortizes the per-sampled-row
    # numpy overhead of ACA at that block count.
    hier_lines: int = 500
    hier_pieces: int = 16
    hier_leaf_size: int = 64

    @classmethod
    def for_mode(cls, smoke: bool, workers: int | None = None) -> "BenchConfig":
        from repro.perf.parallel import worker_count

        resolved = workers if workers is not None else (
            2 if smoke else min(4, worker_count())
        )
        if smoke:
            return cls(
                smoke=True, workers=resolved,
                die=200e-6, num_branches=2, branch_length=60e-6,
                stripe_pitch=50e-6, num_freqs=6,
                hier_lines=15, hier_pieces=16, hier_leaf_size=16,
            )
        return cls(smoke=False, workers=resolved)

    def to_json(self) -> dict[str, Any]:
        return {
            "smoke": self.smoke,
            "workers": self.workers,
            "die_um": self.die * 1e6,
            "num_branches": self.num_branches,
            "branch_length_um": self.branch_length * 1e6,
            "stripe_pitch_um": self.stripe_pitch * 1e6,
            "num_freqs": self.num_freqs,
            "max_segment_length_um": self.max_segment_length * 1e6,
            "hier_segments": self.hier_lines * self.hier_pieces,
            "hier_leaf_size": self.hier_leaf_size,
        }


@dataclass
class BenchReport:
    """Collected sections + metadata, serializable to BENCH JSON."""

    config: BenchConfig
    sections: dict[str, dict[str, Any]] = field(default_factory=dict)

    def add(self, name: str, seconds: float, **extra: Any) -> None:
        self.sections[name] = {"seconds": round(seconds, 6), **extra}

    @property
    def speedup(self) -> float | None:
        """Serial / parallel wall-clock ratio of the loop sweep."""
        serial = self.sections.get("loop_sweep_serial")
        par = self.sections.get("loop_sweep_parallel")
        if not serial or not par or par["seconds"] <= 0.0:
            return None
        return serial["seconds"] / par["seconds"]

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "schema": BENCH_SCHEMA,
            "date": time.strftime("%Y-%m-%d"),
            "platform": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cpus": os.cpu_count(),
            },
            "config": self.config.to_json(),
            "sections": self.sections,
        }
        if self.speedup is not None:
            out["loop_sweep_speedup"] = round(self.speedup, 3)
        return out


def default_output_path(base_dir: str | Path = ".") -> Path:
    """``BENCH_<YYYYMMDD>.json`` in ``base_dir``."""
    return Path(base_dir) / f"BENCH_{time.strftime('%Y%m%d')}.json"


def run_benchmarks(
    config: BenchConfig, echo=print
) -> BenchReport:
    """Run every benchmark section and return the collected report.

    The loop-sweep section extracts the same impedance twice -- serial,
    then with ``config.workers`` -- and records whether the arrays are
    identical (``arrays_identical``); a mismatch is reported, not raised,
    so the JSON still lands for post-mortem.
    """
    from repro.resilience.faults import inject_faults

    # Ambient chaos injection (REPRO_FAULTS) would randomize both the
    # timings and the serial-vs-parallel identity check; the bench
    # measures performance, not resilience, so suppress it throughout.
    with inject_faults():
        return _run_sections(config, echo, BenchReport(config=config))


def _run_sections(
    config: BenchConfig, echo, report: BenchReport
) -> BenchReport:
    import math

    from repro.flows import _gnd_tap_near, build_clock_testcase, run_loop_flow
    from repro.loop.extractor import LoopPort, extract_loop_impedance
    from repro.perf import cache
    from repro.sparsify import ShellSparsifier
    from repro.extraction.partial_matrix import extract_for_layout

    echo(f"bench: building Table-1 clock-net case "
         f"({config.die * 1e6:.0f} um die, {config.num_branches} branches)")
    case = build_clock_testcase(
        die=config.die,
        num_branches=config.num_branches,
        branch_length=config.branch_length,
        stripe_pitch=config.stripe_pitch,
    )
    layout = case.layout

    # -- assembly: cold, then through the extraction cache -------------
    cache.clear_cache()
    t0 = time.perf_counter()
    extraction, _ = extract_for_layout(layout)
    cold = time.perf_counter() - t0
    report.add(
        "assembly_cold", cold,
        size=extraction.size, mutuals=extraction.num_mutuals,
    )
    t0 = time.perf_counter()
    cached, _ = extract_for_layout(layout)
    warm = time.perf_counter() - t0
    report.add(
        "assembly_cached", warm,
        identical=bool(np.array_equal(extraction.matrix, cached.matrix)),
        **cache.cache_stats(),
    )
    echo(f"bench: assembly {cold:.3f}s cold / {warm:.3f}s cached "
         f"(n = {extraction.size})")

    # -- hierarchical vs exact assembly ---------------------------------
    # A Table-1-style power-grid slice at a scale the clock case never
    # reaches: exact dense assembly is O(n^2) in both time and memory,
    # the H-matrix/ACA engine compresses the far field.  Both paths run
    # cold (cache cleared); the error/SPD fields let compare_benchmarks
    # gate correctness, not just wall-clock.
    from repro.extraction.hierarchical import build_hierarchical_operator
    from repro.extraction.partial_matrix import extract_partial_inductance
    from repro.sparsify.stability import is_positive_definite

    hier_segments = _hier_benchmark_segments(config)
    n_hier = len(hier_segments)
    cache.clear_cache()
    t0 = time.perf_counter()
    exact_hier = extract_partial_inductance(hier_segments)
    t_exact = time.perf_counter() - t0
    t0 = time.perf_counter()
    operator = build_hierarchical_operator(
        hier_segments, leaf_size=config.hier_leaf_size
    )
    t_hier = time.perf_counter() - t0
    dense = operator.to_dense()
    scale = float(np.max(np.abs(exact_hier.matrix)))
    max_rel_error = float(
        np.max(np.abs(dense - exact_hier.matrix)) / scale
    )
    spd_ok = bool(is_positive_definite(dense))
    op_stats = operator.stats()
    report.add(
        "hierarchical", t_hier,
        n=n_hier,
        exact_seconds=round(t_exact, 6),
        speedup=round(t_exact / t_hier, 3) if t_hier > 0 else None,
        dense_bytes=int(exact_hier.matrix.nbytes),
        operator_bytes=int(op_stats["memory_bytes"]),
        memory_ratio=round(
            exact_hier.matrix.nbytes / op_stats["memory_bytes"], 3
        ),
        max_rel_error=max_rel_error,
        spd_ok=spd_ok,
        far_blocks=op_stats["num_far_blocks"],
        max_rank=op_stats["max_rank"],
        aca_fallbacks=op_stats["aca_fallbacks"],
        leaf_size=config.hier_leaf_size,
    )
    echo(f"bench: hierarchical {t_hier:.3f}s vs exact {t_exact:.3f}s "
         f"at n = {n_hier} "
         f"({t_exact / t_hier:.2f}x, mem "
         f"{exact_hier.matrix.nbytes / op_stats['memory_bytes']:.2f}x, "
         f"err {max_rel_error:.2e}, spd_ok={spd_ok})")
    del dense, exact_hier, operator

    # -- sparsification -------------------------------------------------
    t0 = time.perf_counter()
    blocks = ShellSparsifier().apply(extraction)
    report.add(
        "sparsify", time.perf_counter() - t0,
        strategy="shell", kept_mutuals=blocks.num_mutuals,
    )

    # -- loop R(f)/L(f) sweep: serial vs parallel -----------------------
    driver = case.ports.driver
    far_sink = max(
        case.ports.sinks,
        key=lambda s: math.hypot(s.x - driver.x, s.y - driver.y),
    )
    port = LoopPort(
        signal=driver,
        reference=_gnd_tap_near(layout, driver.x, driver.y),
        short_signal=far_sink,
        short_reference=_gnd_tap_near(layout, far_sink.x, far_sink.y),
    )
    freqs = np.logspace(7, 10.5, config.num_freqs)

    # Untimed warm-up: the loop extractor assembles a filament-level
    # partial-L matrix whose first computation would otherwise land in
    # the serial timing only (the parallel run would ride the cache),
    # inflating the reported speedup.  The filament grid is sized for
    # the sweep's top frequency, so warm with that point specifically.
    extract_loop_impedance(
        layout, port, freqs[-1:],
        max_segment_length=config.max_segment_length, workers=1,
    )

    t0 = time.perf_counter()
    serial = extract_loop_impedance(
        layout, port, freqs,
        max_segment_length=config.max_segment_length, workers=1,
    )
    t_serial = time.perf_counter() - t0
    report.add(
        "loop_sweep_serial", t_serial,
        num_freqs=config.num_freqs, num_filaments=serial.num_filaments,
    )

    t0 = time.perf_counter()
    parallel = extract_loop_impedance(
        layout, port, freqs,
        max_segment_length=config.max_segment_length,
        workers=config.workers,
    )
    t_parallel = time.perf_counter() - t0
    identical = bool(np.array_equal(serial.impedance, parallel.impedance))
    report.add(
        "loop_sweep_parallel", t_parallel,
        workers=config.workers, arrays_identical=identical,
    )
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    echo(f"bench: loop sweep {t_serial:.3f}s serial / {t_parallel:.3f}s "
         f"with {config.workers} workers ({speedup:.2f}x, "
         f"identical={identical})")

    # -- matrix-free iterative solve vs dense direct --------------------
    # The same loop sweep through ``assembly="hierarchical"``: the
    # partial-L block is stamped as a compressed operator and every
    # frequency point solves through the Krylov rung.  Gated on accuracy
    # against the dense-direct sweep above AND on staying matrix-free
    # (zero ``to_dense`` materializations, zero dense fallbacks).
    from repro.obs import metrics as obs_metrics

    to_dense_before = obs_metrics.counter("hierarchical.to_dense_calls").value
    solves_before = obs_metrics.counter("solver.krylov_solves").value
    iters_before = obs_metrics.counter("solver.krylov_iterations").value
    fallbacks_before = obs_metrics.counter("solver.krylov_fallbacks").value
    t0 = time.perf_counter()
    iterative = extract_loop_impedance(
        layout, port, freqs,
        max_segment_length=config.max_segment_length, workers=1,
        assembly="hierarchical",
    )
    t_iterative = time.perf_counter() - t0
    to_dense_calls = int(
        obs_metrics.counter("hierarchical.to_dense_calls").value
        - to_dense_before
    )
    krylov_solves = int(
        obs_metrics.counter("solver.krylov_solves").value - solves_before
    )
    krylov_iters = int(
        obs_metrics.counter("solver.krylov_iterations").value - iters_before
    )
    krylov_fallbacks = int(
        obs_metrics.counter("solver.krylov_fallbacks").value
        - fallbacks_before
    )
    denom = np.maximum(np.abs(serial.impedance), 1e-300)
    rel_errors = np.abs(iterative.impedance - serial.impedance) / denom
    iter_rel_error = float(np.max(rel_errors))
    operator_bytes = int(obs_metrics.gauge("mna.operator_bytes").value)
    report.add(
        "solve_iterative", t_iterative,
        num_freqs=config.num_freqs,
        num_filaments=iterative.num_filaments,
        dense_seconds=round(t_serial, 6),
        max_rel_error=iter_rel_error,
        to_dense_calls=to_dense_calls,
        krylov_solves=krylov_solves,
        krylov_iterations=krylov_iters,
        krylov_fallbacks=krylov_fallbacks,
        operator_bytes=operator_bytes,
    )
    echo(f"bench: iterative sweep {t_iterative:.3f}s vs dense "
         f"{t_serial:.3f}s (err {iter_rel_error:.2e}, "
         f"{krylov_iters} gmres iters, to_dense={to_dense_calls}, "
         f"operator {operator_bytes / 1024:.0f} KiB)")

    # -- transient on the loop model ------------------------------------
    t0 = time.perf_counter()
    flow = run_loop_flow(case)
    report.add(
        "transient", time.perf_counter() - t0,
        model="loop_rlc",
        build_seconds=round(flow.build_seconds, 6),
        solve_seconds=round(flow.solve_seconds, 6),
        worst_delay_ps=round(flow.worst_delay * 1e12, 3),
    )
    echo(f"bench: loop-flow transient {flow.solve_seconds:.3f}s solve")
    return report


def _hier_benchmark_segments(config: BenchConfig):
    """Parallel-stripe grid for the hierarchical-vs-exact comparison.

    ``hier_lines`` stripes at 4 um pitch, each split into
    ``hier_pieces`` collinear pieces -- the split keeps near-field bar
    evaluation (abutting pieces, adjacent stripes) on the hot path while
    giving the cluster tree a genuine 2-D far field to compress.
    """
    from repro.geometry.segment import Direction, Segment

    segments = []
    for i in range(config.hier_lines):
        line = Segment(
            net=f"bench{i}", layer="m1", direction=Direction.X,
            origin=(0.0, i * 4e-6, 0.0), length=config.die,
            width=1e-6, thickness=0.5e-6, name=f"bench{i}",
        )
        segments.extend(line.split(config.hier_pieces))
    return segments


def write_report(report: BenchReport, path: str | Path) -> Path:
    """Write the BENCH JSON (pretty-printed, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
    return path


def compare_benchmarks(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 2.0,
    min_seconds: float = 0.05,
) -> list[str]:
    """Regressions of ``current`` vs ``baseline``, as human-readable strings.

    A section regresses when its wall-clock exceeds ``max_regression``
    times the baseline's.  Sections faster than ``min_seconds`` in the
    baseline are skipped (timer noise dominates them), as are sections
    either file lacks.  An empty list means "no regression".
    """
    problems: list[str] = []
    cur_sections = current.get("sections", {})
    base_sections = baseline.get("sections", {})
    for name in TIMED_SECTIONS:
        cur = cur_sections.get(name)
        base = base_sections.get(name)
        if cur is None or base is None:
            continue
        base_s = float(base.get("seconds", 0.0))
        cur_s = float(cur.get("seconds", 0.0))
        if base_s < min_seconds:
            continue
        if cur_s > max_regression * base_s:
            problems.append(
                f"{name}: {cur_s:.3f}s vs baseline {base_s:.3f}s "
                f"({cur_s / base_s:.2f}x > {max_regression:.1f}x allowed)"
            )
    par = cur_sections.get("loop_sweep_parallel")
    if par is not None and par.get("arrays_identical") is False:
        problems.append(
            "loop_sweep_parallel: parallel impedance differs from serial"
        )
    # The hierarchical section carries correctness, not just wall-clock:
    # ACA must stay within tolerance of exact assembly and the
    # materialization must stay passive.
    hier = cur_sections.get("hierarchical")
    if hier is not None:
        err = hier.get("max_rel_error")
        if err is not None and float(err) > 1e-3:
            problems.append(
                f"hierarchical: max relative error {float(err):.3e} vs "
                "exact exceeds 1e-3"
            )
        if hier.get("spd_ok") is False:
            problems.append(
                "hierarchical: materialized matrix failed the SPD/"
                "passivity check"
            )
    # The iterative section is a correctness gate too: the matrix-free
    # sweep must agree with dense direct and must not have silently
    # densified the operator.
    solve_iter = cur_sections.get("solve_iterative")
    if solve_iter is not None:
        err = solve_iter.get("max_rel_error")
        if err is not None and float(err) > 1e-6:
            problems.append(
                f"solve_iterative: max relative impedance error "
                f"{float(err):.3e} vs dense direct exceeds 1e-6"
            )
        if int(solve_iter.get("to_dense_calls", 0)) != 0:
            problems.append(
                f"solve_iterative: {solve_iter['to_dense_calls']} "
                "to_dense materializations during the matrix-free sweep "
                "(expected 0)"
            )
        if int(solve_iter.get("krylov_fallbacks", 0)) != 0:
            problems.append(
                f"solve_iterative: {solve_iter['krylov_fallbacks']} "
                "krylov solves fell back to dense direct (expected 0)"
            )
    return problems


__all__ = [
    "BENCH_SCHEMA",
    "TIMED_SECTIONS",
    "BenchConfig",
    "BenchReport",
    "default_output_path",
    "run_benchmarks",
    "write_report",
    "compare_benchmarks",
]
