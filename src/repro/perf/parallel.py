"""Process-pool parallel frequency sweeps over ``(G + j omega C) x = b``.

The Section-5 loop extraction and the AC engine both solve one dense (or
sparse) system per frequency point -- an embarrassingly parallel sweep
that the serial loops in :mod:`repro.loop.extractor` and
:mod:`repro.circuit.ac` leave on the table.  This module fans the points
out over a process pool:

* the assembled MNA matrices are shipped to each worker **once** (pool
  initializer), so every worker amortizes setup across all the points it
  solves -- the FastHenry/PRIMA lesson of reusing the expensive setup;
* points are scheduled in contiguous index chunks (several per worker,
  so a slow chunk cannot stall the tail);
* each point runs the same retry loop as the serial path (``"raise"``
  faults at the retry site are retried ``policy.max_retries`` times,
  then propagate), and workers return their retry notes so the parent's
  :class:`~repro.resilience.report.RunReport` stays complete;
* results land in the output array **by index**, so the sweep is
  bit-identical to the serial loop regardless of worker count, chunk
  size, or completion order;
* a pool that cannot be created (sandboxed environment, exhausted fds,
  an injected ``"perf.pool"`` fault) degrades gracefully to the serial
  path, recorded as a downgrade -- never a failure;
* a *running* pool executes under the
  :class:`~repro.resilience.supervisor.Supervisor`: chunks get
  wall-clock deadlines, hung or killed workers are detected by the
  watchdog and their chunks reissued to a restarted pool, poison points
  are bisected out and quarantined as NaN rows, and a circuit breaker
  trips to the serial path after ``max_pool_restarts`` (see
  ``SupervisorConfig`` for the knobs, all overridable via
  ``REPRO_DEADLINE`` / ``REPRO_TIME_BUDGET`` / ``REPRO_WORKER_RLIMIT_MB``).

Worker count resolves from the ``workers=`` argument, else the
``REPRO_WORKERS`` environment variable, else ``os.cpu_count()``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.circuit.linalg import (
    ResilientFactorization, SingularCircuitError, SweepAssembler,
)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import (
    detached_stack, export_spans, graft_spans, span, tracing,
)
from repro.resilience import faults
from repro.resilience.faults import InjectedFault
from repro.resilience.policy import ResiliencePolicy, default_policy
from repro.resilience.report import RunReport
from repro.resilience.supervisor import (
    Supervisor, SupervisorConfig, supervised_init,
)

#: Target chunks handed out per worker; >1 so stragglers rebalance.
OVERSUBSCRIBE = 4

#: Below this many MNA unknowns, fork + pickle overhead beats the solves;
#: implicit (CPU-count) parallelism stays serial for smaller systems.
MIN_PARALLEL_SIZE = 200


def explicit_workers(requested: int | None = None) -> bool:
    """True when a worker count was asked for (arg or ``REPRO_WORKERS``).

    An explicit request always wins; only the implicit CPU-count default
    is subject to the :data:`MIN_PARALLEL_SIZE` worth-it heuristic.  A
    present-but-invalid ``REPRO_WORKERS`` raises here, at the gate,
    rather than as a raw ``int()`` crash from deep inside a sweep.
    """
    if requested is not None:
        return True
    if not os.environ.get("REPRO_WORKERS", "").strip():
        return False
    worker_count(None)  # validates REPRO_WORKERS with a clear error
    return True


def worker_count(requested: int | None = None) -> int:
    """Resolve the sweep worker count.

    Precedence: explicit argument, then ``REPRO_WORKERS``, then the CPU
    count.  A count of 1 means "stay serial" (no pool is created).
    Invalid or non-positive requests raise :class:`ValueError` naming
    the offending value and where it came from.
    """
    if requested is not None:
        try:
            count = int(requested)
        except (TypeError, ValueError):
            raise ValueError(
                f"worker count must be an integer, got {requested!r}"
            ) from None
        source = f"workers={requested!r}"
    else:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                count = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {raw!r}"
                ) from None
            source = f"REPRO_WORKERS={raw!r}"
        else:
            count = os.cpu_count() or 1
            source = "cpu count"
    if count < 1:
        raise ValueError(
            f"worker count must be >= 1, got {count} (from {source})"
        )
    return count


def chunk_indices(
    indices: np.ndarray, workers: int, chunk: int | None = None
) -> list[np.ndarray]:
    """Split point indices into contiguous chunks for scheduling.

    The default chunk size gives each worker ~``OVERSUBSCRIBE`` chunks;
    an explicit ``chunk`` overrides it (tests, checkpoint granularity).
    """
    indices = np.asarray(indices, dtype=int)
    if indices.size == 0:
        return []
    if chunk is None:
        chunk = max(1, math.ceil(indices.size / (OVERSUBSCRIBE * workers)))
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    return [indices[i:i + chunk] for i in range(0, indices.size, chunk)]


@dataclass
class SweepSpec:
    """Everything a worker needs to solve sweep points (picklable).

    Attributes:
        g_matrix: Conductance matrix (dense ndarray or scipy sparse).
        c_matrix: Susceptance matrix, same format.
        b: Complex right-hand side (the AC stimulus / port injection).
        site: Solve-site name for the escalation chain's reports.
        retry_site: Fault site checked (and retried) once per point, e.g.
            ``"loop.freq"``; None solves without a per-point retry wrap.
        policy: Resilience policy governing retries and escalation.
        port: ``(i_plus, i_minus)`` row indices (-1 = ground) to reduce a
            point to the complex port voltage; None returns full vectors.
    """

    g_matrix: object
    c_matrix: object
    b: np.ndarray
    site: str = "ac"
    retry_site: str | None = None
    policy: ResiliencePolicy = field(default_factory=default_policy)
    port: tuple[int, int] | None = None
    _assembler: SweepAssembler | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def row_size(self) -> int:
        """Output columns per point: 1 (port voltage) or the system size."""
        return 1 if self.port is not None else len(self.b)

    def assembler(self) -> SweepAssembler:
        """The sweep assembler (union pattern / operator wrapper), built
        once per spec copy and reused across that copy's points."""
        if self._assembler is None:
            self._assembler = SweepAssembler(self.g_matrix, self.c_matrix)
        return self._assembler

    def __getstate__(self) -> dict:
        # Ship only the inputs; each worker rebuilds its own assembler
        # (deterministic, so worker results stay bit-identical to serial).
        state = self.__dict__.copy()
        state["_assembler"] = None
        return state


def solve_points(
    spec: SweepSpec, freqs: np.ndarray
) -> tuple[np.ndarray, list[str]]:
    """Solve the given frequency points serially (worker body).

    Returns ``(rows, retry_notes)`` where ``rows`` has one row per point
    (port-reduced or full solution) and ``retry_notes`` describes every
    per-point retry that was absorbed, for the parent's run report.
    """
    out = np.zeros((len(freqs), spec.row_size), dtype=complex)
    notes: list[str] = []
    with span("sweep.solve", points=len(freqs), site=spec.site):
        _solve_points_into(spec, freqs, out, notes)
    return out, notes


def _solve_points_into(
    spec: SweepSpec,
    freqs: np.ndarray,
    out: np.ndarray,
    notes: list[str],
) -> None:
    assembler = spec.assembler()
    for k, f in enumerate(freqs):
        omega = 2.0 * np.pi * f
        a_matrix = assembler.at_omega(omega)
        retries = 0
        while True:
            try:
                if spec.retry_site is not None:
                    faults.maybe_fail(spec.retry_site)
                x = ResilientFactorization(
                    a_matrix, site=spec.site, policy=spec.policy
                ).solve(spec.b)
                break
            except (SingularCircuitError, InjectedFault) as exc:
                if spec.retry_site is not None and retries < spec.policy.max_retries:
                    retries += 1
                    notes.append(
                        f"f = {f:.4g} Hz: retry "
                        f"{retries}/{spec.policy.max_retries}: {exc}"
                    )
                    continue
                raise
        if spec.port is not None:
            i_plus, i_minus = spec.port
            vp = x[i_plus] if i_plus >= 0 else 0.0
            vm = x[i_minus] if i_minus >= 0 else 0.0
            out[k, 0] = vp - vm
        else:
            out[k] = x


# -- pool plumbing -----------------------------------------------------------

_WORKER_SPEC: SweepSpec | None = None


def _init_worker(spec: SweepSpec) -> None:
    # The standard pool-initializer idiom: the spec is pickled once per
    # worker process (not once per chunk) and parked in a module global
    # that only that worker ever reads.  The parent never reads
    # _WORKER_SPEC, so the per-process copies cannot diverge from
    # anything.
    global _WORKER_SPEC  # qa: ignore[QA203]
    _WORKER_SPEC = spec


def _solve_chunk(
    chunk_id: int, freqs: np.ndarray
) -> tuple[int, np.ndarray, list[str], list[dict], dict]:
    """Worker body: solve one chunk under a private trace.

    The worker has no access to the parent's collector, so it records
    its spans in a local :class:`~repro.obs.trace.Trace` and ships the
    serialized tree (plus its metrics export) back with the results --
    the same channel the retry notes already use.  The registry is reset
    per chunk: pool workers are persistent, and without the reset a
    worker's second chunk would re-ship (and the parent re-merge) the
    first chunk's counts.  The span stack is detached for the same
    reason: a fork-started worker inherits the span that was open in the
    parent at fork time, and without the detach the chunk span would
    attach to that dead copy instead of the private trace.

    The ``"perf.worker"`` disruption hook fires only here, in the pool
    worker -- never on the serial path -- so injected hangs/crashes
    exercise the supervisor without being able to stall a serial or
    circuit-breaker fallback.
    """
    faults.maybe_disrupt("perf.worker")
    obs_metrics.REGISTRY.reset()  # qa: ignore[QA203] -- worker-private registry, exported below
    with detached_stack(), tracing() as trace:
        with span("sweep.chunk", chunk=chunk_id, points=len(freqs)):
            rows, notes = solve_points(_WORKER_SPEC, freqs)  # qa: ignore[QA203] -- set by _init_worker in this process
    return (
        chunk_id, rows, notes,
        export_spans(trace), obs_metrics.REGISTRY.export(),
    )


def parallel_sweep(
    spec: SweepSpec,
    freqs: np.ndarray,
    out: np.ndarray,
    indices: np.ndarray | None = None,
    workers: int | None = None,
    chunk: int | None = None,
    report: RunReport | None = None,
    on_chunk: Callable[[np.ndarray], None] | None = None,
    config: SupervisorConfig | None = None,
) -> np.ndarray:
    """Solve sweep points in parallel, filling ``out`` by index.

    Args:
        spec: The assembled system and solve configuration.
        freqs: Full frequency grid [Hz].
        out: Output array to fill in place -- shape ``(len(freqs),)`` for
            port sweeps, ``(len(freqs), size)`` for full sweeps.  Only
            rows in ``indices`` are written.
        indices: Point indices still to solve (checkpoint resume skips
            completed ones); default all.
        workers: Worker count (see :func:`worker_count`).
        chunk: Points per scheduled chunk; default auto.
        report: Run report receiving worker retry notes, supervision
            events (timeouts, restarts, quarantines), the downgrade
            record if the pool cannot be created, and chunk checkpoints'
            bookkeeping (via ``on_chunk``).
        on_chunk: Called with each completed chunk's indices *after* its
            results are stored in ``out`` -- the checkpoint hook.
            Quarantined points pass through it too (their rows are NaN),
            so the checkpoint stream stays complete.
        config: Supervision knobs; default
            :meth:`SupervisorConfig.from_env`.

    Returns:
        ``out``.  If any point fails even after retries, the exception
        propagates after all already-completed chunk results have been
        stored and reported via ``on_chunk`` (so an emergency checkpoint
        sees every finished point).  Process-level failures -- hung or
        killed workers, worker ``MemoryError`` -- do *not* propagate:
        the supervisor reissues the work and, as a last resort,
        quarantines the offending point as a NaN row.
    """
    all_indices = (
        np.arange(len(freqs)) if indices is None else np.asarray(indices, int)
    )
    workers = worker_count(workers)
    cfg = config if config is not None else SupervisorConfig.from_env()

    def fill(idx: np.ndarray, rows: np.ndarray) -> None:
        if spec.port is not None:
            out[idx] = rows[:, 0]
        else:
            out[idx] = rows

    def serial(todo: list[np.ndarray]) -> np.ndarray:
        for idx in todo:
            rows, notes = solve_points(spec, freqs[idx])
            for note in notes:
                if report is not None:
                    report.record_retry(spec.site, note)
            fill(idx, rows)
            if on_chunk is not None:
                on_chunk(idx)
        return out

    chunks = chunk_indices(all_indices, workers, chunk)
    if workers == 1 or all_indices.size <= 1:
        return serial(chunks)

    pool_width = min(workers, len(chunks))

    def make_executor():
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=pool_width,
            initializer=supervised_init,
            initargs=(cfg.rlimit_mb, _init_worker, (spec,)),
        )

    try:
        faults.maybe_fail("perf.pool")
        executor = make_executor()
    except (InjectedFault, OSError, ImportError, PermissionError) as exc:
        obs_metrics.counter("pool.fallback_serial").inc()
        if report is not None:
            report.record_downgrade(
                "perf",
                f"parallel sweep ({workers} workers)",
                "serial sweep",
                f"process pool unavailable: {exc}",
            )
        return serial(chunks)

    obs_metrics.gauge("pool.workers").set(pool_width)
    obs_metrics.counter("pool.chunks").inc(len(chunks))
    obs_metrics.counter("pool.points").inc(int(all_indices.size))

    def submit(pool, key: int, idx: np.ndarray):
        return pool.submit(_solve_chunk, key, freqs[idx])

    def on_result(idx: np.ndarray, payload) -> None:
        _, rows, notes, worker_spans, worker_metrics = payload
        graft_spans(worker_spans)
        obs_metrics.REGISTRY.merge(worker_metrics)
        for note in notes:
            if report is not None:
                report.record_retry(spec.site, note)
        fill(idx, rows)
        if on_chunk is not None:
            on_chunk(idx)

    def quarantine(point: int, reason: str) -> None:
        # A poison point becomes a NaN row -- degraded data, not a sweep
        # abort -- and still reaches the checkpoint stream via on_chunk.
        out[point] = np.nan * (1.0 + 1.0j)
        if on_chunk is not None:
            on_chunk(np.array([point], dtype=int))

    Supervisor(
        executor=executor,
        make_executor=make_executor,
        submit=submit,
        on_result=on_result,
        solve_serial=lambda idx: serial([idx]),
        quarantine=quarantine,
        workers=pool_width,
        config=cfg,
        report=report,
        stage="perf",
    ).run(chunks)
    return out


__all__ = [
    "OVERSUBSCRIBE",
    "MIN_PARALLEL_SIZE",
    "explicit_workers",
    "worker_count",
    "chunk_indices",
    "SweepSpec",
    "solve_points",
    "parallel_sweep",
]
