"""Design techniques for minimizing inductive effects (paper Section 7).

Run:  python examples/design_techniques.py

Exercises the Figure 5-9 studies: shielding, dedicated ground planes,
inter-digitated wires, staggered inverters, twisted bundles, and the SINO
shield-insertion/net-ordering optimizer.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.design import (
    anneal_sino,
    greedy_sino,
    ground_plane_study,
    interdigitation_study,
    random_problem,
    shielding_study,
    staggered_study,
    twisted_bundle_study,
)


def main() -> None:
    # -- Figure 5: shielding -----------------------------------------------
    results = shielding_study(shield_spacings=(1e-6, 2e-6, 4e-6),
                              length=600e-6)
    rows = [
        ["baseline" if r.shield_spacing is None
         else f"shields @ {r.shield_spacing * 1e6:.0f} um",
         f"{r.loop_inductance * 1e12:.1f}", f"{r.loop_resistance:.2f}"]
        for r in results
    ]
    print(format_table(["configuration", "loop L [pH]", "loop R [ohm]"],
                       rows, title="Figure 5 -- shielding"))
    print()

    # -- Figure 6: ground planes ---------------------------------------------
    freqs = np.logspace(8, 10.5, 5)
    plane_results = ground_plane_study(frequencies=freqs, length=600e-6)
    rows = [
        [f"{f:.1e}"] + [f"{r.inductance[i] * 1e12:.1f}"
                        for r in plane_results]
        for i, f in enumerate(freqs)
    ]
    print(format_table(
        ["freq [Hz]"] + [r.label for r in plane_results],
        rows, title="Figure 6 -- L(f) [pH]: planes win at high frequency",
    ))
    print()

    # -- Figure 7: inter-digitated wires -------------------------------------
    finger_results = interdigitation_study(finger_counts=(1, 2, 4),
                                           length=600e-6)
    rows = [
        [r.num_fingers, f"{r.loop_inductance * 1e12:.1f}",
         f"{r.signal_resistance:.3f}", f"{r.total_capacitance * 1e15:.1f}"]
        for r in finger_results
    ]
    print(format_table(
        ["fingers", "loop L [pH]", "signal R [ohm]", "signal C [fF]"],
        rows, title="Figure 7 -- inter-digitation: L down, R and C up",
    ))
    print()

    # -- Figure 8: staggered inverters ---------------------------------------
    stag = staggered_study(length=600e-6, t_stop=0.6e-9)
    rows = [[r.pattern, f"{r.victim_peak_noise * 1e3:.3f}"] for r in stag]
    print(format_table(["pattern", "victim noise [mV]"], rows,
                       title="Figure 8 -- staggered inverters"))
    print()

    # -- Figure 9: twisted bundles -----------------------------------------------
    twist = twisted_bundle_study(num_regions=6, length=600e-6,
                                 t_stop=0.5e-9)
    rows = [[r.style, f"{r.victim_peak_noise * 1e3:.3f}", r.num_segments]
            for r in twist]
    print(format_table(["bundle", "victim noise [mV]", "segments"], rows,
                       title="Figure 9 -- twisted bundle"))
    print()

    # -- SINO ------------------------------------------------------------------------
    problem = random_problem(num_nets=10, seed=11)
    greedy = greedy_sino(problem)
    annealed = anneal_sino(problem, iterations=4000, seed=11)
    print("SINO (shield insertion + net ordering, ref [21]):")
    print(f"  greedy : area {greedy.area} tracks, "
          f"{len(greedy.shields_after)} shields, order {greedy.order}")
    print(f"  anneal : area {annealed.area} tracks, "
          f"{len(annealed.shields_after)} shields, order {annealed.order}")


if __name__ == "__main__":
    main()
