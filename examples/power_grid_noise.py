"""Power-grid noise: IR drop, L*di/dt, and the effect of decap.

Run:  python examples/power_grid_noise.py

Builds a stitched two-layer power grid with package parasitics and
background switching activity (the paper's Section-3 model ingredients),
then measures supply noise at the grid's worst node with and without
device decoupling capacitance -- reproducing the mechanism the paper
describes: "the parasitic device capacitance of these non-switching gates
... reduces IR-drop and changes current distribution by allowing current
to jump from one grid to the other."
"""

import numpy as np

from repro.analysis.report import format_table
from repro.circuit import transient_analysis
from repro.geometry import PowerGridSpec, build_power_grid, default_layer_stack
from repro.peec import (
    PEECOptions,
    attach_decaps,
    attach_package,
    attach_switching_activity,
    build_peec_model,
    estimate_decoupling_capacitance,
)


def run_case(with_decap: bool) -> dict:
    layers = default_layer_stack(6)
    spec = PowerGridSpec(
        die_width=300e-6,
        die_height=300e-6,
        layer_names=("M5", "M6"),
        stripe_pitch=60e-6,
        stripe_width=2e-6,
        pads_per_net=2,
    )
    layout = build_power_grid(spec, layers)
    model = build_peec_model(layout, PEECOptions(max_segment_length=80e-6))
    attach_package(model)
    if with_decap:
        # ~2 mm of non-switching transistor width in this region.
        decap = estimate_decoupling_capacitance(2e-3, switching_fraction=0.15)
        attach_decaps(model, decap, count=8)
    attach_switching_activity(
        model, num_sources=8, peak_current=1.5e-3,
        window=(0.05e-9, 0.4e-9), rng=np.random.default_rng(42),
    )

    vdd_nodes = model.nodes_of_net("VDD", "M5")
    gnd_nodes = model.nodes_of_net("GND", "M5")
    record = vdd_nodes + gnd_nodes
    result = transient_analysis(model.circuit, 0.8e-9, 2e-12, record=record)

    worst_droop = max(
        float(np.max(1.2 - result.voltage(node))) for node in vdd_nodes
    )
    worst_bounce = max(
        float(np.max(np.abs(result.voltage(node)))) for node in gnd_nodes
    )
    return {
        "decap": "yes" if with_decap else "no",
        "worst VDD droop [mV]": f"{worst_droop * 1e3:.1f}",
        "worst GND bounce [mV]": f"{worst_bounce * 1e3:.1f}",
    }


def main() -> None:
    rows = [list(run_case(False).values()), list(run_case(True).values())]
    print(format_table(
        ["decap", "worst VDD droop [mV]", "worst GND bounce [mV]"],
        rows,
        title="Supply noise with background switching activity "
              "(8 gates, 1.5 mA peaks, package RL)",
    ))
    print("\nDecoupling capacitance absorbs the charge packets locally, "
          "cutting both the IR drop and the package L*di/dt noise.")


if __name__ == "__main__":
    main()
