"""Advanced analyses: hierarchy, adaptive stepping, worst-case crosstalk.

Run:  python examples/advanced_analysis.py

Three production-style workflows on top of the core reproduction:

1. hierarchical macromodeling (paper ref [16]) of a two-block RC network,
2. LTE-controlled adaptive transient vs fixed-step cost,
3. worst-case crosstalk alignment under switching-window uncertainty.
"""

import numpy as np

from repro.analysis.crosstalk import (
    simulate_aggressor_responses,
    worst_case_alignment,
)
from repro.circuit import Circuit, Ramp, adaptive_transient, transient_analysis
from repro.circuit.netlist import GROUND
from repro.geometry.structures import build_bus
from repro.mor.hierarchical import hierarchical_reduction
from repro.peec.model import PEECOptions, build_peec_model


def demo_hierarchy() -> None:
    print("== hierarchical interconnect model (ref [16]) ==")
    circuit = Circuit("line")
    prev = "in"
    blocks = [set(), set()]
    for b in range(2):
        for k in range(30):
            node = f"b{b}n{k}"
            circuit.add_resistor(f"r{b}_{k}", prev, node, 8.0)
            circuit.add_capacitor(f"c{b}_{k}", node, GROUND, 15e-15)
            blocks[b].add(node)
            prev = node
    blocks[1].discard(prev)  # keep the output node global
    circuit.add_resistor("rterm", prev, GROUND, 150.0)
    circuit.add_vsource("vin", "src", GROUND, Ramp(0, 1, 20e-12, 50e-12))
    circuit.add_resistor("rdrv", "src", "in", 25.0)

    model = hierarchical_reduction(circuit, blocks, order_per_block=10)
    from repro.circuit.mna import MNASystem

    print(f"  flat unknowns: {model.full_unknowns}, "
          f"hierarchical: {MNASystem(model.circuit).size} "
          f"(block orders {model.block_orders})")
    flat = transient_analysis(circuit, 3e-9, 4e-12, record=[prev])
    hier = transient_analysis(model.circuit, 3e-9, 4e-12, record=[prev])
    err = np.max(np.abs(flat.voltage(prev) - hier.voltage(prev)))
    print(f"  waveform error vs flat: {err * 1e3:.3f} mV\n")


def demo_adaptive() -> None:
    print("== adaptive transient (LTE control) ==")
    circuit = Circuit("rc")
    circuit.add_vsource("vin", "a", GROUND, Ramp(0, 1, 0, 10e-12))
    circuit.add_resistor("r", "a", "b", 1000.0)
    circuit.add_capacitor("c", "b", GROUND, 1e-12)
    res = adaptive_transient(circuit, 50e-9, 5e-12)
    fixed_steps = int(50e-9 / 5e-12)
    print(f"  fixed-step points: {fixed_steps}, adaptive: {len(res.times)} "
          f"({res.num_rejected} rejected, "
          f"{res.num_factorizations} factorizations)")
    print(f"  final value: {res.voltage('b')[-1]:.4f} V "
          f"(exact: {1.0:.4f})\n")


def demo_crosstalk() -> None:
    print("== worst-case crosstalk alignment ==")
    layout, ports = build_bus(num_signals=3, length=400e-6, pitch=3e-6,
                              wire_width=1e-6)

    def build(active: str):
        model = build_peec_model(layout, PEECOptions(max_segment_length=150e-6))
        circuit = model.circuit
        for net in ("bus0", "bus1", "bus2"):
            n_in = model.node_at(ports[f"{net}:in"])
            n_out = model.node_at(ports[f"{net}:out"])
            circuit.add_capacitor(f"Cl_{net}", n_out, GROUND, 10e-15)
            if net == active:
                # Different intrinsic arrival times per aggressor: window
                # freedom lets sign-off align their peaks.
                delay = 20e-12 if net == "bus0" else 150e-12
                circuit.add_vsource(f"V_{net}", f"s_{net}", GROUND,
                                    Ramp(0, 1.2, delay, 30e-12))
                circuit.add_resistor(f"Rd_{net}", f"s_{net}", n_in, 60.0)
            else:
                circuit.add_resistor(f"Rd_{net}", n_in, GROUND, 60.0)
        for end in ("in", "out"):
            circuit.add_resistor(f"Rg_{end}",
                                 model.node_at(ports[f"gnd:{end}"]),
                                 GROUND, 0.1)
        build.victim = model.node_at(ports["bus1:out"])
        return circuit

    build("bus0")
    times, responses = simulate_aggressor_responses(
        build, ["bus0", "bus2"], build.victim, 0.6e-9, 2e-12
    )
    simultaneous = worst_case_alignment(
        times, responses, {"bus0": (0.0, 0.0), "bus2": (0.0, 0.0)}
    )
    windowed = worst_case_alignment(
        times, responses,
        {"bus0": (0.0, 0.2e-9), "bus2": (-0.2e-9, 0.2e-9)},
    )
    print(f"  simultaneous switching: {simultaneous.peak_noise * 1e3:.2f} mV")
    print(f"  worst window alignment: {windowed.peak_noise * 1e3:.2f} mV "
          f"(offsets {dict((k, f'{v * 1e12:.0f}ps') for k, v in windowed.offsets.items())})")


def main() -> None:
    demo_hierarchy()
    demo_adaptive()
    demo_crosstalk()


if __name__ == "__main__":
    main()
