"""Frequency-dependent loop extraction and the two-frequency ladder fit.

Run:  python examples/loop_extraction.py

The Section-5 workflow end to end: build the Figure-3a structure (signal
over a coplanar ground grid), extract loop R(f)/L(f) FastHenry-style with
skin-effect filament subdivision, fit Krauter's R0/L0/R1/L1 ladder from
two samples, and build the lumped Figure-3c netlist for a transient.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.circuit import Ramp, transient_analysis
from repro.geometry import build_signal_over_grid
from repro.loop import (
    LoopModelSpec,
    LoopPort,
    build_loop_circuit,
    extract_loop_impedance,
    fit_ladder,
)


def main() -> None:
    layout, ports = build_signal_over_grid(
        length=1000e-6, signal_width=2e-6, return_width=1e-6,
        pitch=10e-6, returns_per_side=3,
    )
    port = LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )

    # -- Figure 3(b): R and L vs log frequency ---------------------------
    freqs = np.logspace(7, 11, 9)
    extraction = extract_loop_impedance(
        layout, port, freqs, max_segment_length=250e-6
    )
    rows = [
        [f"{f:.2e}", f"{r:.4f}", f"{l * 1e9:.4f}"]
        for f, r, l in zip(freqs, extraction.resistance,
                           extraction.inductance)
    ]
    print(format_table(
        ["frequency [Hz]", "loop R [ohm]", "loop L [nH]"],
        rows,
        title=f"Figure 3(b) -- {extraction.num_filaments} filaments",
    ))

    # -- Figure 3(d): ladder fit from two samples -------------------------
    ladder = fit_ladder(
        float(freqs[0]), complex(extraction.impedance[0]),
        float(freqs[-1]), complex(extraction.impedance[-1]),
    )
    print(f"\nladder fit: R0={ladder.r0:.4f} ohm  "
          f"L0={ladder.l0 * 1e9:.4f} nH  "
          f"R1={ladder.r1:.4f} ohm  L1={ladder.l1 * 1e9:.4f} nH")
    mid = freqs[len(freqs) // 2]
    z_mid = ladder.impedance([mid])[0]
    z_ref = extraction.at(mid)
    print(f"ladder vs extraction at {mid:.2e} Hz: "
          f"{abs(z_mid - z_ref) / abs(z_ref) * 100:.2f}% error")

    # -- Figure 3(c): lumped netlist + transient ----------------------------
    circuit = build_loop_circuit(
        extraction,
        total_capacitance=120e-15,
        spec=LoopModelSpec(frequency=2.5e9, num_sections=3),
    )
    circuit.add_vsource("Vin", "src", "0", Ramp(0.0, 1.2, 20e-12, 40e-12))
    circuit.add_resistor("Rdrv", "src", "drv", 25.0)
    result = transient_analysis(circuit, 1.2e-9, 2e-12, record=["rcv"])
    v = result.voltage("rcv")
    print(f"\nloop-model transient: receiver settles to {v[-1]:.3f} V, "
          f"peak {v.max():.3f} V "
          f"({'rings' if v.max() > 1.25 else 'damped'})")


if __name__ == "__main__":
    main()
