"""Global clock net over a power grid: the paper's Section-6 experiment.

Run:  python examples/clock_net_analysis.py

Builds the synthetic clock-over-grid topology and simulates the same
clock edge through four model flavors:

* PEEC (RC)       -- detailed model without inductance,
* PEEC (RLC)      -- detailed model with the full dense partial-L matrix,
* PEEC (RLC)+ROM  -- block-diagonal sparsification + PRIMA macromodel,
* LOOP (RLC)      -- Section-5 loop-inductance netlist,

then prints the Table-1 columns and the per-sink Figure-4 delays.
"""

from repro import build_clock_testcase, run_loop_flow, run_peec_flow
from repro.analysis.report import format_table
from repro.constants import to_ps


def main() -> None:
    case = build_clock_testcase(
        die=600e-6,
        stripe_pitch=80e-6,
        num_branches=4,
        branch_length=160e-6,
        t_stop=1.0e-9,
        dt=2e-12,
    )
    print(f"topology: {case.layout}")
    print(f"clock sinks: {len(case.ports.sinks)}\n")

    flows = {
        "PEEC (RC)": run_peec_flow(case, include_inductance=False),
        "PEEC (RLC)": run_peec_flow(case),
        "PEEC (RLC)+ROM": run_peec_flow(case, use_reduction=True,
                                        reduction_order=48),
        "LOOP (RLC)": run_loop_flow(case),
    }

    rows = []
    for name, res in flows.items():
        rows.append([
            name,
            res.stats["resistors"],
            res.stats["capacitors"],
            res.stats["inductors"],
            res.stats["mutuals"],
            f"{to_ps(res.worst_delay):.1f}",
            f"{to_ps(res.worst_skew):.2f}",
            f"{res.total_seconds:.2f}",
        ])
    print(format_table(
        ["model", "R", "C", "L", "mutuals", "worst delay [ps]",
         "worst skew [ps]", "run-time [s]"],
        rows,
        title="Table 1 (synthetic scale)",
    ))

    print()
    sink_names = sorted(flows["PEEC (RLC)"].delays)
    rows = [
        [name] + [f"{to_ps(flows[m].delays[name]):.2f}" for m in flows]
        for name in sink_names
    ]
    print(format_table(
        ["sink"] + list(flows),
        rows,
        title="Figure 4 -- per-sink 50% delays [ps]",
    ))

    rc = flows["PEEC (RC)"]
    rlc = flows["PEEC (RLC)"]
    loop = flows["LOOP (RLC)"]
    print(
        f"\ninductance adds {to_ps(rlc.worst_delay - rc.worst_delay):.1f} ps "
        f"to the worst delay (paper: +30 ps on 86 ps);\n"
        f"the loop model predicts "
        f"{to_ps(loop.worst_delay - rc.worst_delay):.1f} ps extra "
        f"with {rlc.stats['resistors'] // max(loop.stats['resistors'], 1)}x "
        f"fewer resistors and no mutual terms."
    )


if __name__ == "__main__":
    main()
