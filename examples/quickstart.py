"""Quickstart: partial inductance, a small RLC circuit, and a transient.

Run:  python examples/quickstart.py

Covers the library's three layers in ~60 lines:
1. closed-form partial inductance of on-chip wires,
2. building and simulating a circuit with the MNA engine,
3. seeing the inductance in the waveform (overshoot/ringing).
"""

import numpy as np

from repro.circuit import Circuit, Ramp, transient_analysis
from repro.constants import to_nh, to_ps, um
from repro.extraction.inductance import (
    mutual_inductance_filaments,
    self_inductance_bar,
)
from repro.analysis.metrics import overshoot, threshold_crossing


def main() -> None:
    # -- 1. partial inductance of a 1 mm x 2 um x 1 um wire pair ----------
    length = um(1000)
    l_self = self_inductance_bar(length, um(2), um(1))
    m_mutual = mutual_inductance_filaments(0, length, 0, length, um(10))
    print(f"self inductance of 1 mm wire : {to_nh(l_self):.3f} nH")
    print(f"mutual at 10 um separation   : {to_nh(m_mutual):.3f} nH")
    print(f"coupling coefficient         : {m_mutual / l_self:.3f}")

    # -- 2. a driver -> line -> load circuit ------------------------------
    # Loop inductance of the wire with its return ~ L_self - M (return at
    # 10 um); drive it fast enough and it rings.
    loop_l = l_self - m_mutual
    circuit = Circuit("quickstart")
    circuit.add_vsource("Vin", "src", "0", Ramp(0.0, 1.2, 20e-12, 30e-12))
    circuit.add_resistor("Rdrv", "src", "a", 15.0)
    circuit.add_series_rl("line", "a", "b", 12.0, loop_l)
    circuit.add_capacitor("Cload", "b", "0", 60e-15)

    result = transient_analysis(circuit, t_stop=1.5e-9, dt=1e-12)

    # -- 3. waveform metrics ------------------------------------------------
    v_out = result.voltage("b")
    t50_in = threshold_crossing(result.times, result.voltage("src"), 0.6)
    t50_out = threshold_crossing(result.times, v_out, 0.6, start=t50_in)
    print(f"\nline loop inductance         : {to_nh(loop_l):.3f} nH")
    print(f"50%-50% delay                : {to_ps(t50_out - t50_in):.1f} ps")
    print(f"overshoot above VDD          : {overshoot(v_out, 1.2) * 1e3:.1f} mV")
    print(f"final value                  : {v_out[-1]:.4f} V")

    # The same circuit without inductance, for contrast.
    rc = Circuit("quickstart_rc")
    rc.add_vsource("Vin", "src", "0", Ramp(0.0, 1.2, 20e-12, 30e-12))
    rc.add_resistor("Rdrv", "src", "a", 15.0)
    rc.add_resistor("line", "a", "b", 12.0)
    rc.add_capacitor("Cload", "b", "0", 60e-15)
    rc_result = transient_analysis(rc, t_stop=1.5e-9, dt=1e-12)
    print(f"RC-only overshoot            : "
          f"{overshoot(rc_result.voltage('b'), 1.2) * 1e3:.1f} mV "
          f"(inductance is what rings)")


if __name__ == "__main__":
    main()
