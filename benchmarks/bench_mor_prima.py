"""E8 -- Section 4: PRIMA reduction, order sweep and the combined flow.

"Reduced order models are very efficient in terms of simulation time and
can match the original large model quite accurately ... and also provide
a control over the accuracy via the order of the reduced system."  The
combined technique of ref [4] applies block-diagonal sparsification first
and excites only the *active* ports.

The benchmark reduces the clock-over-grid PEEC circuit at several orders,
reporting reduction time, simulation speedup over the full model, and the
worst sink-waveform error -- plus the active-port-count effect on the
reduction cost.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import build_clock_testcase
from repro.analysis.compare import compare_waveforms
from repro.analysis.report import format_table
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.mor import NodePort, combined_reduction
from repro.peec.model import PEECOptions, build_peec_model
from repro.peec.package import PackageSpec, attach_package_to_nodes
from repro.sparsify import BlockDiagonalSparsifier


@pytest.fixture(scope="module")
def setup():
    case = build_clock_testcase(
        die=500e-6, stripe_pitch=70e-6, num_branches=3, branch_length=140e-6,
        t_stop=0.8e-9, dt=2e-12,
    )
    model = build_peec_model(
        case.layout,
        PEECOptions(
            max_segment_length=80e-6,
            sparsifier=BlockDiagonalSparsifier(
                num_sections=3, focus_nets=("clk",)
            ),
        ),
    )
    circuit = model.circuit
    sink_nodes = []
    for k, sink in enumerate(case.ports.sinks):
        node = model.node_at(sink)
        sink_nodes.append(node)
        circuit.add_capacitor(f"Cload{k}", node, GROUND, case.load_capacitance)
    drv = model.node_at(case.ports.driver)
    pads = model.pad_nodes()
    return case, model, drv, sink_nodes, pads


def _reference(setup):
    case, model, drv, sink_nodes, pads = setup
    import copy

    # Full (sparsified) model with package + driver, simulated directly.
    circuit = model.circuit
    # Work on the shared circuit: add the drive/packaging once.
    if "Vin" not in {s.name for s in circuit.vsources}:
        attach_package_to_nodes(
            circuit, {n: (node, net) for n, (node, net) in pads.items()},
            PackageSpec(),
        )
        circuit.add_vsource("Vin", "vin", GROUND, case.input_ramp)
        circuit.add_resistor("Rdrv", "vin", drv, case.driver_resistance)
    start = time.perf_counter()
    result = transient_analysis(circuit, case.t_stop, case.dt,
                                record=sink_nodes)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_bench_prima_order_sweep(benchmark, setup, paper_report):
    case, model, drv, sink_nodes, pads = setup

    # Build a source-free copy of the linear circuit for reduction by
    # rebuilding the PEEC model (the reference run mutates the shared one).
    lin_model = build_peec_model(
        case.layout,
        PEECOptions(
            max_segment_length=80e-6,
            sparsifier=BlockDiagonalSparsifier(
                num_sections=3, focus_nets=("clk",)
            ),
        ),
    )
    lin_sinks = [lin_model.node_at(s) for s in case.ports.sinks]
    lin_drv = lin_model.node_at(case.ports.driver)
    lin_pads = lin_model.pad_nodes()
    for k, node in enumerate(lin_sinks):
        lin_model.circuit.add_capacitor(
            f"Cload{k}", node, GROUND, case.load_capacitance
        )
    pad_items = sorted(lin_pads.items())
    active = [lin_drv] + [node for _, (node, _) in pad_items]

    ref_result, ref_seconds = _reference(setup)

    def run_order(order: int):
        comb = combined_reduction(
            lin_model.circuit, active, lin_sinks, order=order
        )
        host = Circuit("host")
        host.add_vsource("Vin", "vin", GROUND, case.input_ramp)
        port_names = ["p_drv"] + [f"p_{name}" for name, _ in pad_items]
        mm = comb.model.to_macromodel("rom", [NodePort(n) for n in port_names])
        host.add_macromodel("rom", mm.ports, mm.g_red, mm.c_red, mm.b_red)
        host.add_resistor("Rdrv", "vin", "p_drv", case.driver_resistance)
        attach_package_to_nodes(
            host,
            {name: (f"p_{name}", net) for name, (_, net) in pad_items},
            PackageSpec(),
        )
        start = time.perf_counter()
        res = transient_analysis(host, case.t_stop, case.dt)
        sim_seconds = time.perf_counter() - start
        worst = 0.0
        for k, node in enumerate(lin_sinks):
            wave = comb.model.observe(res, "rom", node)
            ref_wave = ref_result.voltage(sink_nodes[k])
            worst = max(
                worst,
                compare_waveforms(ref_result.times, ref_wave,
                                  res.times, wave).max_error,
            )
        return comb, sim_seconds, worst

    orders = (8, 16, 32, 48)

    def sweep():
        return {order: run_order(order) for order in orders}

    sweep_results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for order in orders:
        comb, sim_seconds, worst = sweep_results[order]
        rows.append([
            order,
            comb.full_size,
            comb.model.order,
            f"{comb.reduction_seconds:.3f}",
            f"{sim_seconds:.3f}",
            f"{ref_seconds / sim_seconds:.1f}x",
            f"{worst * 1e3:.2f}",
        ])
    paper_report(format_table(
        ["order", "full unknowns", "reduced", "reduce [s]", "simulate [s]",
         "speedup", "worst sink error [mV]"],
        rows,
        title=(
            "Section 4 -- PRIMA order sweep over the block-diagonal PEEC "
            f"model (full simulation {ref_seconds:.2f} s)"
        ),
    ))

    errors = [sweep_results[o][2] for o in orders]
    # Accuracy is controlled by the order, and high orders are accurate.
    assert errors[-1] < errors[0]
    assert errors[-1] < 0.03
    # Reduced simulation beats the full one handily.
    assert all(sweep_results[o][1] < ref_seconds for o in orders)


def test_bench_active_ports_vs_all_ports(benchmark, setup, paper_report):
    """The paper's refinement: "applying excitation sources only to the
    active ports, and not to the sinks."  Same target order; the
    active-port Krylov block is 5 wide (driver + 4 pads) instead of 21
    (+ 16 sinks), so each block buys more moments per solve."""
    case, _, _, _, _ = setup
    lin_model = build_peec_model(
        case.layout,
        PEECOptions(
            max_segment_length=80e-6,
            sparsifier=BlockDiagonalSparsifier(
                num_sections=3, focus_nets=("clk",)
            ),
        ),
    )
    lin_sinks = [lin_model.node_at(s) for s in case.ports.sinks]
    lin_drv = lin_model.node_at(case.ports.driver)
    pad_items = sorted(lin_model.pad_nodes().items())
    for k, node in enumerate(lin_sinks):
        lin_model.circuit.add_capacitor(
            f"Cload{k}", node, GROUND, case.load_capacitance
        )
    active = [lin_drv] + [node for _, (node, _) in pad_items]

    from repro.circuit.mna import MNASystem
    from repro.mor.prima import prima_reduce

    system = MNASystem(lin_model.circuit)
    order = 40
    freqs = [1e8, 1e9, 5e9]

    def reduce_both():
        out = {}
        for label, ports in (
            ("active ports only", active),
            ("all ports (+ sinks)", active + lin_sinks),
        ):
            start = time.perf_counter()
            rom = prima_reduce(
                system,
                [NodePort(n, name=n) for n in ports],
                order=order,
                outputs=lin_sinks,
                s0_hz=2e9,
            )
            elapsed = time.perf_counter() - start
            # Accuracy proxy: driving-point transfer from the driver port
            # to the sinks vs the full model.
            h = rom.transfer(freqs)[:, :, 0]
            out[label] = (rom, elapsed, h)
        return out

    results = benchmark.pedantic(reduce_both, rounds=1, iterations=1)

    # Full-model reference transfer for the same input column.
    import numpy as np
    import scipy.sparse as sp

    from repro.mor.ports import input_matrix, output_matrix

    g_matrix, c_matrix = system.build_matrices()
    b = input_matrix(system, [NodePort(active[0])])
    l_out = output_matrix(system, lin_sinks)
    h_full = np.zeros((len(freqs), len(lin_sinks)), dtype=complex)
    for i, f in enumerate(freqs):
        s = 2j * np.pi * f
        a_matrix = g_matrix + s * c_matrix
        if sp.issparse(a_matrix):
            a_matrix = a_matrix.toarray()
        x = np.linalg.solve(a_matrix, b[:, 0])
        h_full[i] = l_out.T @ x

    rows = []
    errors = {}
    for label, (rom, elapsed, h) in results.items():
        err = float(np.max(np.abs(h - h_full) / (np.abs(h_full) + 1e-12)))
        errors[label] = err
        rows.append([
            label,
            len(rom.input_names),
            rom.order,
            f"{elapsed * 1e3:.1f}",
            f"{err * 100:.3f}%",
        ])
    paper_report(format_table(
        ["variant", "ports", "order", "reduce [ms]",
         "worst driver->sink transfer error"],
        rows,
        title="Section 4 -- active-port PRIMA vs all-port PRIMA "
              f"(order {order})",
    ))

    # At equal order, exciting only the active ports spends the whole
    # subspace on the transfer that matters.
    assert errors["active ports only"] <= errors["all ports (+ sinks)"] * 1.5
    assert errors["active ports only"] < 0.05
