"""E11 -- Figure 7: inter-digitated wires ("G CLOCK G CLOCK G").

"Wider wires can be split into multiple thinner wires with shields in
between.  Such inter-digitizing reduces self-inductance, increases
resistance and capacitance.  However, it increases the amount of
metallization used for the interconnect."

The benchmark sweeps the finger count at constant routing footprint and
reports all four trends.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.design.interdigitate import interdigitation_study


def test_bench_interdigitation(benchmark, paper_report):
    results = benchmark.pedantic(
        lambda: interdigitation_study(
            finger_counts=(1, 2, 4, 8),
            frequency=2e9,
            length=1000e-6,
            total_width=16e-6,
        ),
        rounds=1, iterations=1,
    )
    rows = []
    for r in results:
        rows.append([
            r.num_fingers,
            f"{r.loop_inductance * 1e12:.1f}",
            f"{r.signal_resistance:.3f}",
            f"{r.total_capacitance * 1e15:.1f}",
            f"{r.metal_area * 1e12:.1f}",
        ])
    paper_report(format_table(
        ["fingers", "loop L [pH]", "signal R [ohm]",
         "signal C [fF]", "metal area [um^2]"],
        rows,
        title="Figure 7 -- inter-digitated wires: L down, R & C up",
    ))

    solid = results[0]
    finest = results[-1]
    inductances = [r.loop_inductance for r in results]
    resistances = [r.signal_resistance for r in results]
    capacitances = [r.total_capacitance for r in results]
    # Monotone trends across the sweep.
    assert inductances == sorted(inductances, reverse=True)
    assert resistances == sorted(resistances)
    assert capacitances == sorted(capacitances)
    assert finest.loop_inductance < 0.6 * solid.loop_inductance
