"""E10 -- Figure 6: dedicated ground planes, L vs frequency.

"Although they do not significantly lower the inductive effect at low
frequencies, since resistance dominates and currents take wide return
paths, at high frequencies, the ground planes provide excellent return
paths for the signal current."  The inset of Figure 6 sketches L vs
frequency for "with ground planes" vs "with shields": planes win at high
frequency.

The benchmark sweeps L(f) for the baseline, coplanar shields, and
above/below planes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.design.ground_plane import ground_plane_study


def test_bench_ground_planes(benchmark, paper_report):
    freqs = np.logspace(8, 10.7, 7)
    results = benchmark.pedantic(
        lambda: ground_plane_study(frequencies=freqs, length=1000e-6),
        rounds=1, iterations=1,
    )
    by_label = {r.label: r for r in results}

    rows = []
    for i, f in enumerate(freqs):
        rows.append([
            f"{f:.2e}",
            *(f"{by_label[lab].inductance[i] * 1e12:.1f}"
              for lab in ("baseline", "with shields", "with ground planes")),
        ])
    paper_report(format_table(
        ["frequency [Hz]", "baseline L [pH]", "shields L [pH]",
         "planes L [pH]"],
        rows,
        title="Figure 6 -- L vs frequency: ground planes vs shields",
    ))

    base = by_label["baseline"]
    shields = by_label["with shields"]
    planes = by_label["with ground planes"]
    # Both techniques beat the baseline at high frequency.
    assert planes.inductance[-1] < base.inductance[-1]
    assert shields.inductance[-1] < base.inductance[-1]
    # The plane benefit grows with frequency (the Figure-6 message).
    ratio_low = planes.inductance[0] / base.inductance[0]
    ratio_high = planes.inductance[-1] / base.inductance[-1]
    assert ratio_high < ratio_low
