"""Section 3 -- device decap and switching activity on the power grid.

Not a numbered figure, but two quantitative claims of the model section:

* "The parasitic device capacitance of these non-switching gates results
  in a significant decoupling capacitance effect, which reduces IR-drop";
* "Those gates draw current from the power grid and inject it into the
  ground grid, causing voltage fluctuations."

The benchmark runs the grid + package + activity model with the decap of
a 10%-switching region, a 20%-switching region, and no decap at all, and
reports worst VDD droop and GND bounce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.circuit.transient import transient_analysis
from repro.geometry import PowerGridSpec, build_power_grid, default_layer_stack
from repro.peec import (
    PEECOptions,
    attach_decaps,
    attach_package,
    attach_switching_activity,
    build_peec_model,
    estimate_decoupling_capacitance,
)


def _run(decap_total: float | None) -> tuple[float, float]:
    layout = build_power_grid(
        PowerGridSpec(
            die_width=300e-6, die_height=300e-6, layer_names=("M5", "M6"),
            stripe_pitch=60e-6, stripe_width=2e-6, pads_per_net=2,
        ),
        default_layer_stack(6),
    )
    model = build_peec_model(layout, PEECOptions(max_segment_length=80e-6))
    attach_package(model)
    if decap_total:
        attach_decaps(model, decap_total, count=8)
    attach_switching_activity(
        model, num_sources=8, peak_current=1.5e-3,
        window=(0.05e-9, 0.4e-9), rng=np.random.default_rng(42),
    )
    vdd_nodes = model.nodes_of_net("VDD", "M5")
    gnd_nodes = model.nodes_of_net("GND", "M5")
    result = transient_analysis(model.circuit, 0.8e-9, 2e-12,
                                record=vdd_nodes + gnd_nodes)
    droop = max(float(np.max(1.2 - result.voltage(n))) for n in vdd_nodes)
    bounce = max(float(np.max(np.abs(result.voltage(n)))) for n in gnd_nodes)
    return droop, bounce


def test_bench_grid_noise(benchmark, paper_report):
    cases = {
        "no decap": None,
        "decap, 20% switching": estimate_decoupling_capacitance(
            2e-3, switching_fraction=0.20
        ),
        "decap, 10% switching": estimate_decoupling_capacitance(
            2e-3, switching_fraction=0.10
        ),
    }

    def run_all():
        return {name: _run(total) for name, total in cases.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name,
         "0" if cases[name] is None else f"{cases[name] * 1e12:.1f}",
         f"{droop * 1e3:.1f}", f"{bounce * 1e3:.1f}"]
        for name, (droop, bounce) in results.items()
    ]
    paper_report(format_table(
        ["configuration", "decap [pF]", "worst VDD droop [mV]",
         "worst GND bounce [mV]"],
        rows,
        title="Section 3 -- decap reduces IR drop and grid noise",
    ))

    no_decap = results["no decap"]
    with_decap = results["decap, 20% switching"]
    quieter = results["decap, 10% switching"]
    # Decap cuts the droop substantially...
    assert with_decap[0] < 0.5 * no_decap[0]
    assert with_decap[1] < 0.5 * no_decap[1]
    # ...and more non-switching width (10% switching) means more decap,
    # hence equal-or-less noise.
    assert quieter[0] <= with_decap[0] * 1.05
