"""E12 -- Figure 8: staggered inverter patterns.

"By using patterns of staggered inverters, the coupling capacitance and
inductance effects can be reduced ... the signal polarities alternate
with each inverter, and hence the impact of the coupling tends to cancel
out."

The benchmark compares the victim receiver's coupled noise between the
aligned (non-staggered) and staggered repeater patterns.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.design.staggered import staggered_study


def test_bench_staggered(benchmark, paper_report):
    results = benchmark.pedantic(
        lambda: staggered_study(length=800e-6, t_stop=0.8e-9),
        rounds=1, iterations=1,
    )
    by_pattern = {r.pattern: r for r in results}
    rows = [
        [r.pattern, f"{r.victim_peak_noise * 1e3:.3f}"]
        for r in results
    ]
    ratio = (by_pattern["staggered"].victim_peak_noise
             / by_pattern["non-staggered"].victim_peak_noise)
    paper_report(format_table(
        ["pattern", "victim peak noise [mV]"],
        rows,
        title=(
            "Figure 8 -- staggered inverters: victim noise "
            f"(staggered / non-staggered = {ratio:.3f})"
        ),
    ))

    assert by_pattern["non-staggered"].victim_peak_noise > 1e-3
    assert ratio < 0.2  # alternating polarity cancels the coupling
