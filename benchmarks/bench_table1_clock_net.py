"""E6 -- Table 1: global clock net, PEEC(RC) vs PEEC(RLC) vs LOOP(RLC).

Paper values (proprietary Motorola clock net; reproduced here in *shape*
on the synthetic topology -- see DESIGN.md's substitution table):

    Table 1: Simulation of global clock net
                 PEEC (RC)   PEEC (RLC)   LOOP (RLC)
    Num. of R    220k        220k         3k
    Num. of C    400k        400k         6k
    Num. of L    --          190k         2k
    # mutuals    --          (dense, sparsified)  --
    Worst delay  86 ps       116 ps       ~146 ps (RC + 60 ps)
    Worst skew   9 ps        19 ps        12 ps
    Run-time     20 min      45 min       5 min

Expected shape: RLC delay/skew > RC; LOOP has ~10-100x fewer elements and
no mutuals, runs fastest, and still shows an inductance-induced delay
increase over RC (with error vs the detailed model).
"""

from __future__ import annotations

import pytest

from repro import build_clock_testcase, run_loop_flow, run_peec_flow
from repro.analysis.report import format_table
from repro.constants import to_ps

_RESULTS: dict = {}


@pytest.fixture(scope="module")
def case():
    return build_clock_testcase(
        die=600e-6,
        stripe_pitch=80e-6,
        num_branches=4,
        branch_length=160e-6,
        t_stop=1.0e-9,
        dt=2e-12,
    )


def test_bench_peec_rc(benchmark, case):
    _RESULTS["PEEC (RC)"] = benchmark.pedantic(
        lambda: run_peec_flow(case, include_inductance=False),
        rounds=1, iterations=1,
    )
    assert _RESULTS["PEEC (RC)"].worst_delay > 0


def test_bench_peec_rlc(benchmark, case):
    _RESULTS["PEEC (RLC)"] = benchmark.pedantic(
        lambda: run_peec_flow(case), rounds=1, iterations=1,
    )
    assert _RESULTS["PEEC (RLC)"].worst_delay > 0


def test_bench_loop_rlc(benchmark, case, paper_report):
    _RESULTS["LOOP (RLC)"] = benchmark.pedantic(
        lambda: run_loop_flow(case), rounds=1, iterations=1,
    )

    rows = []
    for name in ("PEEC (RC)", "PEEC (RLC)", "LOOP (RLC)"):
        res = _RESULTS[name]
        rows.append([
            name,
            res.stats["resistors"],
            res.stats["capacitors"],
            res.stats["inductors"],
            res.stats["mutuals"],
            f"{to_ps(res.worst_delay):.1f}",
            f"{to_ps(res.worst_skew):.2f}",
            f"{res.total_seconds:.2f}",
        ])
    paper_report(format_table(
        ["model", "Num R", "Num C", "Num L", "# mutuals",
         "worst delay [ps]", "worst skew [ps]", "run-time [s]"],
        rows,
        title="Table 1 -- Simulation of global clock net (synthetic scale)",
    ))

    rc = _RESULTS["PEEC (RC)"]
    rlc = _RESULTS["PEEC (RLC)"]
    loop = _RESULTS["LOOP (RLC)"]
    # Paper-shape assertions.
    assert rlc.worst_delay > rc.worst_delay
    assert rlc.worst_skew > rc.worst_skew
    assert loop.stats["resistors"] < rlc.stats["resistors"] / 5
    assert loop.stats["mutuals"] == 0
    assert loop.total_seconds < rlc.total_seconds
    assert loop.worst_delay > rc.worst_delay * 0.9
