"""E13 -- Figure 9: twisted-bundle layout structures.

"The routing of nets is reordered in each of these regions ... to create
complementary and opposite current loops in the twisted bundle layout
structure, such that the magnetic fluxes arising from any signal net
within a twisted group cancel each other in the current loop of a net of
interest."

The benchmark drives an aggressor pair with a fast differential edge and
compares the quiet victim pair's differential pickup between the parallel
and twisted bundles, plus the metal cost of the crossovers.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.design.twisted_bundle import twisted_bundle_study


def test_bench_twisted_bundle(benchmark, paper_report):
    results = benchmark.pedantic(
        lambda: twisted_bundle_study(
            num_regions=8, length=800e-6, t_stop=0.6e-9,
        ),
        rounds=1, iterations=1,
    )
    by_style = {r.style: r for r in results}
    rows = [
        [r.style, f"{r.victim_peak_noise * 1e3:.3f}", r.num_segments]
        for r in results
    ]
    ratio = (by_style["twisted"].victim_peak_noise
             / by_style["parallel"].victim_peak_noise)
    paper_report(format_table(
        ["bundle style", "victim differential noise [mV]", "segments"],
        rows,
        title=(
            "Figure 9 -- twisted bundle: inductive coupling noise "
            f"(twisted / parallel = {ratio:.3f})"
        ),
    ))

    assert ratio < 0.85
    assert by_style["twisted"].num_segments > by_style["parallel"].num_segments
